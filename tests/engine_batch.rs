//! Determinism properties of the batch-preparation engine, driven through
//! the `mdq` facade: a shuffled batch executed on 1, 2, and 4 workers must
//! produce circuits identical — instruction by instruction — to running the
//! one-shot pipeline sequentially over the same requests, and resubmitting
//! a batch must be served from the fingerprint cache with bit-identical
//! circuits.

use mdq::core::PrepareOptions;
use mdq::engine::{BatchEngine, EngineConfig, PrepareRequest};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::states::{ghz, w_state};
use proptest::prelude::*;

/// Random mixed-radix registers of 1–3 qudits with local dimensions 2–4
/// (small enough that a proptest case runs dozens of pipelines quickly).
fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..5, 1..4).prop_map(|v| Dims::new(v).unwrap())
}

/// One request: a register plus a structured or random target and exact or
/// approximated options.
fn arb_request() -> impl Strategy<Value = PrepareRequest> {
    arb_dims().prop_flat_map(|dims| {
        let n = dims.space_size();
        (
            Just(dims),
            0u8..4,
            0u8..2,
            proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n),
        )
            .prop_filter_map(
                "state must have nonzero norm",
                |(dims, kind, approximate, parts)| {
                    let options = if approximate == 1 {
                        PrepareOptions::approximated(0.98).without_zero_subtrees()
                    } else {
                        PrepareOptions::exact().without_zero_subtrees()
                    };
                    match kind {
                        0 => Some(PrepareRequest::dense(dims.clone(), ghz(&dims), options)),
                        1 => Some(PrepareRequest::dense(dims.clone(), w_state(&dims), options)),
                        2 => Some(PrepareRequest::sparse(
                            dims.clone(),
                            mdq::states::sparse::ghz(&dims),
                            options,
                        )),
                        _ => {
                            let v: Vec<Complex> = parts
                                .into_iter()
                                .map(|(re, im)| Complex::new(re, im))
                                .collect();
                            let norm = mdq::num::norm(&v);
                            (norm > 1e-3).then(|| {
                                PrepareRequest::dense(
                                    dims.clone(),
                                    v.iter().map(|a| *a / norm).collect(),
                                    options,
                                )
                            })
                        }
                    }
                },
            )
    })
}

/// A batch of requests plus a shuffle permutation: some entries are
/// duplicated (cache-hit replays), and the order is scrambled by the
/// permutation so queue order differs from generation order.
fn arb_batch() -> impl Strategy<Value = Vec<PrepareRequest>> {
    (
        proptest::collection::vec(arb_request(), 2..6),
        proptest::collection::vec(0usize..1000, 2..6),
        0u64..u64::MAX,
    )
        .prop_map(|(mut requests, picks, seed)| {
            // Duplicate a few requests so every run exercises cache hits.
            let base = requests.len();
            for pick in picks {
                requests.push(requests[pick % base].clone());
            }
            // Fisher–Yates with a tiny deterministic LCG keyed on `seed`.
            let mut state = seed | 1;
            for i in (1..requests.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                requests.swap(i, j);
            }
            requests
        })
}

/// The sequential reference: every request through the one-shot pipeline.
fn sequential_circuits(requests: &[PrepareRequest]) -> Vec<mdq::circuit::Circuit> {
    requests
        .iter()
        .map(|request| request.prepare_sequential().expect("pipeline runs").circuit)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine's output is independent of worker count and scheduling,
    /// and equal to the sequential pipeline — instruction by instruction,
    /// including jobs served as cache-hit replays.
    #[test]
    fn prop_batch_is_bit_identical_to_sequential_prepare(batch in arb_batch()) {
        let expected = sequential_circuits(&batch);
        for workers in [1usize, 2, 4] {
            let engine = BatchEngine::new(EngineConfig::default().with_workers(workers));
            let results = engine.run(&batch);
            prop_assert_eq!(results.len(), expected.len());
            for (index, (result, want)) in results.iter().zip(&expected).enumerate() {
                let report = result.as_ref().expect("job succeeds");
                prop_assert_eq!(
                    report.circuit.len(),
                    want.len(),
                    "instruction count, request {} at {} workers",
                    index,
                    workers
                );
                for (slot, (got, want)) in
                    report.circuit.iter().zip(want.iter()).enumerate()
                {
                    prop_assert_eq!(
                        got,
                        want,
                        "instruction {} of request {} at {} workers",
                        slot,
                        index,
                        workers
                    );
                }
            }
            // Duplicated requests guarantee cache traffic on every run.
            prop_assert!(engine.stats().cache.hits + engine.stats().cache.misses > 0);
        }
    }

    /// Resubmitting a batch to a warm engine is served from the cache and
    /// stays bit-identical to the cold run.
    #[test]
    fn prop_warm_resubmission_replays_identically(batch in arb_batch()) {
        let engine = BatchEngine::new(EngineConfig::default().with_workers(2));
        let cold = engine.run(&batch);
        let warm = engine.run(&batch);
        let mut hits = 0u64;
        for (cold_result, warm_result) in cold.iter().zip(&warm) {
            let cold_report = cold_result.as_ref().expect("cold job succeeds");
            let warm_report = warm_result.as_ref().expect("warm job succeeds");
            prop_assert_eq!(&cold_report.circuit, &warm_report.circuit);
            hits += u64::from(warm_report.from_cache);
        }
        prop_assert!(hits > 0, "warm resubmission must hit the cache");
        prop_assert!(engine.stats().cache.hits >= hits);
    }
}
