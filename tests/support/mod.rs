//! Shared helpers for the integration tests. Not an integration test
//! itself: cargo only treats direct children of `tests/` as test roots.

pub mod json;
