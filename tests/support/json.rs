//! A minimal JSON reader for golden test fixtures.
//!
//! The workspace builds without registry access, so there is no serde; this
//! covers the subset of JSON the fixtures use (objects, arrays, strings
//! with basic escapes, numbers, booleans, null) with line-aware errors.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; fixture integers stay exact well
    /// beyond the sizes used here).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is not preserved.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The elements of an array.
    ///
    /// # Panics
    ///
    /// Panics (with the fixture context) if the value is not an array.
    pub fn expect_array(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            other => panic!("expected array, found {other:?}"),
        }
    }

    /// The text of a string value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a string.
    pub fn expect_str(&self) -> &str {
        match self {
            Json::String(text) => text,
            other => panic!("expected string, found {other:?}"),
        }
    }

    /// The members of an object.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an object.
    pub fn expect_object(&self) -> &BTreeMap<String, Json> {
        match self {
            Json::Object(members) => members,
            other => panic!("expected object, found {other:?}"),
        }
    }

    /// A number as a non-negative integer.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a number or not a non-negative integer.
    pub fn expect_usize(&self) -> usize {
        match self {
            Json::Number(x) if *x >= 0.0 && x.fract() == 0.0 => *x as usize,
            other => panic!("expected non-negative integer, found {other:?}"),
        }
    }
}

/// A parse failure with its byte offset and line number.
#[derive(Debug, Clone)]
pub struct ParseError {
    message: String,
    line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        ParseError {
            message: message.into(),
            line,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            if members.insert(key.clone(), value).is_some() {
                return Err(self.error(format!("duplicate key `{key}`")));
            }
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(
                                self.error(format!("unsupported escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (fixtures contain multi-byte text).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}
