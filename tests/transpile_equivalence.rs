//! Integration test: the two-qudit transpiler preserves circuit semantics.
//!
//! The paper defers multi-controlled → two-qudit lowering to \[35\], \[36\];
//! our transpiler must therefore be *verified*, not assumed: for circuits
//! with up to 4 controls over mixed dimensions, running the lowered circuit
//! (ancillas in |0⟩) must reproduce the original circuit's action exactly
//! and return every ancilla to |0⟩.

use mdq::circuit::{transpile, Circuit, Control, Gate, Instruction};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::sim::StateVector;

/// Deterministic pseudo-random amplitudes for input states.
fn pseudo_random_state(dims: &Dims, seed: u64) -> Vec<Complex> {
    let n = dims.space_size();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let v: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
    let norm = mdq::num::norm(&v);
    v.into_iter().map(|a| a / norm).collect()
}

/// Applies `circuit` directly and through the transpiler, comparing results.
fn assert_transpile_equivalent(circuit: &Circuit, seed: u64) {
    let dims = circuit.dims().clone();
    let input = pseudo_random_state(&dims, seed);

    let mut direct = StateVector::from_amplitudes(dims.clone(), &input).unwrap();
    direct.apply_circuit(circuit);

    let lowered = transpile::to_two_qudit(circuit).unwrap();
    for instr in lowered.circuit.iter() {
        assert!(
            instr.qudits().count() <= 2,
            "instruction touches more than two qudits: {instr}"
        );
    }
    let base = StateVector::from_amplitudes(dims, &input).unwrap();
    let mut extended = base.with_ancillas(&vec![2; lowered.ancilla_count]);
    extended.apply_circuit(&lowered.circuit);
    let (reduced, leaked) = extended.without_ancillas(lowered.original_qudits);

    assert!(
        leaked < 1e-18,
        "ancillas not returned to |0⟩: leaked {leaked}"
    );
    let fid = reduced.fidelity(&direct);
    assert!(
        (fid - 1.0).abs() < 1e-9,
        "transpiled circuit differs: fidelity {fid}"
    );
    // Fidelity 1 still allows a global-phase mismatch; the lowering must be
    // exact including phase, because it may be used inside larger circuits.
    for (a, b) in reduced.amplitudes().iter().zip(direct.amplitudes()) {
        assert!(a.approx_eq(*b, 1e-9), "amplitude mismatch: {a} vs {b}");
    }
}

#[test]
fn two_controls_givens_on_mixed_register() {
    let dims = Dims::new(vec![3, 4, 2]).unwrap();
    let mut c = Circuit::new(dims);
    c.push(Instruction::controlled(
        2,
        Gate::givens(0, 1, 1.234, -0.7),
        vec![Control::new(0, 2), Control::new(1, 3)],
    ))
    .unwrap();
    assert_transpile_equivalent(&c, 42);
}

#[test]
fn two_controls_all_control_levels() {
    // Exhaustively check every control-level combination on a [3,3,2]
    // register: the gate must fire exactly on its (l0, l1) pair.
    for l0 in 0..3 {
        for l1 in 0..3 {
            let dims = Dims::new(vec![3, 3, 2]).unwrap();
            let mut c = Circuit::new(dims);
            c.push(Instruction::controlled(
                2,
                Gate::givens(0, 1, 0.9, 0.3),
                vec![Control::new(0, l0), Control::new(1, l1)],
            ))
            .unwrap();
            assert_transpile_equivalent(&c, 7 + (l0 * 3 + l1) as u64);
        }
    }
}

#[test]
fn three_controls_z_rotation() {
    let dims = Dims::new(vec![2, 3, 2, 4]).unwrap();
    let mut c = Circuit::new(dims);
    c.push(Instruction::controlled(
        3,
        Gate::z_rotation(1, 3, 2.1),
        vec![Control::new(0, 1), Control::new(1, 2), Control::new(2, 0)],
    ))
    .unwrap();
    assert_transpile_equivalent(&c, 99);
}

#[test]
fn four_controls_fourier_payload() {
    let dims = Dims::new(vec![2, 2, 3, 2, 3]).unwrap();
    let mut c = Circuit::new(dims);
    c.push(Instruction::controlled(
        4,
        Gate::fourier(),
        vec![
            Control::new(0, 1),
            Control::new(1, 0),
            Control::new(2, 2),
            Control::new(3, 1),
        ],
    ))
    .unwrap();
    assert_transpile_equivalent(&c, 1234);
}

#[test]
fn mixed_sequence_of_instructions() {
    let dims = Dims::new(vec![3, 2, 4]).unwrap();
    let mut c = Circuit::new(dims);
    c.push(Instruction::local(0, Gate::fourier())).unwrap();
    c.push(Instruction::controlled(
        2,
        Gate::givens(1, 3, 0.4, 0.0),
        vec![Control::new(0, 1), Control::new(1, 1)],
    ))
    .unwrap();
    c.push(Instruction::controlled(
        1,
        Gate::shift(1),
        vec![Control::new(0, 2)],
    ))
    .unwrap();
    c.push(Instruction::controlled(
        0,
        Gate::z_rotation(0, 2, -1.1),
        vec![Control::new(1, 1), Control::new(2, 3)],
    ))
    .unwrap();
    assert_transpile_equivalent(&c, 555);
}

#[test]
fn payload_shift_gate_with_two_controls() {
    let dims = Dims::new(vec![2, 3, 5]).unwrap();
    let mut c = Circuit::new(dims);
    c.push(Instruction::controlled(
        2,
        Gate::shift(2),
        vec![Control::new(0, 1), Control::new(1, 2)],
    ))
    .unwrap();
    assert_transpile_equivalent(&c, 2024);
}
