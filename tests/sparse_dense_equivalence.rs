//! Integration test: the sparse pipeline is a drop-in replacement for the
//! dense one on every structured benchmark family, and extends it to
//! registers the dense path cannot touch.

use mdq::core::{prepare, prepare_sparse, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::sim::StateVector;
use mdq::states;

fn dims(v: &[usize]) -> Dims {
    Dims::new(v.to_vec()).unwrap()
}

#[test]
fn sparse_and_dense_pipelines_emit_identical_circuits() {
    let d = dims(&[3, 6, 2]);
    let cases: Vec<(Vec<mdq::num::Complex>, states::sparse::SparseState)> = vec![
        (states::ghz(&d), states::sparse::ghz(&d)),
        (states::w_state(&d), states::sparse::w_state(&d)),
        (states::embedded_w(&d), states::sparse::embedded_w(&d)),
        (states::dicke(&d, 2), states::sparse::dicke(&d, 2)),
        (
            states::cyclic(&d, &[1, 0, 0]),
            states::sparse::cyclic(&d, &[1, 0, 0]),
        ),
    ];
    let opts = PrepareOptions::exact().without_zero_subtrees();
    for (i, (dense, sparse)) in cases.iter().enumerate() {
        let dr = prepare(&d, dense, opts).unwrap();
        let sr = prepare_sparse(&d, sparse, opts).unwrap();
        assert_eq!(dr.circuit, sr.circuit, "family {i}");
        assert_eq!(dr.report.operations, sr.report.operations, "family {i}");
        assert_eq!(
            dr.report.nodes_initial, sr.report.nodes_initial,
            "family {i}"
        );
        assert_eq!(
            dr.report.distinct_c_initial, sr.report.distinct_c_initial,
            "family {i}"
        );
    }
}

#[test]
fn sparse_circuits_verify_on_simulable_registers() {
    let d = dims(&[9, 5, 6, 3]);
    for entries in [
        states::sparse::ghz(&d),
        states::sparse::w_state(&d),
        states::sparse::embedded_w(&d),
    ] {
        let r = prepare_sparse(&d, &entries, PrepareOptions::exact()).unwrap();
        let mut s = StateVector::ground(d.clone());
        s.apply_circuit(&r.circuit);
        // Reconstruct the dense target from the sparse spec.
        let mut target = vec![mdq::num::Complex::ZERO; d.space_size()];
        for (digits, amp) in &entries {
            target[d.index_of(digits)] = *amp;
        }
        let f = s.fidelity_with_amplitudes(&target);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }
}

#[test]
fn sparse_pipeline_handles_very_large_registers() {
    // 22 qudits: Σ space ≈ 1.6e10; diagrams stay tiny.
    let pattern: Vec<usize> = (0..22).map(|i| 2 + (i % 4)).collect();
    let d = dims(&pattern);
    for (entries, max_nodes) in [
        (states::sparse::ghz(&d), 1 + 2 * 21),
        (states::sparse::embedded_w(&d), 22 * 22), // generous bound
    ] {
        let r = prepare_sparse(&d, &entries, PrepareOptions::exact()).unwrap();
        assert!(
            r.dd.node_count() <= max_nodes,
            "node count {} exceeds {max_nodes}",
            r.dd.node_count()
        );
        // Every support amplitude is representable and correct in modulus.
        let norm: f64 = entries
            .iter()
            .map(|(_, a)| a.norm_sqr())
            .sum::<f64>()
            .sqrt();
        for (digits, amp) in &entries {
            let got = r.dd.amplitude(digits);
            assert!(
                (got.abs() - amp.abs() / norm).abs() < 1e-12,
                "amplitude mismatch at {digits:?}"
            );
        }
    }
}

#[test]
fn sparse_approximation_prunes_skewed_states() {
    // A sparse state with one dominant and many tiny branches: the 0.98
    // threshold prunes the tail.
    let d = dims(&[4, 4, 4, 4]);
    let mut entries = vec![(vec![0, 0, 0, 0], mdq::num::Complex::real(10.0))];
    for k in 1..4 {
        entries.push((vec![k, k, k, k], mdq::num::Complex::real(0.1)));
    }
    let exact = prepare_sparse(&d, &entries, PrepareOptions::exact()).unwrap();
    let approx = prepare_sparse(&d, &entries, PrepareOptions::approximated(0.98)).unwrap();
    assert!(approx.report.removed_nodes > 0);
    assert!(approx.report.operations < exact.report.operations);
    assert!(approx.report.fidelity_bound >= 0.98);
}
