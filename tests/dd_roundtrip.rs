//! Property-based round-trip and canonicity tests for the decision-diagram
//! layer, driven through the `mdq` facade: building a diagram from random
//! amplitudes and reading it back must be lossless (within tolerance);
//! arena-built diagrams must be canonical — `reduce()` is a structural
//! no-op on them — and structurally equal states built from dense vs.
//! sparse inputs must produce identical diagrams.

use mdq::dd::{BuildOptions, StateDd};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use proptest::prelude::*;

/// Random mixed-radix registers of 2–4 qudits with local dimensions 2–5.
fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..6, 2..5).prop_map(|v| Dims::new(v).unwrap())
}

/// A normalized random amplitude vector for the given register.
fn arb_state(dims: &Dims) -> impl Strategy<Value = Vec<Complex>> {
    let n = dims.space_size();
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n).prop_filter_map(
        "state must have nonzero norm",
        |parts| {
            let v: Vec<Complex> = parts
                .into_iter()
                .map(|(re, im)| Complex::new(re, im))
                .collect();
            let norm = mdq::num::norm(&v);
            (norm > 1e-6).then(|| v.iter().map(|a| *a / norm).collect::<Vec<_>>())
        },
    )
}

fn arb_dims_and_state() -> impl Strategy<Value = (Dims, Vec<Complex>)> {
    arb_dims().prop_flat_map(|d| {
        let s = arb_state(&d);
        (Just(d), s)
    })
}

/// A random *sparse* state: a handful of basis states with random
/// amplitudes, described both densely and as a support list.
fn arb_sparse_state() -> impl Strategy<Value = (Dims, Vec<(Vec<usize>, Complex)>)> {
    arb_dims().prop_flat_map(|d| {
        let n = d.space_size();
        let support = proptest::collection::vec((0..n, (-1.0..1.0f64, -1.0..1.0f64)), 1..8)
            .prop_filter_map("support must have nonzero norm", move |entries| {
                let v: Vec<(usize, Complex)> = entries
                    .into_iter()
                    .map(|(i, (re, im))| (i, Complex::new(re, im)))
                    .collect();
                let norm: f64 = v.iter().map(|(_, a)| a.norm_sqr()).sum::<f64>().sqrt();
                (norm > 1e-6).then_some(v)
            });
        (Just(d), support).prop_map(|(d, v)| {
            let entries = v
                .into_iter()
                .map(|(i, a)| (d.digits_of(i), a))
                .collect::<Vec<_>>();
            (d, entries)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_from_amplitudes_to_amplitudes_round_trips((dims, amps) in arb_dims_and_state()) {
        let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        let back = dd.to_amplitudes();
        prop_assert_eq!(back.len(), amps.len());
        for (i, (a, b)) in amps.iter().zip(back.iter()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-7),
                "amplitude {} drifted: {:?} vs {:?}", i, a, b
            );
        }
        prop_assert!(mdq::num::fidelity(&amps, &back) > 1.0 - 1e-9);
    }

    #[test]
    fn prop_arena_builds_are_canonical((dims, amps) in arb_dims_and_state()) {
        // The hash-consing build interns every subtree, so reduction is a
        // structural no-op: same node count, same edge count, and every
        // amplitude unchanged.
        let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        prop_assert!(dd.is_canonical());
        prop_assert!(dd.check_canonical(), "unique table left duplicates");
        let reduced = dd.reduce();
        prop_assert_eq!(reduced.node_count(), dd.node_count());
        prop_assert_eq!(reduced.edge_count(), dd.edge_count());
        let back = reduced.to_amplitudes();
        for (i, (a, b)) in amps.iter().zip(back.iter()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-7),
                "amplitude {} changed by reduce: {:?} vs {:?}", i, a, b
            );
        }
    }

    #[test]
    fn prop_tree_reduce_reaches_the_canonical_size((dims, amps) in arb_dims_and_state()) {
        // Reducing the unreduced Table-1 tree must land on exactly the
        // diagram the canonical build produces directly.
        let canonical = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        let tree = StateDd::from_amplitudes(
            &dims,
            &amps,
            BuildOptions::default().keep_zero_subtrees(true),
        ).unwrap();
        let reduced = tree.reduce();
        prop_assert!(reduced.is_canonical());
        prop_assert_eq!(reduced.node_count(), canonical.node_count());
        prop_assert_eq!(reduced.edge_count(), canonical.edge_count());
        for (i, (a, b)) in amps.iter().zip(reduced.to_amplitudes().iter()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-7),
                "amplitude {} changed by reduce: {:?} vs {:?}", i, a, b
            );
        }
    }

    #[test]
    fn prop_dense_and_sparse_builds_agree((dims, entries) in arb_sparse_state()) {
        // Structurally equal states must intern to structurally equal
        // diagrams regardless of the construction path.
        let sparse = StateDd::from_sparse(&dims, &entries, BuildOptions::default()).unwrap();
        let mut dense = vec![Complex::ZERO; dims.space_size()];
        for (digits, amp) in &entries {
            dense[dims.index_of(digits)] += *amp;
        }
        let dense = StateDd::from_amplitudes(&dims, &dense, BuildOptions::default()).unwrap();
        prop_assert_eq!(sparse.node_count(), dense.node_count());
        prop_assert_eq!(sparse.edge_count(), dense.edge_count());
        prop_assert!(sparse.is_canonical() && dense.is_canonical());
        prop_assert!((sparse.fidelity(&dense) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prop_reduce_is_idempotent_on_node_count((dims, amps) in arb_dims_and_state()) {
        let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        let once = dd.reduce();
        let twice = once.reduce();
        prop_assert_eq!(once.node_count(), twice.node_count());
    }
}

/// Structured states share far below the full tree; this pins the
/// round-trip on a case where sharing actually fires: in the uniform
/// superposition every subtree of a level is identical, so the canonical
/// build collapses to one node per level — without an explicit `reduce()`.
#[test]
fn uniform_build_shares_aggressively_and_round_trips() {
    let dims = Dims::new(vec![3, 3, 3]).unwrap();
    let state = mdq::states::uniform(&dims);
    let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default()).unwrap();
    assert_eq!(dd.node_count(), dims.len());
    assert_eq!(dd.reduce().node_count(), dims.len());
    for (a, b) in state.iter().zip(dd.to_amplitudes().iter()) {
        assert!(a.approx_eq(*b, 1e-12));
    }
}

/// Acceptance regression: a 20-qudit GHZ state (≈3.6 billion dense
/// amplitudes) must build sparsely with a peak node count polynomial in the
/// support size — the arena holds exactly the interned diagram, nothing
/// transient.
#[test]
fn sparse_build_peak_nodes_polynomial_in_support() {
    let pattern: Vec<usize> = (0..20).map(|i| 2 + (i % 4)).collect();
    let dims = Dims::new(pattern).unwrap();
    let a = Complex::real(1.0 / 2.0_f64.sqrt());
    let entries = vec![(vec![0; 20], a), (vec![1; 20], a)];
    let dd = StateDd::from_sparse(&dims, &entries, BuildOptions::default()).unwrap();
    assert_eq!(dd.node_count(), 1 + 2 * 19);
    // Peak allocation equals the final diagram size.
    assert_eq!(dd.arena().len(), dd.node_count());
    assert!(dd.check_canonical());
}
