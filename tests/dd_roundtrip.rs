//! Property-based round-trip tests for the decision-diagram layer, driven
//! through the `mdq` facade: building a diagram from random amplitudes and
//! reading it back must be lossless (within tolerance), and `reduce()` must
//! preserve every amplitude while never increasing the node count.

use mdq::dd::{BuildOptions, StateDd};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use proptest::prelude::*;

/// Random mixed-radix registers of 2–4 qudits with local dimensions 2–5.
fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..6, 2..5).prop_map(|v| Dims::new(v).unwrap())
}

/// A normalized random amplitude vector for the given register.
fn arb_state(dims: &Dims) -> impl Strategy<Value = Vec<Complex>> {
    let n = dims.space_size();
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n).prop_filter_map(
        "state must have nonzero norm",
        |parts| {
            let v: Vec<Complex> = parts
                .into_iter()
                .map(|(re, im)| Complex::new(re, im))
                .collect();
            let norm = mdq::num::norm(&v);
            (norm > 1e-6).then(|| v.iter().map(|a| *a / norm).collect::<Vec<_>>())
        },
    )
}

fn arb_dims_and_state() -> impl Strategy<Value = (Dims, Vec<Complex>)> {
    arb_dims().prop_flat_map(|d| {
        let s = arb_state(&d);
        (Just(d), s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_from_amplitudes_to_amplitudes_round_trips((dims, amps) in arb_dims_and_state()) {
        let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        let back = dd.to_amplitudes();
        prop_assert_eq!(back.len(), amps.len());
        for (i, (a, b)) in amps.iter().zip(back.iter()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-7),
                "amplitude {} drifted: {:?} vs {:?}", i, a, b
            );
        }
        prop_assert!(mdq::num::fidelity(&amps, &back) > 1.0 - 1e-9);
    }

    #[test]
    fn prop_reduce_preserves_amplitudes_and_node_count((dims, amps) in arb_dims_and_state()) {
        let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        let reduced = dd.reduce();
        prop_assert!(
            reduced.node_count() <= dd.node_count(),
            "reduce grew the diagram: {} -> {}", dd.node_count(), reduced.node_count()
        );
        let back = reduced.to_amplitudes();
        for (i, (a, b)) in amps.iter().zip(back.iter()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-7),
                "amplitude {} changed by reduce: {:?} vs {:?}", i, a, b
            );
        }
    }

    #[test]
    fn prop_reduce_is_idempotent_on_node_count((dims, amps) in arb_dims_and_state()) {
        let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        let once = dd.reduce();
        let twice = once.reduce();
        prop_assert_eq!(once.node_count(), twice.node_count());
    }
}

/// Structured states reduce far below the full tree; this pins the
/// round-trip on a case where sharing actually fires: in the uniform
/// superposition every subtree of a level is identical, so the reduced
/// diagram collapses to one node per level.
#[test]
fn uniform_reduction_shares_aggressively_and_round_trips() {
    let dims = Dims::new(vec![3, 3, 3]).unwrap();
    let state = mdq::states::uniform(&dims);
    let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default()).unwrap();
    let reduced = dd.reduce();
    assert!(reduced.node_count() < dd.node_count());
    for (a, b) in state.iter().zip(reduced.to_amplitudes().iter()) {
        assert!(a.approx_eq(*b, 1e-12));
    }
}
