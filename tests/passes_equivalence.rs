//! Integration test: every circuit-rewriting pass preserves the semantics
//! of synthesized state-preparation circuits.
//!
//! Chains exercised on real synthesis output (not hand-built circuits):
//! * `decompose_phases` — the paper's Z(θ) identity;
//! * `merge_rotations` — adjacent-rotation fusion;
//! * `drop_identities`;
//! * arbitrary compositions of the above.

use mdq::circuit::{passes, Circuit};
use mdq::core::{prepare, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::sim::StateVector;
use mdq::states::{ghz, random_state, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dims(v: &[usize]) -> Dims {
    Dims::new(v.to_vec()).unwrap()
}

fn fidelity_from_ground(circuit: &Circuit, target: &[Complex]) -> f64 {
    let mut s = StateVector::ground(circuit.dims().clone());
    s.apply_circuit(circuit);
    s.fidelity_with_amplitudes(target)
}

fn workloads() -> Vec<(Dims, Vec<Complex>)> {
    let mut rng = StdRng::seed_from_u64(13);
    let d1 = dims(&[3, 6, 2]);
    let d2 = dims(&[2, 3, 4]);
    vec![
        (d1.clone(), ghz(&d1)),
        (d1.clone(), w_state(&d1)),
        (
            d1.clone(),
            random_state(&d1, RandomKind::ReImUniform, &mut rng),
        ),
        (
            d2.clone(),
            random_state(&d2, RandomKind::MagnitudePhase, &mut rng),
        ),
    ]
}

#[test]
fn phase_decomposition_preserves_prepared_states() {
    for (d, target) in workloads() {
        let circuit = prepare(&d, &target, PrepareOptions::exact())
            .unwrap()
            .circuit;
        let (decomposed, expanded) = passes::decompose_phases(&circuit);
        assert!(expanded > 0, "synthesis always emits phase rotations");
        // Z rotations count as 1 op but expand to 3 Givens each.
        assert_eq!(decomposed.len(), circuit.len() + 2 * expanded);
        let f = fidelity_from_ground(&decomposed, &target);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f} over {d}");
    }
}

#[test]
fn rotation_merging_preserves_prepared_states() {
    for (d, target) in workloads() {
        let circuit = prepare(&d, &target, PrepareOptions::exact())
            .unwrap()
            .circuit;
        let (merged, removed) = passes::merge_rotations(&circuit, 1e-12);
        let f = fidelity_from_ground(&merged, &target);
        assert!(
            (f - 1.0).abs() < 1e-9,
            "fidelity {f} over {d} ({removed} removed)"
        );
        assert!(merged.len() + removed == circuit.len());
    }
}

#[test]
fn merging_removes_identity_rotations_on_sparse_states() {
    // GHZ circuits carry many θ=0 rotations from the exact operation-count
    // semantics; the merge pass strips them without touching fidelity.
    let d = dims(&[3, 6, 2]);
    let target = ghz(&d);
    let circuit = prepare(&d, &target, PrepareOptions::exact())
        .unwrap()
        .circuit;
    let (merged, removed) = passes::merge_rotations(&circuit, 1e-12);
    assert!(removed > 0);
    assert!(merged.len() < circuit.len());
    let f = fidelity_from_ground(&merged, &target);
    assert!((f - 1.0).abs() < 1e-9);
}

#[test]
fn full_pass_chain_preserves_prepared_states() {
    for (d, target) in workloads() {
        let circuit = prepare(&d, &target, PrepareOptions::exact())
            .unwrap()
            .circuit;
        let (decomposed, _) = passes::decompose_phases(&circuit);
        let (merged, _) = passes::merge_rotations(&decomposed, 1e-12);
        let mut cleaned = merged.clone();
        cleaned.drop_identities(1e-12);
        let f = fidelity_from_ground(&cleaned, &target);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f} over {d}");
        // After decomposition no Z rotations remain.
        assert_eq!(cleaned.stats().phase_count, 0);
        for instr in cleaned.iter() {
            assert!(
                !matches!(instr.gate, mdq::circuit::Gate::ZRotation { .. }),
                "Z rotation survived decomposition"
            );
        }
    }
}

#[test]
fn serialization_round_trips_synthesized_circuits() {
    use mdq::circuit::serialize;
    for (d, target) in workloads() {
        let circuit = prepare(&d, &target, PrepareOptions::exact())
            .unwrap()
            .circuit;
        let text = serialize::to_text(&circuit).unwrap();
        let back = serialize::from_text(&text).unwrap();
        assert_eq!(circuit, back, "round trip over {d}");
        let f = fidelity_from_ground(&back, &target);
        assert!((f - 1.0).abs() < 1e-9);
    }
}
