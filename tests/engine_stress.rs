//! Deterministic stress/chaos harness for the hardened `EngineService`:
//! multiple submitter threads flood a bounded service past its queue depth
//! with a mix of good, malformed, and below-verification-threshold jobs,
//! and the harness proves — at 1, 2, and 4 workers, under both scheduling
//! policies — that
//!
//! * every submission is accounted for **exactly once** (completed,
//!   rejected by admission control, failed in the pipeline, or failed
//!   verification),
//! * every accepted-and-completed job is **bit-identical** to the one-shot
//!   sequential pipeline,
//! * the service's own counters (`EngineStats::{jobs, failures, rejected,
//!   verification_failures, high_watermark}`) reconcile with the harness's
//!   independent ledger.
//!
//! The chaos is in the *timing* (which submissions get rejected, which hit
//! the cache); every assertion is an invariant that holds for all
//! interleavings, which is what makes the suite deterministic.
//!
//! This file also carries the `JobHandle` edge-case regression tests
//! (zero-duration timeouts, timeout racing completion, waits after
//! `shutdown_now`, dropped handles mid-flight) that the PR's satellites
//! call for. It is timing-sensitive in debug builds; CI runs it in a
//! dedicated `--release` job.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use mdq::circuit::Circuit;
use mdq::core::{prepare, PrepareOptions, Preparer, VerificationPolicy};
use mdq::engine::{
    EngineConfig, EngineError, EngineService, JobHandle, PrepareRequest, Priority, SchedulingPolicy,
};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::states::{ghz, random_state, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dims(v: &[usize]) -> Dims {
    Dims::new(v.to_vec()).unwrap()
}

/// What the harness knows a template request must resolve to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expected {
    /// Resolves `Ok` with the precomputed sequential circuit.
    Success,
    /// Fails in the pipeline with `EngineError::Prepare`.
    Malformed,
    /// Fails verification with the precomputed fidelity.
    BelowThreshold,
}

/// One workload template: the request, its expected outcome, and (where
/// applicable) the sequential reference circuit / replay fidelity it must
/// reproduce bit-for-bit.
struct Template {
    request: PrepareRequest,
    expected: Expected,
    circuit: Option<Circuit>,
    fidelity: Option<f64>,
}

impl Template {
    fn success(request: PrepareRequest) -> Self {
        let circuit = request
            .prepare_sequential()
            .expect("success template runs sequentially")
            .circuit;
        Template {
            request,
            expected: Expected::Success,
            circuit: Some(circuit),
            fidelity: None,
        }
    }

    fn malformed(request: PrepareRequest) -> Self {
        request
            .prepare_sequential()
            .expect_err("malformed template must fail sequentially");
        Template {
            request,
            expected: Expected::Malformed,
            circuit: None,
            fidelity: None,
        }
    }

    /// An approximated job whose verification floor is calibrated strictly
    /// above the fidelity it actually reaches, so it deterministically
    /// fails verification (and only verification).
    fn below_threshold(dims: &Dims, target: Vec<Complex>) -> Self {
        let opts = PrepareOptions::approximated(0.9).without_zero_subtrees();
        let sequential = prepare(dims, &target, opts).expect("pipeline runs");
        assert!(
            sequential.report.pruned_mass > 0.0,
            "below-threshold template must actually lose mass"
        );
        let reached = Preparer::new()
            .verify_dense(&sequential.circuit, &target)
            .expect("replay runs")
            .fidelity;
        assert!(reached < 1.0 - 1e-9, "reached fidelity must be below 1");
        let floor = (reached + 1.0) / 2.0;
        Template {
            request: PrepareRequest::dense(dims.clone(), target, opts)
                .with_verification(VerificationPolicy::replay(floor)),
            expected: Expected::BelowThreshold,
            circuit: None,
            fidelity: Some(reached),
        }
    }
}

/// The mixed chaos workload: dense/sparse, exact/approximated, verified and
/// unverified good jobs, malformed jobs (wrong length, bad digits), and a
/// calibrated below-threshold job — with varied priorities so the
/// size-aware scheduler actually reorders.
fn templates() -> Vec<Template> {
    let d3 = dims(&[3, 6, 2]);
    let d2 = dims(&[4, 3]);
    let sparse_dims = dims(&[3, 4, 2, 5, 3, 2, 4, 3]);
    let mut rng = StdRng::seed_from_u64(0x5712E55);
    vec![
        Template::success(PrepareRequest::dense(
            d3.clone(),
            ghz(&d3),
            PrepareOptions::exact(),
        )),
        Template::success(
            PrepareRequest::dense(d3.clone(), w_state(&d3), PrepareOptions::approximated(0.98))
                .with_priority(Priority::High),
        ),
        Template::success(
            PrepareRequest::sparse(
                sparse_dims.clone(),
                mdq::states::sparse::ghz(&sparse_dims),
                PrepareOptions::exact(),
            )
            .with_priority(Priority::Low),
        ),
        // A verified good job: exact synthesis replays at fidelity ~1.
        Template::success(
            PrepareRequest::dense(
                d2.clone(),
                random_state(&d2, RandomKind::ReImUniform, &mut rng),
                PrepareOptions::exact().without_zero_subtrees(),
            )
            .with_verification(VerificationPolicy::replay(0.999)),
        ),
        // A verified sparse job.
        Template::success(
            PrepareRequest::sparse(
                sparse_dims.clone(),
                mdq::states::sparse::w_state(&sparse_dims),
                PrepareOptions::exact(),
            )
            .with_verification(VerificationPolicy::replay(0.999)),
        ),
        // Malformed: wrong amplitude-vector length.
        Template::malformed(PrepareRequest::dense(
            d2.clone(),
            vec![Complex::ONE],
            PrepareOptions::exact(),
        )),
        // Malformed: digit out of range for the register.
        Template::malformed(PrepareRequest::sparse(
            d2.clone(),
            vec![(vec![0, 9], Complex::ONE)],
            PrepareOptions::exact(),
        )),
        // Deterministically fails its (calibrated) verification floor.
        Template::below_threshold(&d3, random_state(&d3, RandomKind::ReImUniform, &mut rng)),
    ]
}

const SUBMITTERS: usize = 4;
const PER_SUBMITTER: usize = 18;
const QUEUE_DEPTH: usize = 4;

/// Floods a bounded service from `SUBMITTERS` threads (alternating the
/// blocking and the non-blocking submission paths), waits out every
/// accepted handle, and reconciles the outcome ledger with both the
/// templates' expectations and the service's own counters.
fn flood_and_reconcile(workers: usize, policy: SchedulingPolicy) {
    let templates = templates();
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(workers)
            .with_queue_depth(QUEUE_DEPTH)
            .with_scheduling(policy),
    );
    let rejected_total = AtomicU64::new(0);

    // Fan submissions out from SUBMITTERS threads; collect (template
    // index, handle) pairs for everything that was admitted.
    let accepted: Vec<(usize, JobHandle)> = thread::scope(|scope| {
        let submitter_handles: Vec<_> = (0..SUBMITTERS)
            .map(|submitter| {
                let templates = &templates;
                let service = &service;
                let rejected_total = &rejected_total;
                scope.spawn(move || {
                    let mut admitted = Vec::new();
                    for i in 0..PER_SUBMITTER {
                        let index = (submitter + i * SUBMITTERS) % templates.len();
                        let request = templates[index].request.clone();
                        if (submitter + i) % 2 == 0 {
                            // Non-blocking path: may be refused by
                            // admission control.
                            match service.try_submit(request) {
                                Ok(handle) => admitted.push((index, handle)),
                                Err(refused) => {
                                    assert!(
                                        matches!(
                                            refused.error,
                                            EngineError::QueueFull {
                                                limit: QUEUE_DEPTH,
                                                ..
                                            }
                                        ),
                                        "unexpected refusal: {:?}",
                                        refused.error
                                    );
                                    assert_eq!(
                                        refused.request, templates[index].request,
                                        "rejected request handed back intact"
                                    );
                                    rejected_total.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        } else {
                            // Blocking path: parks until space, never
                            // refused while the service is up.
                            admitted.push((index, service.submit(request)));
                        }
                    }
                    admitted
                })
            })
            .collect();
        submitter_handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread never panics"))
            .collect()
    });

    // Wait out every accepted handle and classify its outcome against the
    // template's expectation.
    let (mut completed, mut prepare_failed, mut verification_failed) = (0u64, 0u64, 0u64);
    for (index, handle) in accepted {
        let template = &templates[index];
        match handle.wait() {
            Ok(report) => {
                assert_eq!(
                    template.expected,
                    Expected::Success,
                    "template {index} must not succeed"
                );
                assert_eq!(
                    &report.circuit,
                    template.circuit.as_ref().unwrap(),
                    "template {index}: accepted result bit-identical to sequential \
                     ({workers} workers, {policy:?})"
                );
                if template.request.options.verification.is_enabled() {
                    assert!(
                        report.verification.is_some(),
                        "verified serving carries its report"
                    );
                }
                completed += 1;
            }
            Err(EngineError::Prepare(_)) => {
                assert_eq!(template.expected, Expected::Malformed);
                prepare_failed += 1;
            }
            Err(EngineError::VerificationFailed {
                fidelity,
                threshold,
            }) => {
                assert_eq!(template.expected, Expected::BelowThreshold);
                assert!(fidelity < threshold);
                let expected_fidelity = template.fidelity.unwrap();
                assert!(
                    (fidelity - expected_fidelity).abs() < 1e-12,
                    "measured fidelity {fidelity} deviates from the calibrated \
                     {expected_fidelity}"
                );
                verification_failed += 1;
            }
            Err(other) => panic!("unexpected outcome for template {index}: {other:?}"),
        }
    }

    // The ledger: every submission resolved exactly once.
    let rejected = rejected_total.load(Ordering::Relaxed);
    let submitted = (SUBMITTERS * PER_SUBMITTER) as u64;
    assert_eq!(
        completed + prepare_failed + verification_failed + rejected,
        submitted,
        "every submission accounted for exactly once ({workers} workers, {policy:?})"
    );

    // The service's own counters agree with the independent ledger.
    let stats = service.stats();
    assert_eq!(stats.jobs, completed, "jobs == completed");
    assert_eq!(stats.failures, prepare_failed, "failures == prepare errors");
    assert_eq!(
        stats.verification_failures, verification_failed,
        "verification_failures == below-threshold outcomes"
    );
    assert_eq!(stats.rejected, rejected, "rejected == admission refusals");
    assert!(
        stats.high_watermark <= QUEUE_DEPTH,
        "queue never exceeded its bound (saw {})",
        stats.high_watermark
    );
    if rejected > 0 {
        assert_eq!(
            stats.high_watermark, QUEUE_DEPTH,
            "a refusal implies the queue was full"
        );
    }
    assert!(
        stats.verified > 0,
        "verified good templates recurred, so passing verifications happened"
    );
    service.shutdown();
}

#[test]
fn stress_flood_reconciles_at_one_worker() {
    flood_and_reconcile(1, SchedulingPolicy::SizeAware);
    flood_and_reconcile(1, SchedulingPolicy::Fifo);
}

#[test]
fn stress_flood_reconciles_at_two_workers() {
    flood_and_reconcile(2, SchedulingPolicy::SizeAware);
    flood_and_reconcile(2, SchedulingPolicy::Fifo);
}

#[test]
fn stress_flood_reconciles_at_four_workers() {
    flood_and_reconcile(4, SchedulingPolicy::SizeAware);
    flood_and_reconcile(4, SchedulingPolicy::Fifo);
}

/// A saturated one-slot queue must actually exercise the rejection path:
/// with the single worker pinned on an expensive job and the queue slot
/// taken, a burst of try_submits cannot all be admitted.
#[test]
fn saturated_queue_rejects_and_recovers() {
    let big = dims(&[9, 5, 6, 3]);
    let small = dims(&[2, 2]);
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .with_queue_depth(1)
            .without_cache(),
    );
    let mut rng = StdRng::seed_from_u64(7);
    let busy = service.submit(PrepareRequest::dense(
        big.clone(),
        random_state(&big, RandomKind::ReImUniform, &mut rng),
        PrepareOptions::exact(),
    ));
    let cheap = PrepareRequest::dense(small.clone(), ghz(&small), PrepareOptions::exact());
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..128 {
        match service.try_submit(cheap.clone()) {
            Ok(handle) => accepted.push(handle),
            Err(_) => rejected += 1,
        }
    }
    assert!(
        rejected > 0,
        "a one-slot queue under burst load must refuse"
    );
    // Recovery: after the flood the service still serves everything.
    busy.wait().expect("the big job completes");
    let expected = cheap.prepare_sequential().unwrap().circuit;
    for handle in accepted {
        assert_eq!(
            handle.wait().expect("admitted job resolves").circuit,
            expected
        );
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.high_watermark, 1);
    service.shutdown();
}

/// Satellite: `JobHandle::wait_timeout` with a zero duration never blocks
/// and never corrupts the handle — whatever it observes (pending or
/// already resolved, depending on how the race with the worker goes), the
/// real wait still yields the full result. The purely deterministic
/// pending/resolved/dead-channel semantics are unit-tested in
/// `crates/engine/src/service.rs` (`zero_duration_wait_timeout_is_a_pure_poll`).
#[test]
fn wait_timeout_zero_duration_is_a_nonblocking_poll() {
    let big = dims(&[9, 5, 6, 3]);
    let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
    let mut rng = StdRng::seed_from_u64(11);
    let mut handle = service.submit(PrepareRequest::dense(
        big.clone(),
        random_state(&big, RandomKind::ReImUniform, &mut rng),
        PrepareOptions::exact(),
    ));
    // Zero-duration polls return instantly, resolved or not...
    let early = handle.wait_timeout(Duration::ZERO).is_some();
    let _ = handle.try_wait();
    // ...and never consume the outcome: the real wait still resolves Ok.
    assert!(handle.wait().is_ok());
    // (With one worker and an ~800-amplitude job, the poll almost always
    // fires while the job is still running; either way is valid.)
    let _ = early;
    service.shutdown();
}

/// Satellite: a timeout racing completion either returns `None` (timed
/// out) or the final result — never a partial state — and the result is
/// retained across repeated calls.
#[test]
fn wait_timeout_racing_completion_converges() {
    let d = dims(&[3, 3]);
    let service = EngineService::new(EngineConfig::default().with_workers(1));
    let mut handle = service.submit(PrepareRequest::dense(
        d.clone(),
        ghz(&d),
        PrepareOptions::exact(),
    ));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(outcome) = handle.wait_timeout(Duration::from_micros(50)) {
            assert!(outcome.is_ok());
            break;
        }
        assert!(Instant::now() < deadline, "job must resolve");
    }
    // Retained: polls after resolution keep returning the same outcome.
    assert!(handle.wait_timeout(Duration::ZERO).is_some());
    assert!(handle.try_wait().is_some());
    assert!(handle.wait().is_ok());
    service.shutdown();
}

/// Satellite: waits racing `shutdown_now` must resolve — to the real
/// result for in-flight jobs, to `Shutdown` for still-queued ones — and
/// never hang, even with a zero-duration timeout on a dead channel.
#[test]
fn wait_after_shutdown_now_resolves_and_never_hangs() {
    let d = dims(&[3, 6, 2]);
    let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
    let handles: Vec<JobHandle> = (0..16)
        .map(|_| {
            service.submit(PrepareRequest::dense(
                d.clone(),
                w_state(&d),
                PrepareOptions::exact(),
            ))
        })
        .collect();
    service.shutdown_now();
    let mut shutdown = 0;
    for (i, mut handle) in handles.into_iter().enumerate() {
        if i % 2 == 0 {
            // Bounded wait on a resolved-or-dead channel: must return Some
            // well within the timeout, never hang.
            let outcome = handle
                .wait_timeout(Duration::from_secs(30))
                .expect("resolves within the timeout");
            if matches!(outcome, Err(EngineError::Shutdown)) {
                shutdown += 1;
            }
            // Even a zero-duration poll on the dead channel resolves.
            assert!(handle.wait_timeout(Duration::ZERO).is_some());
        } else {
            match handle.wait() {
                Ok(_) => {}
                Err(EngineError::Shutdown) => shutdown += 1,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
    }
    assert!(shutdown > 0, "a 16-deep queue cannot drain before abort");
}

/// Satellite regression: dropping handles mid-flight under load — for
/// queued, running, and already-finished jobs alike — must not deadlock
/// the pool, leak replies, or corrupt the counters; the service keeps
/// serving and shuts down cleanly.
#[test]
fn dropping_handles_mid_flight_never_deadlocks() {
    let d = dims(&[3, 6, 2]);
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(2)
            .with_queue_depth(QUEUE_DEPTH)
            .without_cache(),
    );
    let mut kept = Vec::new();
    let mut dropped = 0u64;
    let mut rejected = 0u64;
    for i in 0..32 {
        let request = PrepareRequest::dense(d.clone(), w_state(&d), PrepareOptions::exact());
        // Alternate blocking and non-blocking admission under load.
        let admitted = if i % 2 == 0 {
            Some(service.submit(request))
        } else {
            match service.try_submit(request) {
                Ok(handle) => Some(handle),
                Err(_) => {
                    rejected += 1;
                    None
                }
            }
        };
        match admitted {
            // Drop every other admitted handle immediately — the job (and
            // its reply channel) must outlive the handle without issue.
            Some(handle) if i % 4 < 2 => drop(handle),
            Some(handle) => kept.push(handle),
            None => {}
        }
        if i % 4 < 2 && i % 2 == 0 {
            dropped += 1;
        }
    }
    for handle in kept {
        handle.wait().expect("kept handles resolve normally");
    }
    assert!(dropped > 0);
    // Abandoned jobs still ran: the ledger counts admissions, not handles.
    // Waiting on the kept handles only guarantees *those* finished — poll
    // (bounded) for the abandoned remainder before reconciling.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = service.stats();
        if stats.jobs + stats.failures + stats.verification_failures + rejected == 32 {
            break;
        }
        assert!(Instant::now() < deadline, "abandoned jobs must still run");
        thread::yield_now();
    }
    assert_eq!(service.stats().rejected, rejected);
    // Shutdown after the chaos is clean (would hang or panic on a leak).
    service.shutdown();
}
