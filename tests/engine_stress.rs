//! Deterministic stress/chaos harness for the hardened `EngineService`:
//! multiple submitter threads flood a bounded service past its queue depth
//! with a mix of good, malformed, and below-verification-threshold jobs,
//! and the harness proves — at 1, 2, and 4 workers, under both scheduling
//! policies — that
//!
//! * every submission is accounted for **exactly once** (completed,
//!   rejected by admission control, failed in the pipeline, or failed
//!   verification),
//! * every accepted-and-completed job is **bit-identical** to the one-shot
//!   sequential pipeline,
//! * the service's own counters (`EngineStats::{jobs, failures, rejected,
//!   verification_failures, high_watermark}`) reconcile with the harness's
//!   independent ledger.
//!
//! The chaos is in the *timing* (which submissions get rejected, which hit
//! the cache); every assertion is an invariant that holds for all
//! interleavings, which is what makes the suite deterministic.
//!
//! This file also carries the `JobHandle` edge-case regression tests
//! (zero-duration timeouts, timeout racing completion, waits after
//! `shutdown_now`, dropped handles mid-flight) that the PR's satellites
//! call for. It is timing-sensitive in debug builds; CI runs it in a
//! dedicated `--release` job.

use std::fs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use mdq::circuit::Circuit;
use mdq::core::{prepare, PrepareOptions, Preparer, VerificationPolicy};
use mdq::engine::{
    Aging, EngineConfig, EngineError, EngineService, JobHandle, PrepareRequest, Priority,
    SchedulingPolicy, SnapshotError,
};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::states::{ghz, random_state, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dims(v: &[usize]) -> Dims {
    Dims::new(v.to_vec()).unwrap()
}

/// What the harness knows a template request must resolve to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expected {
    /// Resolves `Ok` with the precomputed sequential circuit.
    Success,
    /// Fails in the pipeline with `EngineError::Prepare`.
    Malformed,
    /// Fails verification with the precomputed fidelity.
    BelowThreshold,
}

/// One workload template: the request, its expected outcome, and (where
/// applicable) the sequential reference circuit / replay fidelity it must
/// reproduce bit-for-bit.
struct Template {
    request: PrepareRequest,
    expected: Expected,
    circuit: Option<Circuit>,
    fidelity: Option<f64>,
}

impl Template {
    fn success(request: PrepareRequest) -> Self {
        let circuit = request
            .prepare_sequential()
            .expect("success template runs sequentially")
            .circuit;
        Template {
            request,
            expected: Expected::Success,
            circuit: Some(circuit),
            fidelity: None,
        }
    }

    fn malformed(request: PrepareRequest) -> Self {
        request
            .prepare_sequential()
            .expect_err("malformed template must fail sequentially");
        Template {
            request,
            expected: Expected::Malformed,
            circuit: None,
            fidelity: None,
        }
    }

    /// An approximated job whose verification floor is calibrated strictly
    /// above the fidelity it actually reaches, so it deterministically
    /// fails verification (and only verification).
    fn below_threshold(dims: &Dims, target: Vec<Complex>) -> Self {
        let opts = PrepareOptions::approximated(0.9).without_zero_subtrees();
        let sequential = prepare(dims, &target, opts).expect("pipeline runs");
        assert!(
            sequential.report.pruned_mass > 0.0,
            "below-threshold template must actually lose mass"
        );
        let reached = Preparer::new()
            .verify_dense(&sequential.circuit, &target)
            .expect("replay runs")
            .fidelity;
        assert!(reached < 1.0 - 1e-9, "reached fidelity must be below 1");
        let floor = (reached + 1.0) / 2.0;
        Template {
            request: PrepareRequest::dense(dims.clone(), target, opts)
                .with_verification(VerificationPolicy::replay(floor)),
            expected: Expected::BelowThreshold,
            circuit: None,
            fidelity: Some(reached),
        }
    }
}

/// The mixed chaos workload: dense/sparse, exact/approximated, verified and
/// unverified good jobs, malformed jobs (wrong length, bad digits), and a
/// calibrated below-threshold job — with varied priorities so the
/// size-aware scheduler actually reorders.
fn templates() -> Vec<Template> {
    let d3 = dims(&[3, 6, 2]);
    let d2 = dims(&[4, 3]);
    let sparse_dims = dims(&[3, 4, 2, 5, 3, 2, 4, 3]);
    let mut rng = StdRng::seed_from_u64(0x5712E55);
    vec![
        Template::success(PrepareRequest::dense(
            d3.clone(),
            ghz(&d3),
            PrepareOptions::exact(),
        )),
        Template::success(
            PrepareRequest::dense(d3.clone(), w_state(&d3), PrepareOptions::approximated(0.98))
                .with_priority(Priority::High),
        ),
        Template::success(
            PrepareRequest::sparse(
                sparse_dims.clone(),
                mdq::states::sparse::ghz(&sparse_dims),
                PrepareOptions::exact(),
            )
            .with_priority(Priority::Low),
        ),
        // A verified good job: exact synthesis replays at fidelity ~1.
        Template::success(
            PrepareRequest::dense(
                d2.clone(),
                random_state(&d2, RandomKind::ReImUniform, &mut rng),
                PrepareOptions::exact().without_zero_subtrees(),
            )
            .with_verification(VerificationPolicy::replay(0.999)),
        ),
        // A verified sparse job.
        Template::success(
            PrepareRequest::sparse(
                sparse_dims.clone(),
                mdq::states::sparse::w_state(&sparse_dims),
                PrepareOptions::exact(),
            )
            .with_verification(VerificationPolicy::replay(0.999)),
        ),
        // Malformed: wrong amplitude-vector length.
        Template::malformed(PrepareRequest::dense(
            d2.clone(),
            vec![Complex::ONE],
            PrepareOptions::exact(),
        )),
        // Malformed: digit out of range for the register.
        Template::malformed(PrepareRequest::sparse(
            d2.clone(),
            vec![(vec![0, 9], Complex::ONE)],
            PrepareOptions::exact(),
        )),
        // Deterministically fails its (calibrated) verification floor.
        Template::below_threshold(&d3, random_state(&d3, RandomKind::ReImUniform, &mut rng)),
    ]
}

const SUBMITTERS: usize = 4;
const PER_SUBMITTER: usize = 18;
const QUEUE_DEPTH: usize = 4;

/// Floods a bounded service from `SUBMITTERS` threads (alternating the
/// blocking and the non-blocking submission paths), waits out every
/// accepted handle, and reconciles the outcome ledger with both the
/// templates' expectations and the service's own counters.
fn flood_and_reconcile(workers: usize, policy: SchedulingPolicy) -> mdq::engine::EngineStats {
    flood_and_reconcile_with(workers, policy, |config| config)
}

/// [`flood_and_reconcile`] with a caller-supplied final say on the
/// service configuration (e.g. enabling intra-job build threads), so
/// every hardening feature can be run under the same chaos workload and
/// ledger. Returns the final stats for feature-specific assertions.
fn flood_and_reconcile_with(
    workers: usize,
    policy: SchedulingPolicy,
    configure: impl FnOnce(EngineConfig) -> EngineConfig,
) -> mdq::engine::EngineStats {
    let templates = templates();
    let service = EngineService::new(configure(
        EngineConfig::default()
            .with_workers(workers)
            .with_queue_depth(QUEUE_DEPTH)
            .with_scheduling(policy),
    ));
    let rejected_total = AtomicU64::new(0);

    // Fan submissions out from SUBMITTERS threads; collect (template
    // index, handle) pairs for everything that was admitted.
    let accepted: Vec<(usize, JobHandle)> = thread::scope(|scope| {
        let submitter_handles: Vec<_> = (0..SUBMITTERS)
            .map(|submitter| {
                let templates = &templates;
                let service = &service;
                let rejected_total = &rejected_total;
                scope.spawn(move || {
                    let mut admitted = Vec::new();
                    for i in 0..PER_SUBMITTER {
                        let index = (submitter + i * SUBMITTERS) % templates.len();
                        let request = templates[index].request.clone();
                        if (submitter + i) % 2 == 0 {
                            // Non-blocking path: may be refused by
                            // admission control.
                            match service.try_submit(request) {
                                Ok(handle) => admitted.push((index, handle)),
                                Err(refused) => {
                                    assert!(
                                        matches!(
                                            refused.error,
                                            EngineError::QueueFull {
                                                limit: QUEUE_DEPTH,
                                                ..
                                            }
                                        ),
                                        "unexpected refusal: {:?}",
                                        refused.error
                                    );
                                    assert_eq!(
                                        refused.request, templates[index].request,
                                        "rejected request handed back intact"
                                    );
                                    rejected_total.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        } else {
                            // Blocking path: parks until space, never
                            // refused while the service is up.
                            admitted.push((index, service.submit(request)));
                        }
                    }
                    admitted
                })
            })
            .collect();
        submitter_handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread never panics"))
            .collect()
    });

    // Wait out every accepted handle and classify its outcome against the
    // template's expectation.
    let (mut completed, mut prepare_failed, mut verification_failed) = (0u64, 0u64, 0u64);
    for (index, handle) in accepted {
        let template = &templates[index];
        match handle.wait() {
            Ok(report) => {
                assert_eq!(
                    template.expected,
                    Expected::Success,
                    "template {index} must not succeed"
                );
                assert_eq!(
                    &report.circuit,
                    template.circuit.as_ref().unwrap(),
                    "template {index}: accepted result bit-identical to sequential \
                     ({workers} workers, {policy:?})"
                );
                if template.request.options.verification.is_enabled() {
                    assert!(
                        report.verification.is_some(),
                        "verified serving carries its report"
                    );
                }
                completed += 1;
            }
            Err(EngineError::Prepare(_)) => {
                assert_eq!(template.expected, Expected::Malformed);
                prepare_failed += 1;
            }
            Err(EngineError::VerificationFailed {
                fidelity,
                threshold,
            }) => {
                assert_eq!(template.expected, Expected::BelowThreshold);
                assert!(fidelity < threshold);
                let expected_fidelity = template.fidelity.unwrap();
                assert!(
                    (fidelity - expected_fidelity).abs() < 1e-12,
                    "measured fidelity {fidelity} deviates from the calibrated \
                     {expected_fidelity}"
                );
                verification_failed += 1;
            }
            Err(other) => panic!("unexpected outcome for template {index}: {other:?}"),
        }
    }

    // The ledger: every submission resolved exactly once.
    let rejected = rejected_total.load(Ordering::Relaxed);
    let submitted = (SUBMITTERS * PER_SUBMITTER) as u64;
    assert_eq!(
        completed + prepare_failed + verification_failed + rejected,
        submitted,
        "every submission accounted for exactly once ({workers} workers, {policy:?})"
    );

    // The service's own counters agree with the independent ledger.
    let stats = service.stats();
    assert_eq!(stats.jobs, completed, "jobs == completed");
    assert_eq!(stats.failures, prepare_failed, "failures == prepare errors");
    assert_eq!(
        stats.verification_failures, verification_failed,
        "verification_failures == below-threshold outcomes"
    );
    assert_eq!(stats.rejected, rejected, "rejected == admission refusals");
    assert!(
        stats.high_watermark <= QUEUE_DEPTH,
        "queue never exceeded its bound (saw {})",
        stats.high_watermark
    );
    if rejected > 0 {
        assert_eq!(
            stats.high_watermark, QUEUE_DEPTH,
            "a refusal implies the queue was full"
        );
    }
    assert!(
        stats.verified > 0,
        "verified good templates recurred, so passing verifications happened"
    );
    service.shutdown();
    stats
}

#[test]
fn stress_flood_reconciles_at_one_worker() {
    flood_and_reconcile(1, SchedulingPolicy::SizeAware);
    flood_and_reconcile(1, SchedulingPolicy::Fifo);
}

#[test]
fn stress_flood_reconciles_at_two_workers() {
    flood_and_reconcile(2, SchedulingPolicy::SizeAware);
    flood_and_reconcile(2, SchedulingPolicy::Fifo);
}

#[test]
fn stress_flood_reconciles_at_four_workers() {
    flood_and_reconcile(4, SchedulingPolicy::SizeAware);
    flood_and_reconcile(4, SchedulingPolicy::Fifo);
}

/// Satellite: the same chaos workload with **intra-job build threads**
/// enabled — large jobs borrow spare cores for their diagram build — must
/// keep every invariant of the harness: the ledger reconciles exactly and
/// every completed job stays bit-identical to the sequential pipeline
/// (verified entries included; the bit-identity and report assertions live
/// inside `flood_and_reconcile_with`). On hosts with a core to spare
/// beyond the single worker, the run must also observably exercise the
/// parallel path.
#[test]
fn stress_flood_reconciles_with_intra_job_threads() {
    // Threshold 30 puts the `[3,6,2]` dense templates (cost 36) above the
    // bar and the `[4,3]` ones (cost 12) below it, so both grant branches
    // run under chaos.
    let stats = flood_and_reconcile_with(1, SchedulingPolicy::SizeAware, |config| {
        config.with_intra_job_threads(30, 4)
    });
    let spare = thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_sub(1);
    if spare == 0 {
        assert_eq!(
            stats.parallel_builds, 0,
            "no spare cores: the grant must clamp every build to one thread"
        );
    } else {
        // With one worker the spare-core pool is never contended, so the
        // first fresh compute of an above-threshold template is enough.
        assert!(
            stats.parallel_builds >= 1,
            "spare cores available but no build went parallel"
        );
    }
    // Two workers contending for the same spare-core pool: grants may
    // race to zero extra cores, but the ledger and bit-identity must hold.
    flood_and_reconcile_with(2, SchedulingPolicy::SizeAware, |config| {
        config.with_intra_job_threads(30, 4)
    });
    flood_and_reconcile_with(2, SchedulingPolicy::Fifo, |config| {
        config.with_intra_job_threads(30, 2)
    });
}

/// A saturated one-slot queue must actually exercise the rejection path:
/// with the single worker pinned on an expensive job and the queue slot
/// taken, a burst of try_submits cannot all be admitted.
#[test]
fn saturated_queue_rejects_and_recovers() {
    let big = dims(&[9, 5, 6, 3]);
    let small = dims(&[2, 2]);
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .with_queue_depth(1)
            .without_cache(),
    );
    let mut rng = StdRng::seed_from_u64(7);
    let busy = service.submit(PrepareRequest::dense(
        big.clone(),
        random_state(&big, RandomKind::ReImUniform, &mut rng),
        PrepareOptions::exact(),
    ));
    let cheap = PrepareRequest::dense(small.clone(), ghz(&small), PrepareOptions::exact());
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..128 {
        match service.try_submit(cheap.clone()) {
            Ok(handle) => accepted.push(handle),
            Err(_) => rejected += 1,
        }
    }
    assert!(
        rejected > 0,
        "a one-slot queue under burst load must refuse"
    );
    // Recovery: after the flood the service still serves everything.
    busy.wait().expect("the big job completes");
    let expected = cheap.prepare_sequential().unwrap().circuit;
    for handle in accepted {
        assert_eq!(
            handle.wait().expect("admitted job resolves").circuit,
            expected
        );
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.high_watermark, 1);
    service.shutdown();
}

/// Satellite: `JobHandle::wait_timeout` with a zero duration never blocks
/// and never corrupts the handle — whatever it observes (pending or
/// already resolved, depending on how the race with the worker goes), the
/// real wait still yields the full result. The purely deterministic
/// pending/resolved/dead-channel semantics are unit-tested in
/// `crates/engine/src/service.rs` (`zero_duration_wait_timeout_is_a_pure_poll`).
#[test]
fn wait_timeout_zero_duration_is_a_nonblocking_poll() {
    let big = dims(&[9, 5, 6, 3]);
    let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
    let mut rng = StdRng::seed_from_u64(11);
    let mut handle = service.submit(PrepareRequest::dense(
        big.clone(),
        random_state(&big, RandomKind::ReImUniform, &mut rng),
        PrepareOptions::exact(),
    ));
    // Zero-duration polls return instantly, resolved or not...
    let early = handle.wait_timeout(Duration::ZERO).is_some();
    let _ = handle.try_wait();
    // ...and never consume the outcome: the real wait still resolves Ok.
    assert!(handle.wait().is_ok());
    // (With one worker and an ~800-amplitude job, the poll almost always
    // fires while the job is still running; either way is valid.)
    let _ = early;
    service.shutdown();
}

/// Satellite: a timeout racing completion either returns `None` (timed
/// out) or the final result — never a partial state — and the result is
/// retained across repeated calls.
#[test]
fn wait_timeout_racing_completion_converges() {
    let d = dims(&[3, 3]);
    let service = EngineService::new(EngineConfig::default().with_workers(1));
    let mut handle = service.submit(PrepareRequest::dense(
        d.clone(),
        ghz(&d),
        PrepareOptions::exact(),
    ));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(outcome) = handle.wait_timeout(Duration::from_micros(50)) {
            assert!(outcome.is_ok());
            break;
        }
        assert!(Instant::now() < deadline, "job must resolve");
    }
    // Retained: polls after resolution keep returning the same outcome.
    assert!(handle.wait_timeout(Duration::ZERO).is_some());
    assert!(handle.try_wait().is_some());
    assert!(handle.wait().is_ok());
    service.shutdown();
}

/// Satellite: waits racing `shutdown_now` must resolve — to the real
/// result for in-flight jobs, to `Shutdown` for still-queued ones — and
/// never hang, even with a zero-duration timeout on a dead channel.
#[test]
fn wait_after_shutdown_now_resolves_and_never_hangs() {
    let d = dims(&[3, 6, 2]);
    let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
    let handles: Vec<JobHandle> = (0..16)
        .map(|_| {
            service.submit(PrepareRequest::dense(
                d.clone(),
                w_state(&d),
                PrepareOptions::exact(),
            ))
        })
        .collect();
    service.shutdown_now();
    let mut shutdown = 0;
    for (i, mut handle) in handles.into_iter().enumerate() {
        if i % 2 == 0 {
            // Bounded wait on a resolved-or-dead channel: must return Some
            // well within the timeout, never hang.
            let outcome = handle
                .wait_timeout(Duration::from_secs(30))
                .expect("resolves within the timeout");
            if matches!(outcome, Err(EngineError::Shutdown)) {
                shutdown += 1;
            }
            // Even a zero-duration poll on the dead channel resolves.
            assert!(handle.wait_timeout(Duration::ZERO).is_some());
        } else {
            match handle.wait() {
                Ok(_) => {}
                Err(EngineError::Shutdown) => shutdown += 1,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
    }
    assert!(shutdown > 0, "a 16-deep queue cannot drain before abort");
}

/// Satellite regression: dropping handles mid-flight under load — for
/// queued, running, and already-finished jobs alike — must not deadlock
/// the pool, leak replies, or corrupt the counters; the service keeps
/// serving and shuts down cleanly.
#[test]
fn dropping_handles_mid_flight_never_deadlocks() {
    let d = dims(&[3, 6, 2]);
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(2)
            .with_queue_depth(QUEUE_DEPTH)
            .without_cache(),
    );
    let mut kept = Vec::new();
    let mut dropped = 0u64;
    let mut rejected = 0u64;
    for i in 0..32 {
        let request = PrepareRequest::dense(d.clone(), w_state(&d), PrepareOptions::exact());
        // Alternate blocking and non-blocking admission under load.
        let admitted = if i % 2 == 0 {
            Some(service.submit(request))
        } else {
            match service.try_submit(request) {
                Ok(handle) => Some(handle),
                Err(_) => {
                    rejected += 1;
                    None
                }
            }
        };
        match admitted {
            // Drop every other admitted handle immediately — the job (and
            // its reply channel) must outlive the handle without issue.
            Some(handle) if i % 4 < 2 => drop(handle),
            Some(handle) => kept.push(handle),
            None => {}
        }
        if i % 4 < 2 && i % 2 == 0 {
            dropped += 1;
        }
    }
    for handle in kept {
        handle.wait().expect("kept handles resolve normally");
    }
    assert!(dropped > 0);
    // Abandoned jobs still ran: the ledger counts admissions, not handles.
    // Waiting on the kept handles only guarantees *those* finished — poll
    // (bounded) for the abandoned remainder before reconciling.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = service.stats();
        if stats.jobs + stats.failures + stats.verification_failures + rejected == 32 {
            break;
        }
        assert!(Instant::now() < deadline, "abandoned jobs must still run");
        thread::yield_now();
    }
    assert_eq!(service.stats().rejected, rejected);
    // Shutdown after the chaos is clean (would hang or panic on a leak).
    service.shutdown();
}

/// Size of the small-job flood in the starvation scenarios. Large enough
/// that the aged and the un-aged pop counts are separated by an order of
/// magnitude, small enough that draining it (the aging-off case must
/// complete every small before the probe) stays fast.
const FLOOD: u64 = 600;

/// The pop-count ceiling asserted for the probe with aging on. The
/// expected value is ~(blockers + 1); the generous slack absorbs smalls
/// that workers complete between the probe's handle resolving and the
/// observer thread waking to sample the `jobs` counter (each small runs
/// ~300 µs, so even a multi-millisecond scheduling hiccup costs only tens
/// of counts). Still 4× below `FLOOD`, so the aged and un-aged regimes
/// cannot be confused.
const AGED_POP_BOUND: u64 = 150;

/// The deterministic starvation scenario of this PR's tentpole: all
/// workers are pinned by expensive High-priority blockers, one large
/// `probe_priority` probe job is queued, then a `FLOOD`-deep small-job
/// flood is queued behind it. Returns `stats.jobs` at the instant the
/// probe's handle resolved — the number of jobs (blockers, smalls, probe)
/// that completed up to and including the probe.
///
/// With aging **off**, the probe's frozen sort key (cost 810 against the
/// smalls' 216) means every queued small pops first: the count is ≥
/// `FLOOD` — the starvation the caveat used to document. With aging
/// **on**, the probe's effective cost decays to zero while the blockers
/// pin the workers (≥ milliseconds, against a 250 µs epoch), so it pops
/// with the oldest jobs and the count stays ≤ `AGED_POP_BOUND`.
///
/// Determinism: the blockers are `2 × workers` dense random jobs on the
/// Table-1 register `[4,7,4,4,3,5]` (milliseconds each) at `High`
/// priority, so the pool stays pinned — first by the running blockers,
/// then by the queued ones, which outrank every Normal job under both
/// aging settings — for the entire (sub-millisecond) submission of the
/// probe and the flood. The probe is a *basis state* on `[9,5,6,3]`:
/// estimated cost 810 (it is the dense payload length that is scheduled),
/// but near-zero pipeline time, so the sampled counter is not inflated by
/// smalls completing while the probe itself runs. The smalls are dense
/// random jobs on `[6,6,6]` — cost 216, a few hundred µs each — rather
/// than microsecond toys: the `jobs` counter is sampled *after* the
/// probe's handle resolves, and the smalls must be slow enough that the
/// handful a worker completes before the observer thread wakes cannot
/// approach the bound.
fn starvation_probe_pops(workers: usize, aging: Aging, probe_priority: Priority) -> u64 {
    let blocker_dims = dims(&[4, 7, 4, 4, 3, 5]);
    let probe_dims = dims(&[9, 5, 6, 3]);
    let small_dims = dims(&[6, 6, 6]);
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(workers)
            .with_scheduling(SchedulingPolicy::SizeAware)
            .with_aging(aging)
            .without_cache(),
    );
    let mut rng = StdRng::seed_from_u64(0xA61);
    let blockers: Vec<JobHandle> = (0..2 * workers)
        .map(|_| {
            service.submit(
                PrepareRequest::dense(
                    blocker_dims.clone(),
                    random_state(&blocker_dims, RandomKind::ReImUniform, &mut rng),
                    PrepareOptions::exact(),
                )
                .with_priority(Priority::High),
            )
        })
        .collect();
    // A one-hot amplitude vector: scheduled at dense cost 810, served in
    // near-zero time.
    let mut basis = vec![Complex::ZERO; probe_dims.space_size()];
    basis[0] = Complex::ONE;
    let probe = service.submit(
        PrepareRequest::dense(probe_dims.clone(), basis, PrepareOptions::exact())
            .with_priority(probe_priority),
    );
    let small = PrepareRequest::dense(
        small_dims.clone(),
        random_state(&small_dims, RandomKind::ReImUniform, &mut rng),
        PrepareOptions::exact(),
    );
    // The flood handles are deliberately dropped: the scenario only cares
    // how many of these jobs pop before the probe, which the service's own
    // `jobs` counter reports.
    for _ in 0..FLOOD {
        drop(service.submit(small.clone()));
    }
    probe.wait().expect("the probe job completes");
    let jobs_at_probe = service.stats().jobs;
    for blocker in blockers {
        blocker.wait().expect("blocker jobs complete");
    }
    // Abort the un-popped remainder of the flood instead of draining it.
    service.shutdown_now();
    jobs_at_probe
}

/// Tentpole: with aging off a queued large job starves behind the
/// pre-queued small-job flood (every small pops first — the documented
/// pre-PR behaviour, kept as the measurable baseline), while wait-time
/// aging bounds the same probe's pops at 1, 2, and 4 workers.
#[test]
fn aging_bounds_the_starved_probe_at_every_worker_count() {
    for workers in [1usize, 2, 4] {
        let starved = starvation_probe_pops(workers, Aging::Off, Priority::Normal);
        assert!(
            starved >= FLOOD,
            "aging off at {workers} workers: the probe must starve behind \
             the whole flood (popped after only {starved} jobs)"
        );
        let aged = starvation_probe_pops(
            workers,
            Aging::HalveEvery(Duration::from_micros(250)),
            Priority::Normal,
        );
        assert!(
            aged <= AGED_POP_BOUND,
            "aging on at {workers} workers: the probe must pop within \
             {AGED_POP_BOUND} jobs, took {aged}"
        );
    }
}

/// Tentpole: aging also promotes across priority classes — a `Low` probe
/// under a `Normal` flood starves with aging off, but the promotion term
/// (one class per `Aging::PRIORITY_PROMOTION_EPOCHS` epochs of wait)
/// bounds it with aging on, exactly like the same-class case.
#[test]
fn aging_promotes_a_low_priority_probe_past_a_normal_flood() {
    let starved = starvation_probe_pops(1, Aging::Off, Priority::Low);
    assert!(
        starved >= FLOOD,
        "a Low probe under a Normal flood must starve without aging \
         (popped after only {starved} jobs)"
    );
    let aged = starvation_probe_pops(
        1,
        Aging::HalveEvery(Duration::from_micros(100)),
        Priority::Low,
    );
    assert!(
        aged <= AGED_POP_BOUND,
        "promotion must lift the Low probe past the Normal flood within \
         {AGED_POP_BOUND} jobs, took {aged}"
    );
}

/// Tentpole: FIFO-fair bounded admission end-to-end. With the single
/// worker pinned and the one queue slot taken, three blocking submitters
/// park one at a time (each observed via `EngineStats::parked` before the
/// next arrives, so their ticket order is pinned); a concurrent burst of
/// `try_submit`s is refused rather than allowed to steal the slots the
/// parked submitters are owed; and as the worker frees slots the parked
/// submitters admit strictly in ticket (arrival) order, each reporting its
/// park time as `PrepareReport::admission_wait`.
#[test]
fn parked_submitters_admit_in_ticket_order_with_observable_waits() {
    let blocker_dims = dims(&[4, 7, 4, 4, 3, 5]);
    let small_dims = dims(&[2, 2]);
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .with_queue_depth(1)
            .with_scheduling(SchedulingPolicy::Fifo)
            .without_cache(),
    );
    let mut rng = StdRng::seed_from_u64(0xF41);
    // Pin the worker on an expensive job, then take the single queue slot.
    let blocker = service.submit(PrepareRequest::dense(
        blocker_dims.clone(),
        random_state(&blocker_dims, RandomKind::ReImUniform, &mut rng),
        PrepareOptions::exact(),
    ));
    let filler = service.submit(PrepareRequest::dense(
        small_dims.clone(),
        ghz(&small_dims),
        PrepareOptions::exact(),
    ));
    let small = PrepareRequest::dense(
        small_dims.clone(),
        ghz(&small_dims),
        PrepareOptions::exact(),
    );

    let admission_order = std::sync::Mutex::new(Vec::new());
    let refused = AtomicU64::new(0);
    let parked_seen = AtomicU64::new(0);
    let submitter_reports: Vec<JobHandle> = thread::scope(|scope| {
        let mut submitters = Vec::new();
        for id in 0..3usize {
            let service = &service;
            let small = &small;
            let admission_order = &admission_order;
            submitters.push(scope.spawn(move || {
                let handle = service.submit(small.clone());
                // `submit` returns only once the job is enqueued, and the
                // ticket queue admits in arrival order — so the order of
                // these records is the admission order.
                admission_order.lock().unwrap().push(id);
                handle
            }));
            // Park the submitters strictly one at a time: their tickets
            // (and so their arrival order) are pinned, not racy.
            let deadline = Instant::now() + Duration::from_secs(30);
            while service.stats().parked < id + 1 {
                assert!(Instant::now() < deadline, "submitter {id} must park");
                thread::yield_now();
            }
        }
        parked_seen.store(service.stats().parked as u64, Ordering::Relaxed);
        // With three ticket holders parked, non-blocking admission must be
        // refused throughout — whether the queue is momentarily full or a
        // freed slot is owed to a ticket, a probe can never steal it.
        for _ in 0..64 {
            match service.try_submit(small.clone()) {
                Ok(_) => panic!("try_submit must not steal a slot owed to a parked submitter"),
                Err(refusal) => {
                    assert!(
                        matches!(refusal.error, EngineError::QueueFull { limit: 1, .. }),
                        "unexpected refusal: {:?}",
                        refusal.error
                    );
                    refused.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        submitters
            .into_iter()
            .map(|s| s.join().expect("submitter thread never panics"))
            .collect()
    });

    assert_eq!(parked_seen.load(Ordering::Relaxed), 3, "all three parked");
    assert_eq!(
        *admission_order.lock().unwrap(),
        vec![0, 1, 2],
        "parked submitters admit strictly in ticket (arrival) order"
    );
    blocker.wait().expect("blocker completes");
    filler.wait().expect("filler completes");
    for handle in submitter_reports {
        let report = handle.wait().expect("parked submission completes");
        assert!(
            !report.admission_wait.is_zero(),
            "a parked submitter's wait is reported as admission_wait"
        );
        assert!(
            report.queue_wait >= report.admission_wait,
            "queue_wait is measured from submission and so includes the park"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, refused.load(Ordering::Relaxed));
    assert_eq!(stats.parked, 0, "no submitter left parked");
    assert_eq!(stats.jobs, 5, "blocker + filler + three parked submissions");
    service.shutdown();
}

/// Satellite regression: a malformed payload — here an empty-support
/// sparse request, whose estimated cost used to be 0 (sorting ahead of
/// every real job) — is rejected **at admission** with the same error the
/// pipeline would produce: the handle resolves immediately, nothing is
/// queued, and no worker ran it.
#[test]
fn empty_support_sparse_requests_fail_at_admission() {
    let d = dims(&[3, 3]);
    let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
    let empty = PrepareRequest::sparse(d.clone(), vec![], PrepareOptions::exact());
    let want = empty
        .prepare_sequential()
        .expect_err("empty support must fail the sequential pipeline too");
    match service.submit(empty.clone()).wait() {
        Err(EngineError::Prepare(got)) => {
            assert_eq!(
                got.to_string(),
                want.to_string(),
                "admission rejects with the pipeline's own error"
            );
        }
        other => panic!("expected an admission-time Prepare error, got {other:?}"),
    }
    // try_submit validates too, and validation precedes admission control:
    // the outcome of a malformed request never depends on queue state.
    let handle = service
        .try_submit(empty)
        .expect("malformed requests are not admission refusals");
    assert!(matches!(handle.wait(), Err(EngineError::Prepare(_))));
    let stats = service.stats();
    assert_eq!(stats.failures, 2, "both rejections count as failures");
    assert_eq!(stats.jobs, 0);
    assert_eq!(stats.rejected, 0, "failed validation is not shed load");
    assert_eq!(
        stats.high_watermark, 0,
        "a malformed request never occupies a queue slot"
    );
    service.shutdown();
}

/// End-to-end warm-start lifecycle over the chaos workload: a first
/// service runs the mixed templates and snapshots its cache on graceful
/// shutdown; a second service warm-starts from that file and is then
/// flooded from several threads — every cacheable template must be served
/// **from the loaded snapshot**, bit-identical to the sequential
/// pipeline, with verified entries still verified and the
/// below-threshold template still failing fast at its calibrated
/// fidelity, all without a single cache miss. A truncated copy of the
/// snapshot is rejected with a typed error and that service starts cold.
#[test]
fn warm_start_snapshot_replays_the_chaos_workload() {
    let templates = templates();
    let path = std::env::temp_dir().join(format!(
        "mdq_stress_warmstart_{}.mdqsnap",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);

    // Phase 1: a cold service runs every template once; `with_warm_start`
    // writes the snapshot when the graceful shutdown finishes draining.
    let first = EngineService::new(
        EngineConfig::default()
            .with_workers(2)
            .with_warm_start(&path),
    );
    assert!(
        first.warm_start_load().is_none(),
        "a missing snapshot file is a silent cold start"
    );
    let handles: Vec<_> = templates
        .iter()
        .map(|t| first.submit(t.request.clone()))
        .collect();
    for handle in handles {
        let _ = handle.wait();
    }
    let cacheable = templates
        .iter()
        .filter(|t| t.expected != Expected::Malformed)
        .count();
    assert_eq!(
        first.cache().stats().entries,
        cacheable,
        "every non-malformed template leaves exactly one cache entry"
    );
    first.shutdown();
    assert!(path.exists(), "graceful shutdown wrote the snapshot");

    // Phase 2: a fresh service warm-starts from the snapshot and is
    // flooded; nothing should ever reach the pipeline again.
    let second = EngineService::new(
        EngineConfig::default()
            .with_workers(2)
            .with_warm_start(&path),
    );
    match second.warm_start_load() {
        Some(Ok(load)) => {
            assert_eq!(load.loaded, cacheable, "every record round-trips");
            assert_eq!(load.skipped, 0, "nothing in a fresh snapshot is stale");
        }
        other => panic!("expected a successful warm start, got {other:?}"),
    }
    const ROUNDS: usize = 3;
    let handles: Vec<(usize, JobHandle)> = thread::scope(|scope| {
        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|_| {
                let templates = &templates;
                let second = &second;
                scope.spawn(move || {
                    let mut admitted = Vec::new();
                    for _ in 0..ROUNDS {
                        for (index, template) in templates.iter().enumerate() {
                            admitted.push((index, second.submit(template.request.clone())));
                        }
                    }
                    admitted
                })
            })
            .collect();
        submitters
            .into_iter()
            .flat_map(|s| s.join().expect("submitter thread never panics"))
            .collect()
    });
    for (index, handle) in handles {
        let template = &templates[index];
        match (template.expected, handle.wait()) {
            (Expected::Success, Ok(report)) => {
                assert!(
                    report.from_cache,
                    "template {index} must be served from the snapshot"
                );
                assert_eq!(
                    &report.circuit,
                    template.circuit.as_ref().unwrap(),
                    "template {index}: snapshot-served circuit bit-identical to sequential"
                );
                if template.request.options.verification.is_enabled() {
                    assert!(
                        report.verification.is_some(),
                        "a verified entry stays verified across the snapshot"
                    );
                }
            }
            (Expected::Malformed, Err(EngineError::Prepare(_))) => {}
            (
                Expected::BelowThreshold,
                Err(EngineError::VerificationFailed {
                    fidelity,
                    threshold,
                }),
            ) => {
                assert!(fidelity < threshold);
                assert_eq!(
                    fidelity.to_bits(),
                    template.fidelity.unwrap().to_bits(),
                    "snapshot preserved the replay fidelity bit-exactly"
                );
            }
            (expected, outcome) => {
                panic!("template {index} ({expected:?}) resolved to {outcome:?}")
            }
        }
    }
    let cache = second.cache().stats();
    assert_eq!(cache.misses, 0, "the warm cache never missed");
    assert_eq!(
        cache.hits,
        (cacheable * SUBMITTERS * ROUNDS) as u64,
        "every cacheable submission was one cache hit (malformed ones fail at admission)"
    );

    // Phase 3: a truncated copy is rejected with a typed error, and the
    // service that tried to load it starts cold but still serves.
    let text = fs::read_to_string(&path).expect("snapshot is readable");
    let truncated_path = path.with_extension("truncated");
    let cut = text
        .trim_end()
        .strip_suffix("done")
        .expect("a well-formed snapshot ends in its done footer");
    fs::write(&truncated_path, cut).expect("truncated copy written");
    let cold = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .with_warm_start(&truncated_path),
    );
    assert!(
        matches!(cold.warm_start_load(), Some(Err(SnapshotError::Truncated))),
        "a snapshot missing its footer is rejected as truncated, got {:?}",
        cold.warm_start_load()
    );
    assert_eq!(
        cold.cache().stats().entries,
        0,
        "nothing is loaded from a rejected file"
    );
    let report = cold
        .submit(templates[0].request.clone())
        .wait()
        .expect("a cold-started service still serves");
    assert!(
        !report.from_cache,
        "first serve after a rejected load is fresh"
    );
    assert_eq!(&report.circuit, templates[0].circuit.as_ref().unwrap());
    cold.shutdown_now();
    second.shutdown();
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&truncated_path);
}

/// TTL expiry racing per-shard LRU eviction under multithreaded load: a
/// tiny cache (capacity 4, two shards) with a 15 ms TTL is flooded with
/// eight distinct recurring requests from four threads — one of which
/// sleeps past the TTL between rounds, so whole generations of entries
/// expire while the others keep the LRU churning. The chaos is in which
/// serves hit, expire, or evict; the invariants hold for every
/// interleaving: results stay bit-identical to the sequential pipeline,
/// each serve is exactly one hit or one miss, live+removed entries never
/// exceed insertions, and an explicit future-dated `expire` drains
/// whatever survived.
#[test]
fn ttl_expiry_races_lru_eviction_under_flood() {
    const DISTINCT: usize = 8;
    const ROUNDS: usize = 6;
    const CAPACITY: usize = 4;
    let ttl = Duration::from_millis(15);
    let d = dims(&[2, 3, 2]);
    let mut rng = StdRng::seed_from_u64(0xA6E0);
    let workload: Vec<(PrepareRequest, Circuit)> = (0..DISTINCT)
        .map(|_| {
            let request = PrepareRequest::dense(
                d.clone(),
                random_state(&d, RandomKind::ReImUniform, &mut rng),
                PrepareOptions::exact(),
            );
            let circuit = request
                .prepare_sequential()
                .expect("reference pipeline runs")
                .circuit;
            (request, circuit)
        })
        .collect();
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(2)
            .with_cache_shards(2)
            .with_cache_capacity(CAPACITY)
            .with_cache_ttl(ttl),
    );
    thread::scope(|scope| {
        for submitter in 0..SUBMITTERS {
            let workload = &workload;
            let service = &service;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    if submitter == 0 && round > 0 {
                        // Outlive the TTL so entries expire mid-flood
                        // while the other submitters keep hitting.
                        thread::sleep(ttl + Duration::from_millis(5));
                    }
                    let handles: Vec<_> = (0..DISTINCT)
                        .map(|i| (i, service.submit(workload[i].0.clone())))
                        .collect();
                    for (i, handle) in handles {
                        let report = handle.wait().expect("distinct good jobs succeed");
                        assert_eq!(
                            report.circuit, workload[i].1,
                            "request {i} bit-identical no matter what expired or evicted"
                        );
                    }
                }
            });
        }
    });

    let total = (SUBMITTERS * ROUNDS * DISTINCT) as u64;
    let stats = service.stats();
    assert_eq!(stats.jobs, total, "every flooded job completed");
    let cache = service.cache().stats();
    assert_eq!(
        cache.hits + cache.misses,
        total,
        "each serve probes the cache exactly once"
    );
    assert!(
        cache.misses >= DISTINCT as u64,
        "every distinct request misses at least its first serve"
    );
    assert!(
        cache.entries <= CAPACITY,
        "the LRU bound holds under TTL churn (saw {})",
        cache.entries
    );
    // Every miss attempts one insert; duplicates are dropped, so live
    // entries plus removals never exceed the miss count…
    assert!(
        cache.entries as u64 + cache.evictions + cache.expirations <= cache.misses,
        "live ({}) + evicted ({}) + expired ({}) entries exceed insert attempts ({})",
        cache.entries,
        cache.evictions,
        cache.expirations,
        cache.misses
    );
    // …and with 8 distinct keys squeezed into 4 slots, removals must
    // actually have happened — by eviction, expiry, or both.
    assert!(
        cache.evictions + cache.expirations >= (DISTINCT - CAPACITY) as u64,
        "8 keys in 4 slots force at least 4 removals (evicted {}, expired {})",
        cache.evictions,
        cache.expirations
    );

    // An explicit expire dated one TTL into the future out-ages every
    // surviving entry, and the counters account for the purge.
    let before = service.cache().stats();
    let swept = service.cache().expire(Instant::now() + ttl);
    let after = service.cache().stats();
    assert_eq!(
        swept, before.entries as u64,
        "a future-dated expire drains every live entry"
    );
    assert_eq!(after.entries, 0);
    assert_eq!(after.expirations, before.expirations + swept);

    // The service recovers: the next serve is a clean miss that
    // repopulates the cache.
    let report = service
        .submit(workload[0].0.clone())
        .wait()
        .expect("still serving after the purge");
    assert!(!report.from_cache, "the purge left nothing to serve from");
    assert_eq!(report.circuit, workload[0].1);
    assert_eq!(service.cache().stats().entries, 1);
    service.shutdown();
}

/// Satellite: the full chaos workload through the sharded router. Four
/// single-worker shards behind a [`Router`]; one tenant is quota-bounded
/// and flooded **without waiting**, so its refusal count is deterministic
/// (in-flight only decrements when a handle resolves); then `SUBMITTERS`
/// unlimited tenants flood the mixed templates from threads while a
/// control thread resizes the ring mid-flood (shard 4 joins, shard 1
/// leaves and drains gracefully). Invariants, for every interleaving:
///
/// * every routed success is bit-identical to the sequential pipeline,
///   malformed and below-threshold templates fail with exactly the same
///   typed errors as direct submission,
/// * the mid-flood resize loses no accepted job (the leaver drains; every
///   handle resolves to its template's expected outcome),
/// * the bounded tenant is refused with `TenantOverQuota` — the request
///   handed back by value and accepted on resubmission after draining —
///   while the flooding tenants see zero rejections,
/// * every per-tenant ledger reconciles exactly:
///   `completed + failed + rejected + dropped == submitted`.
#[test]
fn router_flood_reconciles_with_quotas_and_midflood_resize() {
    use mdq::router::{Router, RouterConfig, RouterError, TenantId, TenantQuota};
    use std::sync::Barrier;

    let templates = templates();
    let router = Router::new(
        RouterConfig::default().with_engine_config(EngineConfig::default().with_workers(1)),
    );
    for id in 0..4 {
        assert!(router.add_shard(id));
    }

    // Phase 1: deterministic quota refusal. The bounded tenant submits 8
    // copies of a good template up-front; with an in-flight limit of 3 and
    // nothing waited on, exactly 5 must come back as TenantOverQuota.
    const LIMIT: usize = 3;
    const BURST: usize = 8;
    let bounded = TenantId(100);
    router.set_quota(bounded, TenantQuota::unlimited().with_max_in_flight(LIMIT));
    let good = &templates[0];
    let mut held = Vec::new();
    let mut handed_back = Vec::new();
    for _ in 0..BURST {
        match router.submit(bounded, good.request.clone()) {
            Ok(handle) => held.push(handle),
            Err(RouterError::TenantOverQuota {
                tenant,
                request,
                in_flight,
                limit,
            }) => {
                assert_eq!(tenant, bounded);
                assert_eq!((in_flight, limit), (LIMIT, LIMIT));
                assert_eq!(request, good.request, "refused request handed back intact");
                handed_back.push(request);
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert_eq!(held.len(), LIMIT, "exactly the quota is admitted");
    assert_eq!(handed_back.len(), BURST - LIMIT);
    // While the bounded tenant is saturated, an unrelated tenant is
    // entirely unaffected by its quota.
    let bystander = TenantId(101);
    let report = router
        .submit(bystander, good.request.clone())
        .expect("other tenants are unaffected by a full quota")
        .wait()
        .expect("bystander job completes");
    assert_eq!(&report.circuit, good.circuit.as_ref().unwrap());
    // Draining frees the slots; the handed-back requests are accepted on
    // resubmission, bit-identical as ever.
    for handle in held {
        let report = handle.wait().expect("admitted burst jobs complete");
        assert_eq!(&report.circuit, good.circuit.as_ref().unwrap());
    }
    for request in handed_back {
        let report = router
            .submit(bounded, request)
            .expect("freed slots admit the resubmission")
            .wait()
            .expect("resubmitted job completes");
        assert_eq!(&report.circuit, good.circuit.as_ref().unwrap());
    }

    // Phase 2: multithreaded tenant flood with a mid-flood ring resize.
    // Each submitter is its own unlimited tenant; the control thread
    // waits until every submitter has pushed half its load, then resizes
    // the ring while the second half is still being submitted.
    let barrier = Barrier::new(SUBMITTERS + 1);
    let accepted: Vec<(usize, TenantId, mdq::router::RouterHandle)> = thread::scope(|scope| {
        let control = scope.spawn({
            let router = &router;
            let barrier = &barrier;
            move || {
                barrier.wait();
                // Joining moves ~1/5 of the keys to shard 4; leaving
                // drains shard 1 gracefully — no accepted job is lost.
                assert!(router.add_shard(4));
                assert!(router.remove_shard(1));
            }
        });
        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|submitter| {
                let templates = &templates;
                let router = &router;
                let barrier = &barrier;
                scope.spawn(move || {
                    let tenant = TenantId(submitter as u64);
                    let mut admitted = Vec::new();
                    for i in 0..PER_SUBMITTER {
                        if i == PER_SUBMITTER / 2 {
                            barrier.wait();
                        }
                        let index = (submitter + i * SUBMITTERS) % templates.len();
                        let request = templates[index].request.clone();
                        let handle = router
                            .submit(tenant, request)
                            .expect("unbounded shard queues admit everything");
                        admitted.push((index, tenant, handle));
                    }
                    admitted
                })
            })
            .collect();
        control.join().expect("control thread never panics");
        submitters
            .into_iter()
            .flat_map(|s| s.join().expect("submitter thread never panics"))
            .collect()
    });
    assert_eq!(
        router.shards(),
        vec![0, 2, 3, 4],
        "the resize left shard 4 in and shard 1 out"
    );

    // Every accepted job resolves to its template's expected outcome —
    // including the ones routed to shard 1 before it left the ring.
    let (mut completed, mut failed) = (0u64, 0u64);
    for (index, tenant, handle) in accepted {
        let template = &templates[index];
        match handle.wait() {
            Ok(report) => {
                assert_eq!(template.expected, Expected::Success);
                assert_eq!(
                    &report.circuit,
                    template.circuit.as_ref().unwrap(),
                    "template {index} via {tenant}: routed result bit-identical \
                     to sequential"
                );
                completed += 1;
            }
            Err(EngineError::Prepare(_)) => {
                assert_eq!(template.expected, Expected::Malformed);
                failed += 1;
            }
            Err(EngineError::VerificationFailed {
                fidelity,
                threshold,
            }) => {
                assert_eq!(template.expected, Expected::BelowThreshold);
                assert!(fidelity < threshold);
                assert!(
                    (fidelity - template.fidelity.unwrap()).abs() < 1e-12,
                    "routed verification fidelity matches the calibrated value"
                );
                failed += 1;
            }
            Err(other) => panic!("unexpected outcome for template {index}: {other:?}"),
        }
    }
    assert_eq!(
        completed + failed,
        (SUBMITTERS * PER_SUBMITTER) as u64,
        "the mid-flood resize lost no accepted job"
    );

    // The router's own ledgers agree with the harness, tenant by tenant.
    let stats = router.stats();
    for t in &stats.tenants {
        assert_eq!(
            t.completed + t.failed + t.rejected + t.dropped,
            t.submitted,
            "{} ledger reconciles",
            t.tenant
        );
        assert_eq!(t.in_flight, 0, "{} has nothing left in flight", t.tenant);
        if t.tenant == bounded {
            assert_eq!(t.rejected, (BURST - LIMIT) as u64);
            assert_eq!(t.submitted, (BURST + BURST - LIMIT) as u64);
        } else {
            assert_eq!(t.rejected, 0, "{} was never refused", t.tenant);
            assert_eq!(t.dropped, 0);
        }
    }
    assert_eq!(
        stats.completed + stats.failed,
        stats.submitted - stats.rejected,
        "global ledger reconciles (nothing dropped)"
    );
    assert_eq!(stats.shards.len(), 4);
    router.shutdown();
}

/// The transport chaos scenario: four client threads flood a two-shard
/// `WireServer` over a unix socket, every connection wrapped in a
/// deterministically seeded `FaultyStream` (dribbled writes, mid-frame
/// cuts, byte corruption, slow-loris stalls past the server's read
/// deadline). Mid-flood, one shard is killed and warm-restarted from its
/// snapshot; later the *whole server* is killed and rebound on the same
/// path while clients ride their retry budgets through the gap.
///
/// The oracle is the client-side ledger: every submission resolves
/// exactly once (a bit-identical report, or the typed refusal its
/// template predicts), the router's per-tenant ledgers reconcile with
/// nothing dropped, and the restarted shard observably loaded its warm
/// snapshot.
#[test]
#[cfg(unix)]
fn transport_chaos_flood_survives_faults_and_warm_restarts() {
    use mdq::engine::{canonical_key, ErrorFrame, RequestFrame};
    use mdq::router::{Router, RouterConfig, TenantId, TenantQuota};
    use mdq::transport::{
        Backend, ClientConfig, FaultPlan, ServerAddr, ServerConfig, ServerReply, WireClient,
        WireServer,
    };
    use std::sync::{Barrier, Mutex};

    const WIRE_SUBMITTERS: usize = 4;
    const WIRE_PER_SUBMITTER: usize = 12;
    /// Per-client ledger: (completed, refused, retries, connections).
    type WireLedger = (u64, u64, u64, u64);
    /// Per-call retry budget. Every third connection in the fault plan is
    /// clean, so a budget this deep always reaches a genuine outcome even
    /// when some clean attempts are burned by the server-restart gap.
    const RETRY_BUDGET: u32 = 12;

    let templates = templates();
    let scratch = std::env::temp_dir().join(format!("mdq_transport_chaos_{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    let snapshot_dir = scratch.join("snapshots");
    fs::create_dir_all(&snapshot_dir).expect("snapshot dir");
    let socket = scratch.join("serve.sock");
    let addr = ServerAddr::unix(&socket);

    let router = Router::new(
        RouterConfig::default()
            .with_engine_config(EngineConfig::default().with_workers(1))
            .with_snapshot_dir(&snapshot_dir),
    );
    assert!(router.add_shard(0));
    assert!(router.add_shard(1));

    // The read deadline doubles as the slow-loris guard; the fault plan's
    // stall is deliberately longer, so stalled connections get *closed*,
    // not waited on.
    let server_config = ServerConfig::new()
        .with_handler_threads(WIRE_SUBMITTERS)
        .with_read_timeout(Duration::from_millis(150))
        .with_write_timeout(Duration::from_secs(5));
    let server = WireServer::bind(
        &addr,
        Backend::Router(Box::new(router)),
        server_config.clone(),
    )
    .expect("bind unix server");

    // Phase 1: quota refusal stays a typed, hand-back-by-value outcome
    // over the wire. A zero-quota tenant's request comes back as a
    // `tenant-over-quota` error frame; the client still holds the request,
    // and once the quota lifts the *same* frame completes.
    let blocked = TenantId(9);
    let live_router = server.backend().router().expect("router backend");
    live_router.set_quota(blocked, TenantQuota::unlimited().with_max_in_flight(0));
    let mut probe = WireClient::connect(addr.clone(), ClientConfig::new()).expect("probe connects");
    let good = &templates[0];
    let held_frame = RequestFrame {
        tenant: Some(blocked.0),
        request: good.request.clone(),
    };
    match probe.call(&held_frame).expect("clean transport") {
        ServerReply::Refused(ErrorFrame::TenantOverQuota {
            tenant,
            in_flight,
            limit,
        }) => {
            assert_eq!(tenant, blocked.0);
            assert_eq!((in_flight, limit), (0, 0));
        }
        other => panic!("expected a quota refusal frame, got {other:?}"),
    }
    live_router.set_quota(blocked, TenantQuota::unlimited());
    let report = probe
        .call(&held_frame)
        .expect("clean transport")
        .report()
        .expect("resubmitted frame completes once the quota lifts");
    assert_eq!(
        &report.report.circuit,
        good.circuit.as_ref().expect("success template"),
        "probe circuit bit-identical to prepare_sequential"
    );
    // The shard to kill mid-flood: whichever one serves `templates[0]`.
    // The probe just completed that very request, so the victim's cache
    // holds at least that circuit — its exit snapshot cannot be empty,
    // which is what makes the warm-restart observable below.
    let (good_fp, _) = canonical_key(&good.request).expect("success template fingerprints");
    let victim = live_router
        .route_fingerprint(good_fp)
        .expect("non-empty ring routes the probe's request");
    drop(probe);

    // Phase 2: the chaos flood. The server instance lives in a slot so the
    // control thread can kill and rebind it mid-flood; clients only ever
    // address the (stable) socket path.
    let server_slot = Mutex::new(Some(server));
    let shard_restart = Barrier::new(WIRE_SUBMITTERS + 1);
    let server_restart = Barrier::new(WIRE_SUBMITTERS + 1);

    let (ledgers, shard_restart_outcome): (Vec<WireLedger>, Result<usize, String>) =
        thread::scope(|scope| {
            // The control thread must not panic between barriers — a panic
            // there would strand the submitters on a barrier that can
            // never fill. It reports through a Result instead, asserted
            // once every thread is joined.
            let control = scope.spawn(|| -> Result<usize, String> {
                // Mid-flood event one: the victim shard leaves the ring
                // (draining its jobs and writing its cache snapshot on
                // the way out) and rejoins warm from that snapshot, while
                // submissions keep flowing through the surviving shard.
                shard_restart.wait();
                let outcome = {
                    let slot = server_slot.lock().expect("server slot healthy");
                    let router = slot
                        .as_ref()
                        .expect("server running")
                        .backend()
                        .router()
                        .expect("router backend");
                    if !router.remove_shard(victim) {
                        Err(format!("shard {victim} was not on the ring"))
                    } else if !router.add_shard(victim) {
                        Err(format!("shard {victim} failed to rejoin"))
                    } else {
                        let stats = router.stats();
                        stats
                            .shards
                            .iter()
                            .find(|s| s.shard == victim)
                            .ok_or_else(|| format!("no stats for rejoined shard {victim}"))
                            .and_then(|s| {
                                s.warm_loaded.ok_or_else(|| {
                                    format!("rejoined shard {victim} found no snapshot to load")
                                })
                            })
                    }
                };
                // Mid-flood event two: the whole server is killed
                // (draining in-flight connections — every admitted job
                // still gets its reply) and rebound on the same path with
                // the same backend. Clients see the gap as connection
                // errors and retry through.
                server_restart.wait();
                let running = server_slot.lock().expect("server slot healthy").take();
                let running = running.expect("server running");
                let backend = running.into_backend();
                let reborn =
                    WireServer::bind(&addr, backend, server_config.clone()).expect("rebind server");
                *server_slot.lock().expect("server slot healthy") = Some(reborn);
                outcome
            });

            let submitters: Vec<_> = (0..WIRE_SUBMITTERS)
                .map(|submitter| {
                    let templates = &templates;
                    let addr = addr.clone();
                    let shard_restart = &shard_restart;
                    let server_restart = &server_restart;
                    scope.spawn(move || {
                        let plan = FaultPlan::new(0xC4A0_5EED ^ ((submitter as u64) << 32))
                            .with_stall(Duration::from_millis(400))
                            .with_clean_period(3);
                        let config = ClientConfig::new()
                            .with_connect_attempts(10)
                            .with_backoff(Duration::from_millis(5), Duration::from_millis(160))
                            .with_faults(move |connection| plan.faults_for(connection));
                        let mut client =
                            WireClient::connect(addr, config).expect("flood client connects");
                        let tenant = submitter as u64;
                        let (mut completed, mut refused) = (0u64, 0u64);
                        for i in 0..WIRE_PER_SUBMITTER {
                            if i == WIRE_PER_SUBMITTER / 2 {
                                shard_restart.wait();
                            }
                            if i == WIRE_PER_SUBMITTER * 3 / 4 {
                                server_restart.wait();
                            }
                            let index = (submitter + i * WIRE_SUBMITTERS) % templates.len();
                            let template = &templates[index];
                            let frame = RequestFrame {
                                tenant: Some(tenant),
                                request: template.request.clone(),
                            };
                            let reply = client
                                .call_with_retry(&frame, RETRY_BUDGET)
                                .expect("every submission resolves within the retry budget");
                            match reply {
                                ServerReply::Report(report) => {
                                    assert_eq!(
                                        template.expected,
                                        Expected::Success,
                                        "only success templates complete (template {index})"
                                    );
                                    assert_eq!(
                                        &report.report.circuit,
                                        template.circuit.as_ref().expect("reference circuit"),
                                        "served circuit bit-identical to prepare_sequential \
                                     (template {index})"
                                    );
                                    completed += 1;
                                }
                                ServerReply::Refused(ErrorFrame::Prepare { .. }) => {
                                    assert_eq!(
                                    template.expected,
                                    Expected::Malformed,
                                    "only malformed templates fail the pipeline (template {index})"
                                );
                                    refused += 1;
                                }
                                ServerReply::Refused(ErrorFrame::VerificationFailed {
                                    fidelity,
                                    threshold,
                                }) => {
                                    assert_eq!(
                                        template.expected,
                                        Expected::BelowThreshold,
                                        "only below-threshold templates fail verification \
                                     (template {index})"
                                    );
                                    let measured = f64::from_bits(fidelity);
                                    assert!(measured < f64::from_bits(threshold));
                                    let calibrated =
                                        template.fidelity.expect("calibrated fidelity");
                                    assert!(
                                        (measured - calibrated).abs() < 1e-12,
                                        "replay fidelity crosses the wire intact: \
                                     {measured} vs calibrated {calibrated}"
                                    );
                                    refused += 1;
                                }
                                ServerReply::Refused(other) => {
                                    panic!("unexpected refusal for template {index}: {other:?}")
                                }
                            }
                        }
                        (completed, refused, client.retries(), client.connections())
                    })
                })
                .collect();

            let ledgers: Vec<_> = submitters
                .into_iter()
                .map(|s| s.join().expect("submitter thread"))
                .collect();
            let outcome = control.join().expect("control thread");
            (ledgers, outcome)
        });

    // Client-side ledger: every submission resolved exactly once, and the
    // chaos actually bit (connections were retried and re-dialed).
    let mut resolved = 0u64;
    let mut total_retries = 0u64;
    let mut total_connections = 0u64;
    for (submitter, &(completed, refused, retries, connections)) in ledgers.iter().enumerate() {
        assert_eq!(
            completed + refused,
            WIRE_PER_SUBMITTER as u64,
            "client {submitter}: every submission resolves exactly once"
        );
        resolved += completed + refused;
        total_retries += retries;
        total_connections += connections;
    }
    assert_eq!(resolved, (WIRE_SUBMITTERS * WIRE_PER_SUBMITTER) as u64);
    assert!(
        total_retries > 0,
        "the fault schedule must actually force retries"
    );
    assert!(
        total_connections > WIRE_SUBMITTERS as u64,
        "faulted connections must force re-dials"
    );

    // Server-side ledger: the same router served the whole flood (the
    // server restart moved it, never replaced it), so per-tenant ledgers
    // span both server incarnations and must reconcile with nothing
    // dropped. Duplicated servings (a retry after a corrupted/cut reply)
    // legitimately inflate the server-side counts, so resolved counts are
    // lower bounds, not equalities.
    let server = server_slot
        .into_inner()
        .expect("slot mutex healthy")
        .expect("server still running");
    let reborn_stats = server.stats();
    assert!(reborn_stats.accepted > 0, "reborn server took connections");
    let stats = server.backend().router().expect("router backend").stats();
    for t in &stats.tenants {
        assert_eq!(
            t.completed + t.failed + t.rejected + t.dropped,
            t.submitted,
            "tenant {} ledger reconciles",
            t.tenant
        );
        assert_eq!(t.in_flight, 0, "tenant {} has nothing in flight", t.tenant);
        assert_eq!(
            t.dropped, 0,
            "tenant {}: no accepted job was lost",
            t.tenant
        );
        if t.tenant == blocked {
            assert_eq!((t.submitted, t.rejected), (2, 1), "probe tenant ledger");
        } else {
            assert_eq!(t.rejected, 0, "flood tenant {} was never refused", t.tenant);
            let client = &ledgers[t.tenant.0 as usize];
            assert!(
                t.completed >= client.0 && t.failed >= client.1,
                "tenant {} server ledger covers the client ledger",
                t.tenant
            );
        }
    }
    assert_eq!(
        stats.completed + stats.failed,
        stats.submitted - stats.rejected,
        "global ledger reconciles (nothing dropped)"
    );
    let mut shard_ids: Vec<usize> = stats.shards.iter().map(|s| s.shard).collect();
    shard_ids.sort_unstable();
    assert_eq!(shard_ids, vec![0, 1], "both shards back on the ring");
    let warm_loaded = shard_restart_outcome.expect("mid-flood shard restart succeeded");
    assert!(
        warm_loaded > 0,
        "the restarted shard warm-loaded cached circuits from its snapshot"
    );

    server.shutdown();
    let _ = fs::remove_dir_all(&scratch);
}
