//! Routing must be invisible in the results: for random request streams
//! — structured and random states, dense and sparse, exact and
//! approximated, duplicated for cache hits — every circuit served through
//! a 1-, 2-, or 4-shard [`Router`] is bit-identical to the one-shot
//! sequential pipeline, and the per-tenant ledgers reconcile.

use mdq::core::PrepareOptions;
use mdq::engine::{EngineConfig, PrepareRequest, Priority};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::router::{Router, RouterConfig, TenantId};
use mdq::states::{ghz, w_state};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..5, 1..4).prop_map(|v| Dims::new(v).unwrap())
}

/// One request: structured or random target, exact or approximated
/// options, randomized priority (none of which may influence results).
fn arb_request() -> impl Strategy<Value = PrepareRequest> {
    arb_dims().prop_flat_map(|dims| {
        let n = dims.space_size();
        (
            Just(dims),
            0u8..4,
            0u8..2,
            0u8..3,
            proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n),
        )
            .prop_filter_map(
                "state must have nonzero norm",
                |(dims, kind, approximate, priority, parts)| {
                    let options = if approximate == 1 {
                        PrepareOptions::approximated(0.98).without_zero_subtrees()
                    } else {
                        PrepareOptions::exact().without_zero_subtrees()
                    };
                    let priority = match priority {
                        0 => Priority::Low,
                        1 => Priority::Normal,
                        _ => Priority::High,
                    };
                    let request = match kind {
                        0 => PrepareRequest::dense(dims.clone(), ghz(&dims), options),
                        1 => PrepareRequest::dense(dims.clone(), w_state(&dims), options),
                        2 => PrepareRequest::sparse(
                            dims.clone(),
                            mdq::states::sparse::ghz(&dims),
                            options,
                        ),
                        _ => {
                            let v: Vec<Complex> = parts
                                .into_iter()
                                .map(|(re, im)| Complex::new(re, im))
                                .collect();
                            let norm = mdq::num::norm(&v);
                            if norm <= 1e-3 {
                                return None;
                            }
                            PrepareRequest::dense(
                                dims.clone(),
                                v.iter().map(|a| *a / norm).collect(),
                                options,
                            )
                        }
                    };
                    Some(request.with_priority(priority))
                },
            )
    })
}

/// A stream with duplicates, so some requests are served from shard
/// caches — cached circuits must be as bit-exact as fresh ones.
fn arb_stream() -> impl Strategy<Value = Vec<PrepareRequest>> {
    (
        proptest::collection::vec(arb_request(), 2..5),
        proptest::collection::vec(0usize..1000, 2..5),
    )
        .prop_map(|(requests, picks)| {
            let mut stream = requests.clone();
            for pick in picks {
                stream.push(requests[pick % requests.len()].clone());
            }
            stream
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance property of the router: across 1, 2, and 4 shards,
    /// every routed circuit is raw-bit identical to direct sequential
    /// preparation of the same request, duplicates come back identical
    /// (cache-served or not), equal requests always co-locate on one
    /// shard, and `completed == submitted` with nothing rejected.
    #[test]
    fn prop_routed_results_are_bit_identical_across_shard_counts(stream in arb_stream()) {
        let expected: Vec<_> = stream
            .iter()
            .map(|r| r.prepare_sequential().unwrap().circuit)
            .collect();
        for shards in [1usize, 2, 4] {
            let router = Router::new(
                RouterConfig::default()
                    .with_engine_config(EngineConfig::default().with_workers(2)),
            );
            for id in 0..shards {
                router.add_shard(id);
            }
            let tenant = TenantId(0);
            let handles: Vec<_> = stream
                .iter()
                .map(|r| router.submit(tenant, r.clone()).expect("unbounded router admits"))
                .collect();
            let mut shard_of: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            for ((handle, request), expected) in
                handles.into_iter().zip(&stream).zip(&expected)
            {
                // Equal requests must co-locate (fingerprint routing).
                let key = format!("{request:?}");
                let shard = handle.shard();
                let previous = shard_of.insert(key, shard);
                if let Some(previous) = previous {
                    prop_assert_eq!(previous, shard);
                }
                let report = handle.wait().expect("routed job must succeed");
                prop_assert_eq!(&report.circuit, expected);
            }
            let stats = router.stats();
            prop_assert_eq!(stats.submitted, stream.len() as u64);
            prop_assert_eq!(stats.completed, stream.len() as u64);
            prop_assert_eq!(stats.rejected, 0);
            prop_assert_eq!(stats.shards.len(), shards);
            router.shutdown();
        }
    }
}
