//! Property tests of the `mdqwire` protocol: random requests and reports
//! — raw-bit random amplitudes (NaN payloads, infinities, subnormals,
//! signed zeros), every option combination including the verification
//! policy — must round-trip bit-exactly through the text form, and
//! damaged frames (truncated at any boundary, bytes flipped anywhere)
//! must yield typed [`WireError`]s, never panics.

use std::time::Duration;

use mdq::core::{PrepareOptions, VerificationPolicy, VerificationReport};
use mdq::engine::{
    ErrorFrame, Frame, PrepareReport, PrepareRequest, Priority, ReportFrame, RequestFrame,
    StatePayload,
};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use proptest::prelude::*;

/// Arbitrary `f64` bit patterns: uniform `u64`s reinterpreted, so NaN
/// payloads, ±inf, subnormals and signed zeros all occur.
fn raw_f64() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(f64::from_bits)
}

fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..5, 1..4).prop_map(|v| Dims::new(v).unwrap())
}

/// Every option field randomized. The tolerance stays within its type's
/// finite-and-non-negative invariant (including `-0.0`, via `0.0` whose
/// sign flips below); thresholds and verification floors are raw bits —
/// the wire carries requests as given, valid or not.
fn arb_options() -> impl Strategy<Value = PrepareOptions> {
    (
        (0u8..2, raw_f64()),      // fidelity threshold: none / raw bits
        (0.0..1.0f64, 0u8..2),    // tolerance magnitude, negate-zero flag
        (0u8..3, 0u8..2, 0u8..2), // product rule, skip identities, direction
        (0u8..2, 0u8..2),         // reduce, keep_zero_subtrees
        (0u8..2, raw_f64()),      // verification: off / replay at raw bits
    )
        .prop_map(
            |((has_fth, fth), (tol, neg_zero), (pr, skip, dir), (red, kzs), (has_ver, ver))| {
                let mut options = PrepareOptions::exact();
                options.fidelity_threshold = (has_fth == 1).then_some(fth);
                let tol = if neg_zero == 1 && tol == 0.0 {
                    -0.0
                } else {
                    tol
                };
                options.tolerance = mdq::num::Tolerance::new(tol);
                options.synthesis.product_rule = match pr {
                    0 => mdq::core::ProductRule::Off,
                    1 => mdq::core::ProductRule::SharedChild,
                    _ => mdq::core::ProductRule::SharedChildOrSingle,
                };
                options.synthesis.skip_identities = skip == 1;
                options.synthesis.direction = match dir {
                    0 => mdq::core::Direction::Prepare,
                    _ => mdq::core::Direction::Disentangle,
                };
                options.reduce = red == 1;
                options.keep_zero_subtrees = kzs == 1;
                options.verification = if has_ver == 1 {
                    VerificationPolicy::Replay { min_fidelity: ver }
                } else {
                    VerificationPolicy::Off
                };
                options
            },
        )
}

fn arb_payload() -> impl Strategy<Value = StatePayload> {
    let dense = proptest::collection::vec((raw_f64(), raw_f64()), 0..9).prop_map(|amps| {
        StatePayload::Dense(
            amps.into_iter()
                .map(|(re, im)| Complex::new(re, im))
                .collect(),
        )
    });
    let sparse = proptest::collection::vec(
        (
            proptest::collection::vec(0usize..6, 0..4),
            raw_f64(),
            raw_f64(),
        ),
        0..6,
    )
    .prop_map(|entries| {
        StatePayload::Sparse(
            entries
                .into_iter()
                .map(|(digits, re, im)| (digits, Complex::new(re, im)))
                .collect(),
        )
    });
    (0u8..2, dense, sparse).prop_map(|(pick, dense, sparse)| match pick {
        0 => dense,
        _ => sparse,
    })
}

fn arb_request_frame() -> impl Strategy<Value = RequestFrame> {
    (
        arb_dims(),
        arb_payload(),
        arb_options(),
        0u8..3,
        (0u8..2, 0u64..u64::MAX),
    )
        .prop_map(
            |(dims, payload, options, priority, (has_tenant, tenant))| RequestFrame {
                tenant: (has_tenant == 1).then_some(tenant),
                request: PrepareRequest {
                    dims,
                    payload,
                    options,
                    priority: match priority {
                        0 => Priority::Low,
                        1 => Priority::Normal,
                        _ => Priority::High,
                    },
                },
            },
        )
}

fn assert_amp_bits(a: &Complex, b: &Complex) {
    assert_eq!(a.re.to_bits(), b.re.to_bits());
    assert_eq!(a.im.to_bits(), b.im.to_bits());
}

/// Bit-exact request equality — plain `==` would treat `-0.0 == 0.0` and
/// `NaN != NaN`, neither of which is the wire contract.
fn assert_request_bits(a: &PrepareRequest, b: &PrepareRequest) {
    assert_eq!(a.dims, b.dims);
    assert_eq!(a.priority, b.priority);
    assert_eq!(
        a.options.fidelity_threshold.map(f64::to_bits),
        b.options.fidelity_threshold.map(f64::to_bits)
    );
    assert_eq!(
        a.options.tolerance.value().to_bits(),
        b.options.tolerance.value().to_bits()
    );
    assert_eq!(a.options.synthesis, b.options.synthesis);
    assert_eq!(a.options.reduce, b.options.reduce);
    assert_eq!(a.options.keep_zero_subtrees, b.options.keep_zero_subtrees);
    match (a.options.verification, b.options.verification) {
        (VerificationPolicy::Off, VerificationPolicy::Off) => {}
        (
            VerificationPolicy::Replay { min_fidelity: x },
            VerificationPolicy::Replay { min_fidelity: y },
        ) => assert_eq!(x.to_bits(), y.to_bits()),
        (x, y) => panic!("verification policies differ: {x:?} vs {y:?}"),
    }
    match (&a.payload, &b.payload) {
        (StatePayload::Dense(x), StatePayload::Dense(y)) => {
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y) {
                assert_amp_bits(p, q);
            }
        }
        (StatePayload::Sparse(x), StatePayload::Sparse(y)) => {
            assert_eq!(x.len(), y.len());
            for ((dx, p), (dy, q)) in x.iter().zip(y) {
                assert_eq!(dx, dy);
                assert_amp_bits(p, q);
            }
        }
        (x, y) => panic!("payload kinds differ: {x:?} vs {y:?}"),
    }
}

/// A small *valid* request whose preparation succeeds, for report frames.
fn arb_valid_state() -> impl Strategy<Value = (Dims, Vec<Complex>)> {
    proptest::collection::vec(2usize..4, 1..3).prop_flat_map(|dims| {
        let dims = Dims::new(dims).unwrap();
        let n = dims.space_size();
        (
            Just(dims),
            proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n),
        )
            .prop_filter_map("state must have nonzero norm", |(dims, parts)| {
                let v: Vec<Complex> = parts
                    .into_iter()
                    .map(|(re, im)| Complex::new(re, im))
                    .collect();
                let norm = mdq::num::norm(&v);
                (norm > 1e-3).then(|| (dims, v.iter().map(|a| *a / norm).collect::<Vec<Complex>>()))
            })
    })
}

fn arb_duration() -> impl Strategy<Value = Duration> {
    (0u64..1000, 0u32..1_000_000_000).prop_map(|(secs, nanos)| Duration::new(secs, nanos))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// text → Frame → text is the identity on bytes, and the parsed
    /// request is bit-identical to the one serialized — for random
    /// registers, payloads (raw-bit amplitudes), every option
    /// combination, and any tenant tag.
    #[test]
    fn prop_request_frames_round_trip_bit_exactly(frame in arb_request_frame()) {
        let text = Frame::Request(frame.clone()).to_text().unwrap();
        let parsed = Frame::parse(&text).expect("serialized frame must parse");
        prop_assert_eq!(parsed.to_text().unwrap(), text.clone());
        let Frame::Request(back) = parsed else {
            panic!("frame kind must survive");
        };
        prop_assert_eq!(back.tenant, frame.tenant);
        assert_request_bits(&back.request, &frame.request);
    }

    /// Truncating a request frame at any line boundary, or anywhere
    /// inside a line, yields a typed error — never a panic, never a
    /// silent partial parse.
    #[test]
    fn prop_truncated_frames_fail_typed(frame in arb_request_frame(), cut in 0.0..1.0f64) {
        let text = Frame::Request(frame).to_text().unwrap();
        // Every whole-line prefix.
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let prefix = lines[..keep].join("\n");
            prop_assert!(Frame::parse(&prefix).is_err());
        }
        // An arbitrary mid-byte cut (frames are pure ASCII).
        let at = ((text.len() - 1) as f64 * cut) as usize;
        prop_assert!(Frame::parse(&text[..at]).is_err());
    }

    /// Strict framing, property form: for any frame, the only byte
    /// sequence that parses is the exact serializer output — CRLF
    /// re-encodings, a stripped terminator newline, and any trailing
    /// garbage after `end\n` (including a second glued-on frame) are
    /// typed errors. This is what lets a stream reader cut frames at
    /// `end\n` and trust the parser to agree with the cut.
    #[test]
    fn prop_noncanonical_encodings_fail_typed(
        frame in arb_request_frame(),
        garbage in proptest::collection::vec(0u8..95, 1..20),
    ) {
        let text = Frame::Request(frame).to_text().unwrap();
        prop_assert_eq!(
            Frame::parse(&text).expect("canonical bytes parse").to_text().unwrap(),
            text.clone()
        );
        let garbage: String = garbage.into_iter().map(|c| (b' ' + c) as char).collect();
        let crlf = Frame::parse(&text.replace('\n', "\r\n"));
        prop_assert!(crlf.is_err(), "CRLF encoding must fail: {crlf:?}");
        let unterminated = Frame::parse(text.trim_end());
        prop_assert!(unterminated.is_err(), "missing newline must fail");
        let glued = format!("{text}{garbage}");
        prop_assert!(Frame::parse(&glued).is_err(), "trailing garbage must fail");
        let glued_line = format!("{text}{garbage}\n");
        prop_assert!(Frame::parse(&glued_line).is_err(), "garbage line must fail");
        let doubled = format!("{text}{text}");
        prop_assert!(Frame::parse(&doubled).is_err(), "second frame must fail");
    }

    /// Flipping any single byte never panics the parser: it either
    /// reports a typed error or parses some frame (e.g. a changed hex
    /// digit is a different, equally well-formed amplitude).
    #[test]
    fn prop_corrupted_frames_never_panic(
        frame in arb_request_frame(),
        at in 0.0..1.0f64,
        replacement in 0u8..96,
    ) {
        let text = Frame::Request(frame).to_text().unwrap();
        let at = ((text.len() - 1) as f64 * at) as usize;
        let mut bytes = text.into_bytes();
        bytes[at] = b' ' + replacement; // any printable ASCII
        let mutated = String::from_utf8(bytes).unwrap();
        match Frame::parse(&mutated) {
            Err(_) => {}
            Ok(parsed) => {
                // A still-valid mutation parses to a frame that can be
                // re-serialized (hex case aside, usually to the same
                // bytes); what matters here is: no panic either way.
                let _ = parsed.to_text();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Report frames round-trip bit-exactly: the synthesized circuit,
    /// every synthesis gauge (with raw-bit random floats forced in),
    /// verification report, cache flag, and all three timings.
    #[test]
    fn prop_report_frames_round_trip_bit_exactly(
        (dims, state) in arb_valid_state(),
        (cmed, cmean, pmass, fbound) in (raw_f64(), raw_f64(), 0.0..1.0f64, raw_f64()),
        (elapsed, queue, admission, verify_t) in
            (arb_duration(), arb_duration(), arb_duration(), arb_duration()),
        (has_verify, fidelity, from_cache) in (0u8..2, raw_f64(), 0u8..2),
    ) {
        let request = PrepareRequest::dense(dims.clone(), state, PrepareOptions::exact());
        let prepared = request.prepare_sequential().unwrap();
        // Force raw-bit floats into the gauges: the wire must carry any
        // bit pattern, not just ones the pipeline happens to produce.
        let mut synth = prepared.report;
        synth.controls_median = cmed;
        synth.controls_mean = cmean;
        synth.pruned_mass = pmass;
        synth.fidelity_bound = fbound;
        let report = PrepareReport {
            circuit: prepared.circuit,
            report: synth,
            verification: (has_verify == 1).then_some(VerificationReport {
                fidelity,
                replay_nodes: 17,
                duration: verify_t,
            }),
            from_cache: from_cache == 1,
            elapsed,
            queue_wait: queue,
            admission_wait: admission,
        };

        let frame = Frame::Report(ReportFrame { dims: dims.clone(), report: report.clone() });
        let text = frame.to_text().unwrap();
        let parsed = Frame::parse(&text).expect("serialized report must parse");
        prop_assert_eq!(parsed.to_text().unwrap(), text);
        let Frame::Report(back) = parsed else { panic!("frame kind must survive") };
        prop_assert_eq!(back.dims, dims);
        prop_assert_eq!(&back.report.circuit, &report.circuit);
        prop_assert_eq!(back.report.from_cache, report.from_cache);
        prop_assert_eq!(back.report.elapsed, report.elapsed);
        prop_assert_eq!(back.report.queue_wait, report.queue_wait);
        prop_assert_eq!(back.report.admission_wait, report.admission_wait);
        prop_assert_eq!(
            back.report.report.controls_median.to_bits(), cmed.to_bits());
        prop_assert_eq!(back.report.report.controls_mean.to_bits(), cmean.to_bits());
        prop_assert_eq!(back.report.report.fidelity_bound.to_bits(), fbound.to_bits());
        prop_assert_eq!(back.report.report.nodes_initial, report.report.nodes_initial);
        prop_assert_eq!(back.report.report.operations, report.report.operations);
        prop_assert_eq!(back.report.report.time, report.report.time);
        match (&back.report.verification, &report.verification) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.fidelity.to_bits(), b.fidelity.to_bits());
                prop_assert_eq!(a.replay_nodes, b.replay_nodes);
                prop_assert_eq!(a.duration, b.duration);
            }
            (a, b) => panic!("verification reports differ: {a:?} vs {b:?}"),
        }
    }

    /// Error frames round-trip exactly, with raw-bit fidelities.
    #[test]
    fn prop_error_frames_round_trip(
        (kind, a, b) in (0u8..8, 0u64..u64::MAX, 0u64..u64::MAX),
        message in proptest::collection::vec(0u8..95, 0..40),
    ) {
        let message: String = message.into_iter().map(|c| (b' ' + c) as char).collect();
        let frame = match kind {
            0 => ErrorFrame::Prepare { message },
            1 => ErrorFrame::Shutdown,
            2 => ErrorFrame::QueueClosed,
            3 => ErrorFrame::QueueFull { depth: a as usize % 1000, limit: b as usize % 1000 },
            4 => ErrorFrame::VerificationFailed { fidelity: a, threshold: b },
            5 => ErrorFrame::NoShards,
            6 => ErrorFrame::BadFrame { message },
            _ => ErrorFrame::TenantOverQuota {
                tenant: a,
                in_flight: b as usize % 1000,
                limit: b as usize % 1000 + 1,
            },
        };
        let text = Frame::Error(frame.clone()).to_text().unwrap();
        let Frame::Error(back) = Frame::parse(&text).expect("error frame must parse") else {
            panic!("frame kind must survive");
        };
        prop_assert_eq!(back, frame);
    }
}
