//! Property-based end-to-end test: for arbitrary mixed-dimensional
//! registers and arbitrary dense states, the full pipeline prepares the
//! state to its guaranteed fidelity — exactly when exact, within budget
//! when approximated — and all reported metrics are internally consistent.

use mdq::core::{prepare, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::sim::StateVector;
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..6, 1..5).prop_map(|v| Dims::new(v).unwrap())
}

fn arb_state(dims: &Dims) -> impl Strategy<Value = Vec<Complex>> {
    let n = dims.space_size();
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n).prop_filter_map(
        "state must have nonzero norm",
        |parts| {
            let v: Vec<Complex> = parts
                .into_iter()
                .map(|(re, im)| Complex::new(re, im))
                .collect();
            let norm = mdq::num::norm(&v);
            (norm > 1e-6).then(|| v.iter().map(|a| *a / norm).collect::<Vec<_>>())
        },
    )
}

fn arb_dims_and_state() -> impl Strategy<Value = (Dims, Vec<Complex>)> {
    arb_dims().prop_flat_map(|d| {
        let s = arb_state(&d);
        (Just(d), s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn prop_exact_preparation_reaches_unit_fidelity((dims, state) in arb_dims_and_state()) {
        let result = prepare(&dims, &state, PrepareOptions::exact()).unwrap();
        let mut sv = StateVector::ground(dims.clone());
        sv.apply_circuit(&result.circuit);
        let f = sv.fidelity_with_amplitudes(&state);
        prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {}", f);
        // Metric consistency: ops ≤ edges − 1, controls_max < #qudits.
        prop_assert!(result.report.operations < result.report.nodes_initial);
        prop_assert!(result.report.controls_max < dims.len());
    }

    #[test]
    fn prop_approximated_preparation_respects_budget(
        (dims, state) in arb_dims_and_state(),
        threshold in 0.7..0.999f64,
    ) {
        let result = prepare(&dims, &state, PrepareOptions::approximated(threshold)).unwrap();
        let mut sv = StateVector::ground(dims.clone());
        sv.apply_circuit(&result.circuit);
        let f = sv.fidelity_with_amplitudes(&state);
        prop_assert!(f >= threshold - 1e-8, "fidelity {} below {}", f, threshold);
        prop_assert!((f - result.report.fidelity_bound).abs() < 1e-8,
            "measured {} vs bound {}", f, result.report.fidelity_bound);
    }

    #[test]
    fn prop_reduced_synthesis_is_equivalent((dims, state) in arb_dims_and_state()) {
        let plain = prepare(&dims, &state, PrepareOptions::exact()).unwrap();
        let reduced = prepare(&dims, &state, PrepareOptions::exact().with_reduction()).unwrap();
        let mut sv = StateVector::ground(dims.clone());
        sv.apply_circuit(&reduced.circuit);
        let f = sv.fidelity_with_amplitudes(&state);
        prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {}", f);
        prop_assert!(reduced.report.operations <= plain.report.operations);
    }

    #[test]
    fn prop_disentangler_and_preparer_are_mutual_inverses((dims, state) in arb_dims_and_state()) {
        use mdq::core::{synthesize, Direction, SynthesisOptions};
        use mdq::dd::{BuildOptions, StateDd};
        let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default()).unwrap();
        let dis = synthesize(&dd, SynthesisOptions {
            direction: Direction::Disentangle,
            ..SynthesisOptions::default()
        });
        let mut sv = StateVector::from_amplitudes(dims.clone(), &state).unwrap();
        sv.apply_circuit(&dis);
        let ground = vec![0; dims.len()];
        prop_assert!((sv.probability(&ground) - 1.0).abs() < 1e-8);
    }
}
