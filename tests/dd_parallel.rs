//! Bit-identity property tests for the parallel within-job build
//! (`BuildOptions::build_threads`): at 1, 2, and 4 threads — over dense,
//! sparse, and unreduced (`keep_zero_subtrees`) payloads — the built
//! diagram's `to_amplitudes` must be **raw-bit identical** to the
//! sequential build's, not merely within tolerance. The work-splitting
//! driver re-interns subtree results in exactly the order the sequential
//! recursion would have created them, so this is an equality the
//! implementation owes, and the strongest possible regression guard for
//! the engine's "parallelism never changes a served circuit" contract.

use mdq::dd::{BuildOptions, ScratchPool, StateDd};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use proptest::prelude::*;

/// Random mixed-radix registers of 2–4 qudits with local dimensions 2–5
/// (at least two levels, so the top-level split always has work to hand
/// out).
fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..6, 2..5).prop_map(|v| Dims::new(v).unwrap())
}

/// A normalized random amplitude vector for the given register.
fn arb_state(dims: &Dims) -> impl Strategy<Value = Vec<Complex>> {
    let n = dims.space_size();
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n).prop_filter_map(
        "state must have nonzero norm",
        |parts| {
            let v: Vec<Complex> = parts
                .into_iter()
                .map(|(re, im)| Complex::new(re, im))
                .collect();
            let norm = mdq::num::norm(&v);
            (norm > 1e-6).then(|| v.iter().map(|a| *a / norm).collect::<Vec<_>>())
        },
    )
}

fn arb_dims_and_state() -> impl Strategy<Value = (Dims, Vec<Complex>)> {
    arb_dims().prop_flat_map(|d| {
        let s = arb_state(&d);
        (Just(d), s)
    })
}

/// A random sparse support: a handful of basis states with random
/// amplitudes (duplicates allowed — the builder must fold them the same
/// way on every path).
fn arb_sparse_state() -> impl Strategy<Value = (Dims, Vec<(Vec<usize>, Complex)>)> {
    arb_dims().prop_flat_map(|d| {
        let n = d.space_size();
        let support = proptest::collection::vec((0..n, (-1.0..1.0f64, -1.0..1.0f64)), 1..10)
            .prop_filter_map("support must have nonzero norm", move |entries| {
                let v: Vec<(usize, Complex)> = entries
                    .into_iter()
                    .map(|(i, (re, im))| (i, Complex::new(re, im)))
                    .collect();
                let norm: f64 = v.iter().map(|(_, a)| a.norm_sqr()).sum::<f64>().sqrt();
                (norm > 1e-6).then_some(v)
            });
        (Just(d), support).prop_map(|(d, v)| {
            let entries = v
                .into_iter()
                .map(|(i, a)| (d.digits_of(i), a))
                .collect::<Vec<_>>();
            (d, entries)
        })
    })
}

/// Raw-bit amplitude equality — `to_bits` comparison, so `-0.0 != 0.0`
/// and no tolerance is involved anywhere.
fn bits_identical(a: &[Complex], b: &[Complex]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("length mismatch: {} vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x.re.to_bits() != y.re.to_bits() || x.im.to_bits() != y.im.to_bits() {
            return Err(format!("amplitude {i} differs in raw bits: {x:?} vs {y:?}"));
        }
    }
    Ok(())
}

const THREADS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_parallel_dense_build_is_bit_identical((dims, amps) in arb_dims_and_state()) {
        let sequential =
            StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        let want = sequential.to_amplitudes();
        for threads in THREADS {
            let parallel = StateDd::from_amplitudes(
                &dims,
                &amps,
                BuildOptions::default().build_threads(threads),
            )
            .unwrap();
            prop_assert_eq!(parallel.node_count(), sequential.node_count());
            prop_assert!(parallel.is_canonical());
            if let Err(msg) = bits_identical(&parallel.to_amplitudes(), &want) {
                prop_assert!(false, "{} threads: {}", threads, msg);
            }
        }
    }

    #[test]
    fn prop_parallel_sparse_build_is_bit_identical((dims, entries) in arb_sparse_state()) {
        let sequential =
            StateDd::from_sparse(&dims, &entries, BuildOptions::default()).unwrap();
        let want = sequential.to_amplitudes();
        for threads in THREADS {
            let parallel = StateDd::from_sparse(
                &dims,
                &entries,
                BuildOptions::default().build_threads(threads),
            )
            .unwrap();
            prop_assert_eq!(parallel.node_count(), sequential.node_count());
            if let Err(msg) = bits_identical(&parallel.to_amplitudes(), &want) {
                prop_assert!(false, "{} threads: {}", threads, msg);
            }
        }
    }

    #[test]
    fn prop_parallel_keep_zero_build_is_bit_identical((dims, amps) in arb_dims_and_state()) {
        // The unreduced Table-1 tree exercises the `alloc_unshared` merge
        // path (no hash-consing, node ids are pure creation order).
        let opts = BuildOptions::default().keep_zero_subtrees(true);
        let sequential = StateDd::from_amplitudes(&dims, &amps, opts).unwrap();
        let want = sequential.to_amplitudes();
        for threads in THREADS {
            let parallel =
                StateDd::from_amplitudes(&dims, &amps, opts.build_threads(threads)).unwrap();
            prop_assert_eq!(parallel.node_count(), sequential.node_count());
            if let Err(msg) = bits_identical(&parallel.to_amplitudes(), &want) {
                prop_assert!(false, "{} threads: {}", threads, msg);
            }
        }
    }

    #[test]
    fn prop_scratch_pool_reuse_stays_bit_identical((dims, amps) in arb_dims_and_state()) {
        // Serving-shaped usage: one caller arena + one scratch pool reused
        // across consecutive parallel builds must keep producing the exact
        // sequential bits (leak-free `reset_for_tables` under the sharded
        // tables is what this exercises).
        let want = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())
            .unwrap()
            .to_amplitudes();
        let mut pool = ScratchPool::new();
        for threads in [4usize, 2, 4] {
            let arena = mdq::dd::DdArena::new(BuildOptions::default().tolerance_value());
            let dd = StateDd::from_amplitudes_in_pooled(
                &dims,
                &amps,
                BuildOptions::default().build_threads(threads),
                arena,
                &mut pool,
            )
            .unwrap();
            if let Err(msg) = bits_identical(&dd.to_amplitudes(), &want) {
                prop_assert!(false, "{} threads (pooled): {}", threads, msg);
            }
        }
    }
}

/// The split planner only engages when it can help: single-thread requests
/// and single-level registers build sequentially.
#[test]
fn plan_split_declines_trivial_work() {
    let two_levels = Dims::new(vec![3, 4]).unwrap();
    assert!(mdq::dd::plan_split(&two_levels, 1).is_none());
    let one_level = Dims::new(vec![7]).unwrap();
    assert!(mdq::dd::plan_split(&one_level, 4).is_none());
    let plan = mdq::dd::plan_split(&two_levels, 2).expect("two levels split");
    assert!(plan.depth >= 1 && plan.depth < two_levels.len());
    assert_eq!(plan.threads, 2);
}

/// The shared tables and the scratch pool must be safe to move across the
/// worker threads the split driver spawns — compile-time proof.
#[test]
fn shared_tables_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<mdq::num::ShardedComplexTable>();
    assert_send_sync::<mdq::dd::unique::ShardedUniqueTable>();
    assert_send_sync::<ScratchPool>();
    assert_send_sync::<mdq::dd::DdArena>();
}
