//! End-to-end regression of the paper's Table 1 across crate boundaries:
//! state generators → decision diagram → synthesis → simulator.
//!
//! Exact expectations (structural metrics, operation counts) come from the
//! table itself; fidelity columns are re-measured with the simulator.

use mdq::core::{prepare, verify::prepare_and_verify, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::states::{embedded_w, ghz, random_state, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dims(v: &[usize]) -> Dims {
    Dims::new(v.to_vec()).unwrap()
}

/// (family name, generator) pairs for the structured benchmarks.
type Generator = fn(&Dims) -> Vec<mdq::num::Complex>;

const STRUCTURED: [(&str, Generator); 3] = [
    ("Emb. W-State", embedded_w as Generator),
    ("GHZ State", ghz as Generator),
    ("W-State", w_state as Generator),
];

#[test]
fn exact_structural_metrics_all_rows() {
    // "Nodes" (Exact) is purely structural: identical for every family.
    let expectations = [
        (&[3usize, 6, 2][..], 58usize),
        (&[9, 5, 6, 3], 1135),
        (&[4, 7, 4, 4, 3, 5], 8657),
    ];
    for (reg, nodes) in expectations {
        let d = dims(reg);
        for (name, generator) in STRUCTURED {
            let r = prepare(&d, &generator(&d), PrepareOptions::exact()).unwrap();
            assert_eq!(r.report.nodes_initial, nodes, "{name} over {reg:?}");
        }
    }
}

#[test]
fn exact_operation_counts_all_structured_rows() {
    let expectations: [(&[usize], [usize; 3]); 3] = [
        // (register, [EmbW, GHZ, W] operations)
        (&[3, 6, 2], [21, 19, 37]),
        (&[9, 5, 6, 3], [49, 51, 186]),
        (&[4, 7, 4, 4, 3, 5], [91, 73, 262]),
    ];
    for (reg, ops) in expectations {
        let d = dims(reg);
        for ((name, generator), want) in STRUCTURED.iter().zip(ops) {
            let r = prepare(&d, &generator(&d), PrepareOptions::exact()).unwrap();
            assert_eq!(r.report.operations, want, "{name} over {reg:?}");
        }
    }
}

#[test]
fn structured_rows_are_unaffected_by_approximation() {
    // "Due to the regular structure of the first three benchmarks, the
    // approximation shows no effect" — every component carries ≥ 1/21 of
    // the mass, far above the 2 % budget.
    for reg in [&[3usize, 6, 2][..], &[9, 5, 6, 3], &[4, 7, 4, 4, 3, 5]] {
        let d = dims(reg);
        for (name, generator) in STRUCTURED {
            let state = generator(&d);
            let exact = prepare(&d, &state, PrepareOptions::exact()).unwrap();
            let approx = prepare(&d, &state, PrepareOptions::approximated(0.98)).unwrap();
            assert_eq!(
                exact.report.operations, approx.report.operations,
                "{name} over {reg:?}"
            );
            // The zero-weight branches of the structural tree are removed
            // for free, but no probability mass is ever pruned.
            assert!(approx.report.pruned_mass < 1e-12, "{name} over {reg:?}");
            assert!((approx.report.fidelity_bound - 1.0).abs() < 1e-12);
        }
    }
}

#[test]
fn structured_fidelities_are_exactly_one() {
    for reg in [&[3usize, 6, 2][..], &[9, 5, 6, 3]] {
        let d = dims(reg);
        for (name, generator) in STRUCTURED {
            let (_, f) =
                prepare_and_verify(&d, &generator(&d), PrepareOptions::exact()).unwrap();
            assert!((f - 1.0).abs() < 1e-9, "{name} over {reg:?}: fidelity {f}");
        }
    }
}

#[test]
fn random_rows_exact_and_approximated() {
    let registers: [&[usize]; 3] = [&[3, 6, 2], &[9, 5, 6, 3], &[6, 6, 5, 3, 3]];
    let exact_ops = [57usize, 1134, 2382];
    let mut rng = StdRng::seed_from_u64(2468);
    for (reg, want_ops) in registers.iter().zip(exact_ops) {
        let d = dims(reg);
        let state = random_state(&d, RandomKind::ReImUniform, &mut rng);

        let (exact, f_exact) =
            prepare_and_verify(&d, &state, PrepareOptions::exact()).unwrap();
        assert_eq!(exact.report.operations, want_ops, "{reg:?}");
        assert!((f_exact - 1.0).abs() < 1e-9, "{reg:?}: exact fidelity {f_exact}");

        let (approx, f_approx) =
            prepare_and_verify(&d, &state, PrepareOptions::approximated(0.98)).unwrap();
        assert!(f_approx >= 0.98 - 1e-9, "{reg:?}: approx fidelity {f_approx}");
        assert!(
            (f_approx - approx.report.fidelity_bound).abs() < 1e-9,
            "{reg:?}: measured {f_approx} vs bound {}",
            approx.report.fidelity_bound
        );
        assert!(approx.report.operations <= exact.report.operations);
        assert!(approx.report.nodes_final <= exact.report.nodes_initial);
    }
}

#[test]
fn time_grows_with_diagram_size() {
    // "Performance directly linked to the size of the decision diagram":
    // the largest random row must take longer than the smallest, by a wide
    // margin (the diagrams differ by 150×).
    let mut rng = StdRng::seed_from_u64(7);
    let d_small = dims(&[3, 6, 2]);
    let d_large = dims(&[4, 7, 4, 4, 3, 5]);
    let small_state = random_state(&d_small, RandomKind::ReImUniform, &mut rng);
    let large_state = random_state(&d_large, RandomKind::ReImUniform, &mut rng);
    // Warm up, then time a few runs.
    let mut t_small = std::time::Duration::MAX;
    let mut t_large = std::time::Duration::MAX;
    for _ in 0..5 {
        let rs = prepare(&d_small, &small_state, PrepareOptions::exact()).unwrap();
        let rl = prepare(&d_large, &large_state, PrepareOptions::exact()).unwrap();
        t_small = t_small.min(rs.report.time);
        t_large = t_large.min(rl.report.time);
    }
    assert!(
        t_large > t_small,
        "large register ({t_large:?}) should outweigh small ({t_small:?})"
    );
}
