//! End-to-end regression of the paper's Table 1 across crate boundaries:
//! state generators → decision diagram → synthesis → simulator.
//!
//! Exact expectations (structural metrics, operation counts) live in the
//! checked-in golden file `tests/golden/table1.json`; new rows (families,
//! registers) are data additions there, not code edits here. Fidelity
//! columns are re-measured with the simulator.

mod support;

use mdq::core::{prepare, verify::prepare_and_verify, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::states::{embedded_w, ghz, random_state, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use support::json::Json;

/// A generator for one structured benchmark family.
type Generator = fn(&Dims) -> Vec<Complex>;

fn generator_for(family: &str) -> Generator {
    match family {
        "Emb. W-State" => embedded_w as Generator,
        "GHZ State" => ghz as Generator,
        "W-State" => w_state as Generator,
        other => panic!("golden file names unknown family `{other}`"),
    }
}

/// One register row of the golden file.
struct GoldenRegister {
    label: String,
    dims: Dims,
    nodes_exact: usize,
    /// `(family, operations)` pairs; empty for random-only registers.
    operations: Vec<(String, usize)>,
    random_exact_operations: Option<usize>,
}

/// A stable per-row RNG seed derived from the register label, so adding or
/// reordering golden rows never shifts the random states — and therefore
/// the checked-in expectations — of unrelated rows.
fn row_seed(label: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64; // FNV-1a
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn load_golden() -> Vec<GoldenRegister> {
    let doc = Json::parse(include_str!("golden/table1.json"))
        .unwrap_or_else(|e| panic!("tests/golden/table1.json: {e}"));
    let families: Vec<String> = doc
        .get("families")
        .expect("golden file lists families")
        .expect_array()
        .iter()
        .map(|f| f.expect_str().to_owned())
        .collect();
    doc.get("registers")
        .expect("golden file lists registers")
        .expect_array()
        .iter()
        .map(|row| {
            let label = row
                .get("label")
                .expect("register label")
                .expect_str()
                .to_owned();
            // A misspelled key would silently drop expectations (absent keys
            // reclassify a register as random-only), so reject anything
            // outside the schema outright.
            for key in row.expect_object().keys() {
                assert!(
                    matches!(
                        key.as_str(),
                        "label" | "dims" | "nodes_exact" | "operations" | "random_exact_operations"
                    ),
                    "register {label} has unknown key `{key}`"
                );
            }
            let dims_vec: Vec<usize> = row
                .get("dims")
                .unwrap_or_else(|| panic!("register {label} has dims"))
                .expect_array()
                .iter()
                .map(Json::expect_usize)
                .collect();
            let dims = Dims::new(dims_vec)
                .unwrap_or_else(|e| panic!("register {label} has invalid dims: {e}"));
            let operations = match row.get("operations") {
                None => Vec::new(),
                Some(map) => {
                    let members = map.expect_object();
                    for key in members.keys() {
                        assert!(
                            families.iter().any(|f| f == key),
                            "register {label} has operations for unknown family `{key}`"
                        );
                    }
                    families
                        .iter()
                        .map(|family| {
                            let ops = members
                                .get(family)
                                .unwrap_or_else(|| {
                                    panic!("register {label} is missing operations for {family}")
                                })
                                .expect_usize();
                            (family.clone(), ops)
                        })
                        .collect()
                }
            };
            GoldenRegister {
                nodes_exact: row
                    .get("nodes_exact")
                    .unwrap_or_else(|| panic!("register {label} has nodes_exact"))
                    .expect_usize(),
                random_exact_operations: row.get("random_exact_operations").map(Json::expect_usize),
                label,
                dims,
                operations,
            }
        })
        .collect()
}

#[test]
fn golden_registers_are_structurally_consistent() {
    // "Nodes" (Exact) is the unreduced-tree edge count — a pure function of
    // the register, checkable without running any synthesis.
    let golden = load_golden();
    assert!(!golden.is_empty(), "golden file has no registers");
    for row in &golden {
        assert_eq!(
            row.dims.full_tree_edge_count(),
            row.nodes_exact,
            "{} ({})",
            row.label,
            row.dims
        );
        if let Some(random_ops) = row.random_exact_operations {
            // A dense state's diagram is the full tree; exact synthesis emits
            // one operation per edge except the terminal's incoming root edge.
            assert_eq!(random_ops, row.nodes_exact - 1, "{}", row.label);
        }
    }
}

#[test]
fn exact_structural_metrics_all_rows() {
    // The pipeline must report exactly the golden "Nodes" count, for every
    // structured family (the metric is structural: identical across them).
    for row in load_golden().iter().filter(|r| !r.operations.is_empty()) {
        for (family, _) in &row.operations {
            let state = generator_for(family)(&row.dims);
            let r = prepare(&row.dims, &state, PrepareOptions::exact()).unwrap();
            assert_eq!(
                r.report.nodes_initial, row.nodes_exact,
                "{family} over {}",
                row.label
            );
        }
    }
}

#[test]
fn exact_operation_counts_all_structured_rows() {
    for row in load_golden().iter().filter(|r| !r.operations.is_empty()) {
        for (family, want) in &row.operations {
            let state = generator_for(family)(&row.dims);
            let r = prepare(&row.dims, &state, PrepareOptions::exact()).unwrap();
            assert_eq!(r.report.operations, *want, "{family} over {}", row.label);
        }
    }
}

#[test]
fn structured_rows_are_unaffected_by_approximation() {
    // "Due to the regular structure of the first three benchmarks, the
    // approximation shows no effect" — every component carries ≥ 1/21 of
    // the mass, far above the 2 % budget.
    for row in load_golden().iter().filter(|r| !r.operations.is_empty()) {
        for (family, _) in &row.operations {
            let state = generator_for(family)(&row.dims);
            let exact = prepare(&row.dims, &state, PrepareOptions::exact()).unwrap();
            let approx = prepare(&row.dims, &state, PrepareOptions::approximated(0.98)).unwrap();
            assert_eq!(
                exact.report.operations, approx.report.operations,
                "{family} over {}",
                row.label
            );
            // The zero-weight branches of the structural tree are removed
            // for free, but no probability mass is ever pruned.
            assert!(
                approx.report.pruned_mass < 1e-12,
                "{family} over {}",
                row.label
            );
            assert!((approx.report.fidelity_bound - 1.0).abs() < 1e-12);
        }
    }
}

#[test]
fn structured_fidelities_are_exactly_one() {
    // Simulation is exponential in the register, so verify fidelity on the
    // rows small enough for the dense simulator's test budget.
    for row in load_golden()
        .iter()
        .filter(|r| !r.operations.is_empty() && r.dims.space_size() <= 1000)
    {
        for (family, _) in &row.operations {
            let state = generator_for(family)(&row.dims);
            let (_, f) = prepare_and_verify(&row.dims, &state, PrepareOptions::exact()).unwrap();
            assert!(
                (f - 1.0).abs() < 1e-9,
                "{family} over {}: fidelity {f}",
                row.label
            );
        }
    }
}

#[test]
fn random_rows_exact_and_approximated() {
    for row in load_golden() {
        let Some(want_ops) = row.random_exact_operations else {
            continue;
        };
        // Per-row seed: adding golden rows must not reshuffle the random
        // states of existing ones.
        let mut rng = StdRng::seed_from_u64(0x2468 ^ row_seed(&row.label));
        let state = random_state(&row.dims, RandomKind::ReImUniform, &mut rng);

        let (exact, f_exact) =
            prepare_and_verify(&row.dims, &state, PrepareOptions::exact()).unwrap();
        assert_eq!(exact.report.operations, want_ops, "{}", row.label);
        assert!(
            (f_exact - 1.0).abs() < 1e-9,
            "{}: exact fidelity {f_exact}",
            row.label
        );

        let (approx, f_approx) =
            prepare_and_verify(&row.dims, &state, PrepareOptions::approximated(0.98)).unwrap();
        assert!(
            f_approx >= 0.98 - 1e-9,
            "{}: approx fidelity {f_approx}",
            row.label
        );
        assert!(
            (f_approx - approx.report.fidelity_bound).abs() < 1e-9,
            "{}: measured {f_approx} vs bound {}",
            row.label,
            approx.report.fidelity_bound
        );
        assert!(approx.report.operations <= exact.report.operations);
        assert!(approx.report.nodes_final <= exact.report.nodes_initial);
    }
}

#[test]
fn time_grows_with_diagram_size() {
    // "Performance directly linked to the size of the decision diagram":
    // the largest random row must take longer than the smallest, by a wide
    // margin (the diagrams differ by 150×).
    let golden = load_golden();
    let smallest = golden
        .iter()
        .min_by_key(|r| r.nodes_exact)
        .expect("non-empty golden file");
    let largest = golden
        .iter()
        .max_by_key(|r| r.nodes_exact)
        .expect("non-empty golden file");
    let mut rng = StdRng::seed_from_u64(7);
    let small_state = random_state(&smallest.dims, RandomKind::ReImUniform, &mut rng);
    let large_state = random_state(&largest.dims, RandomKind::ReImUniform, &mut rng);
    // Warm up, then time a few runs.
    let mut t_small = std::time::Duration::MAX;
    let mut t_large = std::time::Duration::MAX;
    for _ in 0..5 {
        let rs = prepare(&smallest.dims, &small_state, PrepareOptions::exact()).unwrap();
        let rl = prepare(&largest.dims, &large_state, PrepareOptions::exact()).unwrap();
        t_small = t_small.min(rs.report.time);
        t_large = t_large.min(rl.report.time);
    }
    assert!(
        t_large > t_small,
        "large register ({t_large:?}) should outweigh small ({t_small:?})"
    );
}
