//! Properties of the persistent `EngineService`, driven through the `mdq`
//! facade: streamed submissions with shuffled priorities must resolve to
//! circuits bit-identical to the one-shot sequential pipeline at every
//! worker count; shutdown under load must resolve every pending handle
//! (never hang); and workers — with their warmed arenas — must persist
//! across submission waves.

use mdq::core::PrepareOptions;
use mdq::engine::{EngineConfig, EngineService, JobHandle, PrepareRequest, Priority};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::states::{ghz, w_state};
use proptest::prelude::*;

/// Random mixed-radix registers of 1–3 qudits with local dimensions 2–4
/// (small enough that a proptest case runs dozens of pipelines quickly).
fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..5, 1..4).prop_map(|v| Dims::new(v).unwrap())
}

/// One request: a register plus a structured or random target, exact or
/// approximated options, and a randomized scheduling priority (which must
/// never influence the result).
fn arb_request() -> impl Strategy<Value = PrepareRequest> {
    arb_dims().prop_flat_map(|dims| {
        let n = dims.space_size();
        (
            Just(dims),
            0u8..4,
            0u8..2,
            0u8..3,
            proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n),
        )
            .prop_filter_map(
                "state must have nonzero norm",
                |(dims, kind, approximate, priority, parts)| {
                    let options = if approximate == 1 {
                        PrepareOptions::approximated(0.98).without_zero_subtrees()
                    } else {
                        PrepareOptions::exact().without_zero_subtrees()
                    };
                    let priority = match priority {
                        0 => Priority::Low,
                        1 => Priority::Normal,
                        _ => Priority::High,
                    };
                    let request = match kind {
                        0 => PrepareRequest::dense(dims.clone(), ghz(&dims), options),
                        1 => PrepareRequest::dense(dims.clone(), w_state(&dims), options),
                        2 => PrepareRequest::sparse(
                            dims.clone(),
                            mdq::states::sparse::ghz(&dims),
                            options,
                        ),
                        _ => {
                            let v: Vec<Complex> = parts
                                .into_iter()
                                .map(|(re, im)| Complex::new(re, im))
                                .collect();
                            let norm = mdq::num::norm(&v);
                            if norm <= 1e-3 {
                                return None;
                            }
                            PrepareRequest::dense(
                                dims.clone(),
                                v.iter().map(|a| *a / norm).collect(),
                                options,
                            )
                        }
                    };
                    Some(request.with_priority(priority))
                },
            )
    })
}

/// A stream of requests, some duplicated (cache-hit replays), shuffled so
/// submission order differs from generation order.
fn arb_stream() -> impl Strategy<Value = Vec<PrepareRequest>> {
    (
        proptest::collection::vec(arb_request(), 2..6),
        proptest::collection::vec(0usize..1000, 2..6),
        0u64..u64::MAX,
    )
        .prop_map(|(mut requests, picks, seed)| {
            let base = requests.len();
            for pick in picks {
                requests.push(requests[pick % base].clone());
            }
            // Fisher–Yates with a tiny deterministic LCG keyed on `seed`.
            let mut state = seed | 1;
            for i in (1..requests.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                requests.swap(i, j);
            }
            requests
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streamed submissions resolve bit-identical to the sequential
    /// one-shot pipeline at 1, 2, and 4 workers, regardless of the
    /// shuffled priorities, the size-aware scheduling, or cache replays.
    #[test]
    fn prop_streamed_submissions_match_sequential_prepare(stream in arb_stream()) {
        let expected: Vec<mdq::circuit::Circuit> = stream
            .iter()
            .map(|request| request.prepare_sequential().expect("pipeline runs").circuit)
            .collect();
        for workers in [1usize, 2, 4] {
            let service = EngineService::new(EngineConfig::default().with_workers(workers));
            // Stream one by one — the submission path, not the batch path.
            let handles: Vec<JobHandle> =
                stream.iter().cloned().map(|r| service.submit(r)).collect();
            for (index, (handle, want)) in handles.into_iter().zip(&expected).enumerate() {
                let report = handle.wait().expect("job succeeds");
                prop_assert_eq!(
                    &report.circuit,
                    want,
                    "request {} at {} workers",
                    index,
                    workers
                );
            }
            // Duplicated requests guarantee cache traffic on every run.
            let stats = service.stats();
            prop_assert!(stats.cache.hits + stats.cache.misses > 0);
            service.shutdown();
        }
    }
}

#[test]
fn shutdown_under_load_resolves_every_pending_handle() {
    let d = Dims::new(vec![3, 6, 2]).unwrap();
    // One worker, no cache: a deep queue is guaranteed to still be pending
    // when the service is torn down.
    let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
    let handles: Vec<JobHandle> = (0..24)
        .map(|i| {
            let priority = match i % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            };
            service.submit(
                PrepareRequest::dense(d.clone(), w_state(&d), PrepareOptions::exact())
                    .with_priority(priority),
            )
        })
        .collect();
    service.shutdown_now();
    let mut served = 0usize;
    let mut shut_down = 0usize;
    for handle in handles {
        // Must never hang: every handle resolves to a result or Shutdown.
        match handle.wait() {
            Ok(report) => {
                assert!(!report.circuit.is_empty());
                served += 1;
            }
            Err(mdq::engine::EngineError::Shutdown) => shut_down += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(served + shut_down, 24);
    assert!(
        shut_down > 0,
        "a deep queue cannot fully drain before abort"
    );
}

#[test]
fn workers_persist_across_submission_waves() {
    let d = Dims::new(vec![3, 6, 2]).unwrap();
    // Cache off so every job runs the pipeline; canonical (zero-pruned)
    // builds make arena traffic visible in the weight-table counters.
    let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
    let opts = PrepareOptions::exact().without_zero_subtrees();
    let submit_wave = |n: usize| -> Vec<JobHandle> {
        (0..n)
            .map(|_| service.submit(PrepareRequest::dense(d.clone(), w_state(&d), opts)))
            .collect()
    };

    for handle in submit_wave(4) {
        handle.wait().expect("wave-1 job succeeds");
    }
    let after_first = service.stats();
    assert_eq!(
        after_first.arena_reuses, 3,
        "within wave 1, jobs 2–4 run on the warmed arena"
    );
    assert!(after_first.weight_lookups > 0);

    for handle in submit_wave(4) {
        handle.wait().expect("wave-2 job succeeds");
    }
    let after_second = service.stats();
    // The first wave-2 job is also an arena reuse: the worker (and its
    // warmed arena) survived between the waves instead of being respawned.
    assert_eq!(after_second.arena_reuses, 7);
    assert!(after_second.weight_lookups > after_first.weight_lookups);
    service.shutdown();
}

#[test]
fn priorities_and_queue_waits_are_observable() {
    let d = Dims::new(vec![3, 6, 2]).unwrap();
    let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
    let handles: Vec<JobHandle> = (0..6)
        .map(|_| {
            service.submit(
                PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact())
                    .with_priority(Priority::High),
            )
        })
        .collect();
    let mut any_waited = false;
    for handle in handles {
        let report = handle.wait().expect("job succeeds");
        any_waited |= !report.queue_wait.is_zero();
    }
    assert!(
        any_waited,
        "with one worker, queued jobs must observe a nonzero queue wait"
    );
    service.shutdown();
}
