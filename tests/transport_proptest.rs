//! Property tests of the transport framing layer: random valid frames
//! streamed over a *real* unix socketpair — in one piece or dribbled
//! through partial writes — must round-trip bit-exactly (NaN payloads,
//! signed zeros and subnormal amplitudes included), while every
//! mid-byte truncation and every single-byte corruption of the
//! enveloped bytes must surface as a typed [`TransportError`] /
//! [`WireError`] — never a panic, never a hang, never a silently
//! different frame.

use std::io::{Cursor, Write};
use std::time::Duration;

use mdq::engine::{ErrorFrame, Frame, PrepareRequest, Priority, RequestFrame, StatePayload};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::transport::{
    checksum, write_frame, Fault, FaultyStream, FrameReader, TransportError, WireStream,
};
use proptest::prelude::*;

/// Arbitrary `f64` bit patterns: uniform `u64`s reinterpreted, so NaN
/// payloads, ±inf, subnormals and signed zeros all occur.
fn raw_f64() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(f64::from_bits)
}

fn arb_dims() -> impl Strategy<Value = Dims> {
    proptest::collection::vec(2usize..5, 1..4).prop_map(|v| Dims::new(v).unwrap())
}

fn arb_payload() -> impl Strategy<Value = StatePayload> {
    let dense = proptest::collection::vec((raw_f64(), raw_f64()), 0..9).prop_map(|amps| {
        StatePayload::Dense(
            amps.into_iter()
                .map(|(re, im)| Complex::new(re, im))
                .collect(),
        )
    });
    let sparse = proptest::collection::vec(
        (
            proptest::collection::vec(0usize..6, 0..4),
            raw_f64(),
            raw_f64(),
        ),
        0..6,
    )
    .prop_map(|entries| {
        StatePayload::Sparse(
            entries
                .into_iter()
                .map(|(digits, re, im)| (digits, Complex::new(re, im)))
                .collect(),
        )
    });
    (0u8..2, dense, sparse).prop_map(|(pick, dense, sparse)| match pick {
        0 => dense,
        _ => sparse,
    })
}

fn arb_request_frame() -> impl Strategy<Value = RequestFrame> {
    (arb_dims(), arb_payload(), 0u8..3, (0u8..2, 0u64..u64::MAX)).prop_map(
        |(dims, payload, priority, (has_tenant, tenant))| RequestFrame {
            tenant: (has_tenant == 1).then_some(tenant),
            request: PrepareRequest {
                dims,
                payload,
                options: mdq::core::PrepareOptions::exact(),
                priority: match priority {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                },
            },
        },
    )
}

fn arb_error_frame() -> impl Strategy<Value = ErrorFrame> {
    (
        0u8..8,
        0u64..u64::MAX,
        0u64..u64::MAX,
        proptest::collection::vec(0u8..95, 0..30),
    )
        .prop_map(|(kind, a, b, message)| {
            let message: String = message.into_iter().map(|c| (b' ' + c) as char).collect();
            match kind {
                0 => ErrorFrame::Prepare { message },
                1 => ErrorFrame::Shutdown,
                2 => ErrorFrame::QueueClosed,
                3 => ErrorFrame::QueueFull {
                    depth: a as usize % 1000,
                    limit: b as usize % 1000,
                },
                4 => ErrorFrame::VerificationFailed {
                    fidelity: a,
                    threshold: b,
                },
                5 => ErrorFrame::NoShards,
                6 => ErrorFrame::BadFrame { message },
                _ => ErrorFrame::TenantOverQuota {
                    tenant: a,
                    in_flight: b as usize % 1000,
                    limit: b as usize % 1000 + 1,
                },
            }
        })
}

/// The frame's enveloped wire bytes.
fn enveloped(frame: &Frame) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, frame).expect("request frames always serialize");
    bytes
}

/// A socketpair with deadlines on both ends, so no assertion failure
/// can ever turn into a hung test.
fn bounded_pair() -> (WireStream, WireStream) {
    let (a, b) = WireStream::pair().expect("socketpair");
    let deadline = Some(Duration::from_secs(5));
    a.set_timeouts(deadline, deadline).expect("timeouts");
    b.set_timeouts(deadline, deadline).expect("timeouts");
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A batch of random frames written to one end of a real socketpair
    /// — whole, then again dribbled through 1–7-byte partial writes —
    /// arrives as the byte-identical frame texts, which parse back to
    /// the byte-identical serialization. Raw-bit amplitudes ride along,
    /// so NaN/−0.0/subnormal round-tripping is part of the property.
    #[test]
    fn prop_frames_round_trip_bit_exactly_over_socketpair(
        request in arb_request_frame(),
        error in arb_error_frame(),
        chunk in 1usize..8,
    ) {
        let frames = [Frame::Request(request), Frame::Error(error)];
        let texts: Vec<String> = frames.iter().map(|f| f.to_text().unwrap()).collect();

        // One piece.
        let (mut writer, mut socket_reader) = bounded_pair();
        for frame in &frames {
            write_frame(&mut writer, frame).expect("write side is healthy");
        }
        drop(writer);
        let mut reader = FrameReader::new(1 << 20);
        for expected in &texts {
            let got = reader
                .read_frame(&mut socket_reader)
                .expect("healthy stream")
                .expect("frame arrives");
            prop_assert_eq!(&got, expected);
            let reparsed = Frame::parse(&got).expect("delivered frames parse");
            prop_assert_eq!(reparsed.to_text().unwrap(), got);
        }
        let eof = reader.read_frame(&mut socket_reader).expect("clean EOF");
        prop_assert!(eof.is_none(), "stream must end cleanly");

        // Dribbled: same bytes, worst-case fragmentation. The reader
        // runs concurrently — a unix socket charges each tiny write a
        // whole skb of send-buffer accounting, so hundreds of 1-byte
        // writes into an undrained socket would fill it.
        let (writer, mut socket_reader) = bounded_pair();
        let writer = FaultyStream::new(writer, vec![Fault::ChunkWrites { max: chunk }]);
        let thread_frames = frames.clone();
        let handle = std::thread::spawn(move || {
            let mut writer = writer;
            for frame in &thread_frames {
                write_frame(&mut writer, frame).expect("chunked write side is healthy");
            }
        });
        let mut reader = FrameReader::new(1 << 20);
        for expected in &texts {
            let got = reader
                .read_frame(&mut socket_reader)
                .expect("healthy stream")
                .expect("frame arrives");
            prop_assert_eq!(&got, expected);
        }
        handle.join().expect("writer thread");
    }

    /// Every mid-byte truncation of an enveloped frame is a typed
    /// error. Exhaustive over all cut points via an EOF-at-cut stream,
    /// plus one cut through a real socketpair (the writer's connection
    /// dies mid-frame) to pin the live-socket path.
    #[test]
    fn prop_every_truncation_fails_typed(
        request in arb_request_frame(),
        cut_fraction in 0.0..1.0f64,
    ) {
        let frame = Frame::Request(request);
        let bytes = enveloped(&frame);

        for cut in 0..bytes.len() {
            let mut reader = FrameReader::new(1 << 20);
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            let outcome = reader.read_frame(&mut cursor);
            let typed = matches!(
                outcome,
                Err(TransportError::ConnectionClosed | TransportError::BadEnvelope { .. })
            );
            let clean_empty = cut == 0 && matches!(outcome, Ok(None));
            prop_assert!(typed || clean_empty, "cut must fail typed");
        }

        // The same contract over a real socket: cut the writer mid-frame.
        let cut = 1 + ((bytes.len() - 2) as f64 * cut_fraction) as u64;
        let (writer, mut socket_reader) = bounded_pair();
        let mut writer = FaultyStream::new(writer, vec![Fault::CutWriteAfter { bytes: cut }]);
        let write_outcome = write_frame(&mut writer, &frame);
        prop_assert!(write_outcome.is_err(), "the cut writer must see its pipe break");
        let mut reader = FrameReader::new(1 << 20);
        let read_outcome = reader.read_frame(&mut socket_reader);
        let ok = matches!(
            read_outcome,
            Err(TransportError::ConnectionClosed) | Ok(None)
        );
        prop_assert!(ok, "the reader must see a typed mid-frame EOF");
    }

    /// Flipping any single byte of the enveloped bytes — header or
    /// payload, any mask — yields a typed error, never a panic and
    /// never a silently different frame: the payload is checksummed,
    /// and the envelope grammar is canonical (lowercase hex, no leading
    /// zeros), so even value-preserving re-encodings of the header are
    /// refused.
    #[test]
    fn prop_every_single_byte_corruption_fails_typed(
        request in arb_request_frame(),
        at_fraction in 0.0..1.0f64,
        xor in 0u8..255,
    ) {
        let xor = xor + 1; // 1..=255: a zero mask would be a no-op
        let bytes = enveloped(&Frame::Request(request));
        let at = ((bytes.len() - 1) as f64 * at_fraction) as usize;
        let mut corrupt = bytes.clone();
        corrupt[at] ^= xor;
        let mut reader = FrameReader::new(1 << 20);
        let mut cursor = Cursor::new(corrupt);
        let outcome = reader.read_frame(&mut cursor);
        let typed = matches!(
            outcome,
            Err(TransportError::ChecksumMismatch { .. }
                | TransportError::BadEnvelope { .. }
                | TransportError::FrameTooLarge { .. }
                | TransportError::ConnectionClosed)
        );
        prop_assert!(typed, "corruption must fail typed, not parse");

        // Same flip pushed through a real socketpair via the fault
        // injector — the live-socket read path agrees with the cursor.
        let (writer, mut socket_reader) = bounded_pair();
        let mut writer = FaultyStream::new(
            writer,
            vec![Fault::CorruptWrite { at: at as u64, xor }],
        );
        writer.write_all(&bytes).expect("socket write");
        drop(writer);
        let mut reader = FrameReader::new(1 << 20);
        let socket_outcome = reader.read_frame(&mut socket_reader);
        let socket_typed = matches!(
            socket_outcome,
            Err(TransportError::ChecksumMismatch { .. }
                | TransportError::BadEnvelope { .. }
                | TransportError::FrameTooLarge { .. }
                | TransportError::ConnectionClosed)
        );
        prop_assert!(socket_typed, "socket corruption must fail typed");
    }
}

/// A peer that dribbles a frame slower than the read deadline is cut
/// off with [`TransportError::Timeout`] — the slow-loris guard — not
/// waited on forever.
#[test]
fn slow_loris_hits_the_read_deadline_typed() {
    let (mut writer, mut socket_reader) = WireStream::pair().expect("socketpair");
    socket_reader
        .set_timeouts(
            Some(Duration::from_millis(80)),
            Some(Duration::from_secs(5)),
        )
        .expect("timeouts");
    // Half an envelope, then silence.
    writer.write_all(b"mdqtx 29 0123").expect("partial header");
    writer.flush().expect("flush");
    let mut reader = FrameReader::new(1 << 20);
    let outcome = reader.read_frame(&mut socket_reader);
    assert!(
        matches!(outcome, Err(TransportError::Timeout)),
        "a stalled peer must resolve to Timeout, got {outcome:?}"
    );
}

/// An envelope declaring a payload beyond the guard is refused before
/// any payload is buffered, over a real socket.
#[test]
fn oversized_declaration_is_refused_over_socket() {
    let (mut writer, mut socket_reader) = bounded_pair();
    let declared = 1 << 30;
    let header = format!(
        "mdqtx {declared} {}\n",
        mdq::circuit::serialize::bits_to_hex(0)
    );
    writer.write_all(header.as_bytes()).expect("header");
    writer.flush().expect("flush");
    let mut reader = FrameReader::new(1 << 20);
    let outcome = reader.read_frame(&mut socket_reader);
    assert!(
        matches!(
            outcome,
            Err(TransportError::FrameTooLarge { declared: d, limit }) if d == declared && limit == 1 << 20
        ),
        "oversized declaration must be typed, got {outcome:?}"
    );
}

/// The checksum in the envelope is the exported [`checksum`]: pin the
/// reference value so the wire format cannot drift silently.
#[test]
fn envelope_checksum_is_fnv1a64() {
    // FNV-1a test vector: the empty input hashes to the offset basis.
    assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
    // And one enveloped frame carries exactly that hash of its payload.
    let frame = Frame::Error(ErrorFrame::Shutdown);
    let text = frame.to_text().expect("serialize");
    let bytes = enveloped(&frame);
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header");
    let header = std::str::from_utf8(&bytes[..header_end]).expect("ascii");
    let expected = format!(
        "mdqtx {} {}",
        text.len(),
        mdq::circuit::serialize::bits_to_hex(checksum(text.as_bytes()))
    );
    assert_eq!(header, expected);
    assert_eq!(&bytes[header_end + 1..], text.as_bytes());
}

/// A reader fed a frame one byte at a time (worst-case arrival) still
/// produces the identical text — and a stalling read fault on the
/// *reply* path resolves typed instead of wedging the reader.
#[test]
fn byte_at_a_time_arrival_reassembles_exactly() {
    let frame = Frame::Error(ErrorFrame::QueueFull { depth: 3, limit: 2 });
    let bytes = enveloped(&frame);
    let (writer, socket_reader) = bounded_pair();
    let writer = FaultyStream::new(writer, vec![Fault::ChunkWrites { max: 1 }]);
    let handle = std::thread::spawn(move || {
        let mut w = writer;
        w.write_all(&bytes).expect("dribble");
        w.flush().expect("flush");
    });
    let mut socket_reader =
        FaultyStream::new(socket_reader, vec![Fault::CutReadAfter { bytes: 1 << 20 }]);
    let mut reader = FrameReader::new(1 << 20);
    let text = reader
        .read_frame(&mut socket_reader)
        .expect("healthy")
        .expect("frame");
    assert_eq!(text, frame.to_text().expect("serialize"));
    handle.join().expect("writer thread");
}
