//! Regenerates the §5 scaling claim: "the synthesis routine has time
//! complexity linear in the number of nodes of the DD" and "performance
//! directly linked to the size of the decision diagram".
//!
//! Run with: `cargo run -p mdq-bench --release --bin scaling`
//!
//! Two series over growing qutrit chains:
//! * dense random states — the DD is the full tree, nodes grow as 3ⁿ;
//! * GHZ states — the DD stays linear in n even as the space grows as 3ⁿ.
//!
//! For both, the reported ns/node ratio stays roughly constant, which is
//! the linearity; GHZ additionally shows the DD size (not the Hilbert-space
//! size) driving the cost.

use std::time::Instant;

use mdq_core::{synthesize, SynthesisOptions};
use mdq_dd::{BuildOptions, StateDd};
use mdq_num::radix::Dims;
use mdq_states::{ghz, random_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Synthesis-time scaling on qutrit chains (release mode recommended)\n");

    println!("-- dense random states (full-tree DDs) --");
    println!(
        "{:>3} {:>9} {:>9} {:>6} {:>12} {:>10}",
        "n", "space", "nodes", "ops/node", "synth", "ns/node"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for n in 2..=9 {
        let dims = Dims::uniform(n, 3).expect("valid register");
        let state = random_state(&dims, RandomKind::ReImUniform, &mut rng);
        let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default())
            .expect("diagram builds");
        report(&dims, &dd);
    }

    println!("\n-- GHZ states (DD linear in n, space exponential) --");
    println!(
        "{:>3} {:>9} {:>9} {:>6} {:>12} {:>10}",
        "n", "space", "nodes", "ops/node", "synth", "ns/node"
    );
    for n in 2..=12 {
        let dims = Dims::uniform(n, 3).expect("valid register");
        let state = ghz(&dims);
        let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default())
            .expect("diagram builds");
        report(&dims, &dd);
    }
}

fn report(dims: &Dims, dd: &StateDd) {
    // Time the synthesis alone (the paper's linearity claim is about the
    // traversal, not the O(space) vector read of the construction).
    let reps = if dd.node_count() < 1000 { 100 } else { 5 };
    let t = Instant::now();
    let mut ops = 0;
    for _ in 0..reps {
        let circuit = synthesize(dd, SynthesisOptions::paper());
        ops = circuit.len();
    }
    let per_run = t.elapsed() / reps;
    let nodes = dd.node_count();
    println!(
        "{:>3} {:>9} {:>9} {:>6.1} {:>12?} {:>10.1}",
        dims.len(),
        dims.space_size(),
        nodes,
        ops as f64 / nodes as f64,
        per_run,
        per_run.as_nanos() as f64 / nodes as f64,
    );
}
