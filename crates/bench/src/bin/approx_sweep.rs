//! Regenerates the §4.3 / §5 approximation claim: "approximation decreases
//! the number of operations (and controls) by about 5 % while losing only
//! 1 % fidelity" — generalized to a full threshold sweep.
//!
//! Run with: `cargo run -p mdq-bench --release --bin approx_sweep`

use mdq_bench::{dims5, dims6b, Mean};
use mdq_core::{prepare, PrepareOptions};
use mdq_num::radix::Dims;
use mdq_states::{random_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let runs = 10u64;
    for dims in [dims5(), dims6b()] {
        sweep(&dims, runs);
        println!();
    }
}

fn sweep(dims: &Dims, runs: u64) {
    println!(
        "random states over {dims} ({} amplitudes, {runs} runs per threshold)",
        dims.space_size()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>11} {:>10} {:>9} {:>9}",
        "threshold", "nodes", "ops", "ctrl(med)", "fidelity", "Δops[%]", "Δnodes[%]"
    );

    let mut exact_ops = Mean::default();
    let mut exact_nodes = Mean::default();
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(run);
        let state = random_state(dims, RandomKind::ReImUniform, &mut rng);
        let r = prepare(dims, &state, PrepareOptions::exact()).expect("exact run");
        exact_ops.add(r.report.operations as f64);
        exact_nodes.add(r.report.nodes_initial as f64);
    }
    println!(
        "{:>10} {:>10.1} {:>10.1} {:>11} {:>10} {:>9} {:>9}",
        "exact",
        exact_nodes.value(),
        exact_ops.value(),
        "-",
        "1.0000",
        "-",
        "-"
    );

    for threshold in [0.999, 0.99, 0.98, 0.95, 0.9] {
        let mut nodes = Mean::default();
        let mut ops = Mean::default();
        let mut ctrl = Mean::default();
        let mut fid = Mean::default();
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(run);
            let state = random_state(dims, RandomKind::ReImUniform, &mut rng);
            let r = prepare(dims, &state, PrepareOptions::approximated(threshold))
                .expect("approximated run");
            nodes.add(r.report.nodes_final as f64);
            ops.add(r.report.operations as f64);
            ctrl.add(r.report.controls_median);
            fid.add(r.report.fidelity_bound);
        }
        println!(
            "{:>10.3} {:>10.1} {:>10.1} {:>11.2} {:>10.4} {:>8.1}% {:>8.1}%",
            threshold,
            nodes.value(),
            ops.value(),
            ctrl.value(),
            fid.value(),
            100.0 * (1.0 - ops.value() / exact_ops.value()),
            100.0 * (1.0 - nodes.value() / exact_nodes.value()),
        );
    }
}
