//! Regenerates the "transposable to local and two-qudit operations with
//! linear overhead" claim (§5, citing \[35\], \[36\]): lower every Table 1
//! circuit with the two-qudit transpiler and report the cost.
//!
//! Run with: `cargo run -p mdq-bench --release --bin transpile_cost`

use mdq_bench::{dims3, dims4, Family};
use mdq_circuit::transpile;
use mdq_core::{prepare, PrepareOptions};
use mdq_sim::StateVector;

fn main() {
    println!("Two-qudit lowering of the synthesized circuits\n");
    println!(
        "{:<13} {:<14} {:>7} {:>9} {:>6} {:>9} {:>9} {:>10}",
        "state", "dims", "ops", "two-qudit", "anc", "depth", "depth2q", "fidelity"
    );

    for family in [Family::EmbeddedW, Family::Ghz, Family::W, Family::Random] {
        for dims in [dims3(), dims4()] {
            let target = family.state(&dims, 0);
            let result =
                prepare(&dims, &target, PrepareOptions::exact()).expect("preparation succeeds");
            let lowered = transpile::to_two_qudit(&result.circuit).expect("transpilation succeeds");

            // Verify on the smaller register (dense simulation of the
            // larger one with ancillas is slower but still exact).
            let fidelity = if dims.space_size() <= 64 {
                let ground = StateVector::ground(dims.clone());
                let mut ext = ground.with_ancillas(&vec![2; lowered.ancilla_count]);
                ext.apply_circuit(&lowered.circuit);
                let (reduced, leaked) = ext.without_ancillas(lowered.original_qudits);
                assert!(leaked < 1e-12, "ancilla leakage {leaked}");
                let norm = mdq_num::norm(&target);
                let normalized: Vec<_> = target.iter().map(|x| *x / norm).collect();
                format!("{:.6}", reduced.fidelity_with_amplitudes(&normalized))
            } else {
                "(skipped)".to_owned()
            };

            println!(
                "{:<13} {:<14} {:>7} {:>9} {:>6} {:>9} {:>9} {:>10}",
                family.name(),
                dims.to_string(),
                result.circuit.len(),
                lowered.circuit.len(),
                lowered.ancilla_count,
                result.circuit.depth(),
                lowered.circuit.depth(),
                fidelity
            );
        }
    }

    println!("\nEvery k-controlled operation costs 10k−6 lowered instructions");
    println!("(linear in k, matching the linear-depth result the paper cites).");
}
