//! Regenerates **Table 1** of the paper: every benchmark family × register,
//! averaged over 40 runs, for exact synthesis and approximated synthesis at
//! a 98 % fidelity target.
//!
//! Run with: `cargo run -p mdq-bench --release --bin table1`
//!
//! Flags:
//! * `--runs N`   — number of averaged runs (default 40, as in the paper);
//! * `--verify`   — additionally simulate one circuit per row and print the
//!   measured fidelity (the fidelity column itself is the exact
//!   `1 − pruned mass` bound, which simulation confirms);
//! * `--csv PATH` — also write the rows as CSV.

use std::fmt::Write as _;

use mdq_bench::{flag_value, table1_rows, Config, Mean};
use mdq_core::{prepare, verify::prepared_fidelity, PrepareOptions};

#[derive(Default, Clone)]
struct RowStats {
    nodes: Mean,
    distinct: Mean,
    operations: Mean,
    controls: Mean,
    time_s: Mean,
    fidelity: Mean,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = flag_value(&args, "--runs")
        .map(|v| v.parse().expect("--runs takes an integer"))
        .unwrap_or(40u64);
    let verify = args.iter().any(|a| a == "--verify");
    let csv_path = flag_value(&args, "--csv");

    println!("Regenerating Table 1 ({runs} runs per row, approximation target 0.98)\n");
    println!(
        "{:<13} {:>2} {:<18} | {:>8} {:>9} {:>6} {:>5} {:>8} | {:>8} {:>9} {:>6} {:>5} {:>8} {:>5}",
        "Benchmark",
        "n",
        "Qudits",
        "Nodes",
        "DistinctC",
        "Ops",
        "Ctrl",
        "Time[s]",
        "Nodes",
        "DistinctC",
        "Ops",
        "Ctrl",
        "Time[s]",
        "Fid"
    );
    println!("{}", "-".repeat(132));

    let mut csv = String::from(
        "benchmark,qudits,dims,exact_nodes,exact_distinct,exact_ops,exact_controls,exact_time_s,\
         approx_nodes,approx_distinct,approx_ops,approx_controls,approx_time_s,approx_fidelity\n",
    );

    for config in table1_rows() {
        let (exact, approx) = run_row(&config, runs, verify);
        println!(
            "{:<13} {:>2} {:<18} | {:>8.1} {:>9.1} {:>6.1} {:>5.1} {:>8.4} | {:>8.1} {:>9.1} {:>6.1} {:>5.2} {:>8.4} {:>5.2}",
            config.family.name(),
            config.dims.len(),
            config.label,
            exact.nodes.value(),
            exact.distinct.value(),
            exact.operations.value(),
            exact.controls.value(),
            exact.time_s.value(),
            approx.nodes.value(),
            approx.distinct.value(),
            approx.operations.value(),
            approx.controls.value(),
            approx.time_s.value(),
            approx.fidelity.value(),
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            config.family.name(),
            config.dims.len(),
            config.label,
            exact.nodes.value(),
            exact.distinct.value(),
            exact.operations.value(),
            exact.controls.value(),
            exact.time_s.value(),
            approx.nodes.value(),
            approx.distinct.value(),
            approx.operations.value(),
            approx.controls.value(),
            approx.time_s.value(),
            approx.fidelity.value(),
        );
    }

    if let Some(path) = csv_path {
        std::fs::write(path, csv).expect("writing CSV");
        println!("\nCSV written to {path}");
    }
}

fn run_row(config: &Config, runs: u64, verify: bool) -> (RowStats, RowStats) {
    let mut exact = RowStats::default();
    let mut approx = RowStats::default();

    // Deterministic families produce the same state every run; still loop
    // to average the timing noise, as the paper does.
    for run in 0..runs {
        let target = config.family.state(&config.dims, run);

        let e = prepare(&config.dims, &target, PrepareOptions::exact())
            .expect("exact preparation succeeds");
        exact.nodes.add(e.report.nodes_initial as f64);
        exact.distinct.add(e.report.distinct_c_initial as f64);
        exact.operations.add(e.report.operations as f64);
        exact.controls.add(e.report.controls_median);
        exact.time_s.add(e.report.time.as_secs_f64());
        exact.fidelity.add(1.0);

        let a = prepare(&config.dims, &target, PrepareOptions::approximated(0.98))
            .expect("approximated preparation succeeds");
        approx.nodes.add(a.report.nodes_final as f64);
        approx.distinct.add(a.report.distinct_c_final as f64);
        approx.operations.add(a.report.operations as f64);
        approx.controls.add(a.report.controls_median);
        approx.time_s.add(a.report.time.as_secs_f64());
        approx.fidelity.add(a.report.fidelity_bound);

        if verify && run == 0 {
            let norm = mdq_num::norm(&target);
            let normalized: Vec<_> = target.iter().map(|x| *x / norm).collect();
            let f_exact = prepared_fidelity(&e.circuit, &normalized);
            let f_approx = prepared_fidelity(&a.circuit, &normalized);
            assert!(
                (f_exact - 1.0).abs() < 1e-9,
                "{} {}: exact fidelity {f_exact}",
                config.family.name(),
                config.label
            );
            assert!(
                (f_approx - a.report.fidelity_bound).abs() < 1e-9,
                "{} {}: measured {f_approx} vs bound {}",
                config.family.name(),
                config.label,
                a.report.fidelity_bound
            );
            eprintln!(
                "verified {} {}: exact fidelity {f_exact:.9}, approximated {f_approx:.9}",
                config.family.name(),
                config.label
            );
        }
    }
    (exact, approx)
}
