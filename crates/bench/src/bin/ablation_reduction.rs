//! Ablation of the §4.3 reduction rules: what do subtree sharing, the
//! tensor-product control elision, single-successor elision, and identity
//! skipping each contribute, per state family?
//!
//! Run with: `cargo run -p mdq-bench --release --bin ablation_reduction`
//!
//! Every synthesized circuit is verified against the simulator, so the
//! table only contains *correct* variants.

use mdq_core::{synthesize, verify::prepared_fidelity, ProductRule, SynthesisOptions};
use mdq_dd::{BuildOptions, StateDd};
use mdq_num::radix::Dims;
use mdq_num::Complex;
use mdq_states::{cyclic, ghz, random_state, uniform, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dims = Dims::new(vec![3, 6, 2]).expect("valid register");
    let mut rng = StdRng::seed_from_u64(99);
    let mut seed = vec![0; dims.len()];
    seed[0] = 1;
    let families: Vec<(&str, Vec<Complex>)> = vec![
        ("uniform", uniform(&dims)),
        ("GHZ", ghz(&dims)),
        ("W", w_state(&dims)),
        ("cyclic", cyclic(&dims, &seed)),
        (
            "random",
            random_state(&dims, RandomKind::ReImUniform, &mut rng),
        ),
    ];

    println!("Reduction-rule ablation over {dims} (ops / Σcontrols, all variants verified)\n");
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>16}",
        "state", "tree", "+share", "+product", "+single+skipId"
    );

    for (name, target) in &families {
        // The unshared tree baseline needs the explicit Table-1 path; the
        // default build is hash-consed (shared) from the start. Synthesis
        // never descends zero branches, so the kept zero subtrees do not
        // change the emitted circuit.
        let tree = StateDd::from_amplitudes(
            &dims,
            target,
            BuildOptions::default().keep_zero_subtrees(true),
        )
        .expect("diagram builds");
        let reduced = tree.reduce();

        let variants = [
            (
                &tree,
                SynthesisOptions {
                    product_rule: ProductRule::Off,
                    ..Default::default()
                },
            ),
            (
                &reduced,
                SynthesisOptions {
                    product_rule: ProductRule::Off,
                    ..Default::default()
                },
            ),
            (&reduced, SynthesisOptions::paper()),
            (
                &reduced,
                SynthesisOptions {
                    product_rule: ProductRule::SharedChildOrSingle,
                    skip_identities: true,
                    ..Default::default()
                },
            ),
        ];

        let mut cells = Vec::new();
        for (dd, opts) in variants {
            let circuit = synthesize(dd, opts);
            let fidelity = prepared_fidelity(&circuit, target);
            assert!(
                (fidelity - 1.0).abs() < 1e-9,
                "{name}: variant lost fidelity ({fidelity})"
            );
            let controls: usize = circuit.iter().map(|i| i.control_count()).sum();
            cells.push(format!("{}/{}", circuit.len(), controls));
        }
        println!(
            "{:<10} {:>16} {:>16} {:>16} {:>16}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!("\ncolumns: tree traversal; shared diagram without elision; paper's");
    println!("tensor-product elision; aggressive single-successor elision plus");
    println!("identity skipping. Each cell is operations/total-controls.");
}
