//! Build/apply wall-time and peak-node benchmark for the hash-consed DD
//! arena, emitting a `table1`-style JSON file (`BENCH_dd.json`) so future
//! changes have a perf trajectory to compare against.
//!
//! Run with: `cargo run -p mdq-bench --release --bin dd_bench`
//!
//! Per workload (GHZ, W, random-sparse on a 20-qudit register, plus the
//! Table-1 `[9,5,6,3]` register) the emitter records:
//!
//! * `build_ns` — mean wall time of `StateDd::from_sparse`;
//! * `apply_ns` — mean wall time of replaying the synthesized preparation
//!   circuit on `|0…0⟩` through one shared arena (`apply_circuit`);
//! * `peak_nodes` — the maximum arena size while applying instruction by
//!   instruction without compaction (the true transient footprint);
//! * `final_nodes` / `operations` — diagram and circuit sizes;
//! * `distinct_weights` / `weight_lookups` / `weight_insertions` — the
//!   weight-table pressure of one build (`ComplexTable` statistics).
//!
//! A `parallel` group additionally builds one dense random state at 1, 2,
//! and 4 build threads (`BuildOptions::build_threads`) and records the
//! mean build time and speedup per thread count — every parallel build is
//! asserted raw-bit identical to the sequential one. Speedups are
//! recorded, never asserted: this binary must stay green on single-core
//! runners.
//!
//! Flags:
//! * `--smoke`    — one iteration per workload (CI keep-alive mode);
//! * `--runs N`   — iterations per workload (default 20);
//! * `--out PATH` — output path (default `BENCH_dd.json`).

use std::fmt::Write as _;
use std::time::Instant;

use mdq_bench::{dims4, flag_value, sparse_bench_dims, sparse_workloads, Mean};
use mdq_core::{prepare_sparse, PrepareOptions};
use mdq_dd::{BuildOptions, StateDd};
use mdq_num::radix::Dims;
use mdq_states::{random_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct WorkloadResult {
    name: String,
    dims: String,
    support: usize,
    build_ns: f64,
    apply_ns: f64,
    peak_nodes: usize,
    final_nodes: usize,
    operations: usize,
    /// Weight-table pressure of one build: distinct canonical weights,
    /// total lookups, and insertions (see `ComplexTableStats`).
    distinct_weights: usize,
    weight_lookups: u64,
    weight_insertions: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let runs: u64 = if smoke {
        1
    } else {
        flag_value(&args, "--runs")
            .map(|v| v.parse().expect("--runs takes an integer"))
            .unwrap_or(20)
    };
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_dd.json");

    println!("DD build/apply benchmark ({runs} runs per workload)\n");
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10} {:>11} {:>6} {:>8} {:>10}",
        "workload",
        "support",
        "build[ns]",
        "apply[ns]",
        "peak",
        "final",
        "ops",
        "weights",
        "wlookups"
    );

    let mut results = Vec::new();
    for dims in [sparse_bench_dims(), dims4()] {
        for (name, entries) in sparse_workloads(&dims) {
            let r = run_workload(name, &dims, &entries, runs);
            println!(
                "{:<22} {:>8} {:>12.0} {:>12.0} {:>10} {:>11} {:>6} {:>8} {:>10}",
                format!("{}/{}", r.name, dims.len()),
                r.support,
                r.build_ns,
                r.apply_ns,
                r.peak_nodes,
                r.final_nodes,
                r.operations,
                r.distinct_weights,
                r.weight_lookups
            );
            results.push(r);
        }
    }

    let parallel = run_parallel_group(smoke, runs);

    let json = emit_json(runs, &results, &parallel);
    std::fs::write(out_path, json).expect("writing benchmark JSON");
    println!("\nJSON written to {out_path}");
}

/// One dense random build at each thread count, raw-bit checked against
/// the single-thread result.
struct ParallelResult {
    threads: usize,
    dims: String,
    space: usize,
    build_ns: f64,
    speedup: f64,
}

fn run_parallel_group(smoke: bool, runs: u64) -> Vec<ParallelResult> {
    // Smoke keeps the register small; the full run uses a ~20k-amplitude
    // register so the split tasks amortize their thread-handout cost.
    let dims = if smoke {
        dims4()
    } else {
        Dims::new(vec![3, 4, 3, 4, 3, 4, 3, 4]).expect("valid register")
    };
    let mut rng = StdRng::seed_from_u64(0x9A2B);
    let target = random_state(&dims, RandomKind::ReImUniform, &mut rng);
    let want = StateDd::from_amplitudes(&dims, &target, BuildOptions::default())
        .expect("sequential reference builds")
        .to_amplitudes();

    println!(
        "\nparallel dense build on {dims} ({} amplitudes):",
        want.len()
    );
    let mut results = Vec::new();
    let mut baseline_ns = 0.0;
    for threads in [1usize, 2, 4] {
        let opts = BuildOptions::default().build_threads(threads);
        let mut mean = Mean::default();
        for _ in 0..runs {
            let t = Instant::now();
            let built = StateDd::from_amplitudes(&dims, &target, opts).expect("diagram builds");
            mean.add(t.elapsed().as_nanos() as f64);
            std::hint::black_box(built);
        }
        let got = StateDd::from_amplitudes(&dims, &target, opts)
            .expect("diagram builds")
            .to_amplitudes();
        assert!(
            want.iter().zip(&got).all(|(a, b)| {
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
            }),
            "{threads}-thread build must be raw-bit identical to sequential"
        );
        if threads == 1 {
            baseline_ns = mean.value();
        }
        let speedup = baseline_ns / mean.value().max(1.0);
        println!(
            "  {threads} thread(s): {:>12.0} ns/build   speedup {speedup:.2}x",
            mean.value()
        );
        results.push(ParallelResult {
            threads,
            dims: dims.to_string(),
            space: want.len(),
            build_ns: mean.value(),
            speedup,
        });
    }
    results
}

fn run_workload(
    name: &str,
    dims: &Dims,
    entries: &[(Vec<usize>, mdq_num::Complex)],
    runs: u64,
) -> WorkloadResult {
    let mut build_ns = Mean::default();
    let mut apply_ns = Mean::default();

    // Reference build + synthesized circuit (outside the timed loops).
    let dd = StateDd::from_sparse(dims, entries, BuildOptions::default()).expect("diagram builds");
    let result = prepare_sparse(dims, entries, PrepareOptions::exact()).expect("pipeline runs");
    let circuit = result.circuit;

    for _ in 0..runs {
        let t = Instant::now();
        let built =
            StateDd::from_sparse(dims, entries, BuildOptions::default()).expect("diagram builds");
        build_ns.add(t.elapsed().as_nanos() as f64);
        std::hint::black_box(built);

        let ground = StateDd::ground(dims);
        let t = Instant::now();
        let applied = ground.apply_circuit(&circuit).expect("circuit applies");
        apply_ns.add(t.elapsed().as_nanos() as f64);
        std::hint::black_box(applied);
    }

    // Peak transient footprint: apply without compaction, watching the
    // arena grow instruction by instruction.
    let mut state = StateDd::ground(dims);
    let mut peak = state.arena().len();
    for instr in circuit.iter() {
        state.apply_mut(instr).expect("instruction applies");
        peak = peak.max(state.arena().len());
    }

    let weights = dd.arena().weight_stats();
    WorkloadResult {
        name: name.to_owned(),
        dims: dims.to_string(),
        support: entries.len(),
        build_ns: build_ns.value(),
        apply_ns: apply_ns.value(),
        peak_nodes: peak,
        final_nodes: dd.node_count(),
        operations: circuit.len(),
        distinct_weights: weights.len,
        weight_lookups: weights.lookups,
        weight_insertions: weights.insertions,
    }
}

fn emit_json(runs: u64, results: &[WorkloadResult], parallel: &[ParallelResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"mdq-dd-bench-v1\",");
    let _ = writeln!(out, "  \"runs\": {runs},");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"dims\": \"{}\", \"support\": {}, \
             \"build_ns\": {:.0}, \"apply_ns\": {:.0}, \"peak_nodes\": {}, \
             \"final_nodes\": {}, \"operations\": {}, \"distinct_weights\": {}, \
             \"weight_lookups\": {}, \"weight_insertions\": {}}}{comma}",
            r.name,
            r.dims,
            r.support,
            r.build_ns,
            r.apply_ns,
            r.peak_nodes,
            r.final_nodes,
            r.operations,
            r.distinct_weights,
            r.weight_lookups,
            r.weight_insertions
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"parallel\": [\n");
    for (i, r) in parallel.iter().enumerate() {
        let comma = if i + 1 == parallel.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"threads\": {}, \"dims\": \"{}\", \"space\": {}, \
             \"build_ns\": {:.0}, \"speedup\": {:.2}, \"bit_identical\": true}}{comma}",
            r.threads, r.dims, r.space, r.build_ns, r.speedup
        );
    }
    out.push_str("  ]\n}\n");
    out
}
