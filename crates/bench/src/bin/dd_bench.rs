//! Build/apply wall-time and peak-node benchmark for the hash-consed DD
//! arena, emitting a `table1`-style JSON file (`BENCH_dd.json`) so future
//! changes have a perf trajectory to compare against.
//!
//! Run with: `cargo run -p mdq-bench --release --bin dd_bench`
//!
//! Per workload (GHZ, W, random-sparse on a 20-qudit register, plus the
//! Table-1 `[9,5,6,3]` register) the emitter records:
//!
//! * `build_ns` — mean wall time of `StateDd::from_sparse`;
//! * `apply_ns` — mean wall time of replaying the synthesized preparation
//!   circuit on `|0…0⟩` through one shared arena (`apply_circuit`);
//! * `peak_nodes` — the maximum arena size while applying instruction by
//!   instruction without compaction (the true transient footprint);
//! * `final_nodes` / `operations` — diagram and circuit sizes;
//! * `distinct_weights` / `weight_lookups` / `weight_insertions` — the
//!   weight-table pressure of one build (`ComplexTable` statistics).
//!
//! Flags:
//! * `--smoke`    — one iteration per workload (CI keep-alive mode);
//! * `--runs N`   — iterations per workload (default 20);
//! * `--out PATH` — output path (default `BENCH_dd.json`).

use std::fmt::Write as _;
use std::time::Instant;

use mdq_bench::{dims4, flag_value, sparse_bench_dims, sparse_workloads, Mean};
use mdq_core::{prepare_sparse, PrepareOptions};
use mdq_dd::{BuildOptions, StateDd};
use mdq_num::radix::Dims;

struct WorkloadResult {
    name: String,
    dims: String,
    support: usize,
    build_ns: f64,
    apply_ns: f64,
    peak_nodes: usize,
    final_nodes: usize,
    operations: usize,
    /// Weight-table pressure of one build: distinct canonical weights,
    /// total lookups, and insertions (see `ComplexTableStats`).
    distinct_weights: usize,
    weight_lookups: u64,
    weight_insertions: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let runs: u64 = if smoke {
        1
    } else {
        flag_value(&args, "--runs")
            .map(|v| v.parse().expect("--runs takes an integer"))
            .unwrap_or(20)
    };
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_dd.json");

    println!("DD build/apply benchmark ({runs} runs per workload)\n");
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10} {:>11} {:>6} {:>8} {:>10}",
        "workload",
        "support",
        "build[ns]",
        "apply[ns]",
        "peak",
        "final",
        "ops",
        "weights",
        "wlookups"
    );

    let mut results = Vec::new();
    for dims in [sparse_bench_dims(), dims4()] {
        for (name, entries) in sparse_workloads(&dims) {
            let r = run_workload(name, &dims, &entries, runs);
            println!(
                "{:<22} {:>8} {:>12.0} {:>12.0} {:>10} {:>11} {:>6} {:>8} {:>10}",
                format!("{}/{}", r.name, dims.len()),
                r.support,
                r.build_ns,
                r.apply_ns,
                r.peak_nodes,
                r.final_nodes,
                r.operations,
                r.distinct_weights,
                r.weight_lookups
            );
            results.push(r);
        }
    }

    let json = emit_json(runs, &results);
    std::fs::write(out_path, json).expect("writing benchmark JSON");
    println!("\nJSON written to {out_path}");
}

fn run_workload(
    name: &str,
    dims: &Dims,
    entries: &[(Vec<usize>, mdq_num::Complex)],
    runs: u64,
) -> WorkloadResult {
    let mut build_ns = Mean::default();
    let mut apply_ns = Mean::default();

    // Reference build + synthesized circuit (outside the timed loops).
    let dd = StateDd::from_sparse(dims, entries, BuildOptions::default()).expect("diagram builds");
    let result = prepare_sparse(dims, entries, PrepareOptions::exact()).expect("pipeline runs");
    let circuit = result.circuit;

    for _ in 0..runs {
        let t = Instant::now();
        let built =
            StateDd::from_sparse(dims, entries, BuildOptions::default()).expect("diagram builds");
        build_ns.add(t.elapsed().as_nanos() as f64);
        std::hint::black_box(built);

        let ground = StateDd::ground(dims);
        let t = Instant::now();
        let applied = ground.apply_circuit(&circuit).expect("circuit applies");
        apply_ns.add(t.elapsed().as_nanos() as f64);
        std::hint::black_box(applied);
    }

    // Peak transient footprint: apply without compaction, watching the
    // arena grow instruction by instruction.
    let mut state = StateDd::ground(dims);
    let mut peak = state.arena().len();
    for instr in circuit.iter() {
        state.apply_mut(instr).expect("instruction applies");
        peak = peak.max(state.arena().len());
    }

    let weights = dd.arena().weight_stats();
    WorkloadResult {
        name: name.to_owned(),
        dims: dims.to_string(),
        support: entries.len(),
        build_ns: build_ns.value(),
        apply_ns: apply_ns.value(),
        peak_nodes: peak,
        final_nodes: dd.node_count(),
        operations: circuit.len(),
        distinct_weights: weights.len,
        weight_lookups: weights.lookups,
        weight_insertions: weights.insertions,
    }
}

fn emit_json(runs: u64, results: &[WorkloadResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"mdq-dd-bench-v1\",");
    let _ = writeln!(out, "  \"runs\": {runs},");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"dims\": \"{}\", \"support\": {}, \
             \"build_ns\": {:.0}, \"apply_ns\": {:.0}, \"peak_nodes\": {}, \
             \"final_nodes\": {}, \"operations\": {}, \"distinct_weights\": {}, \
             \"weight_lookups\": {}, \"weight_insertions\": {}}}{comma}",
            r.name,
            r.dims,
            r.support,
            r.build_ns,
            r.apply_ns,
            r.peak_nodes,
            r.final_nodes,
            r.operations,
            r.distinct_weights,
            r.weight_lookups,
            r.weight_insertions
        );
    }
    out.push_str("  ]\n}\n");
    out
}
