//! Throughput/latency benchmark for the `mdq-engine` batch-preparation
//! engine, emitting `BENCH_engine.json` so the engine has a perf trajectory
//! to compare against.
//!
//! Run with: `cargo run -p mdq-bench --release --bin engine_bench`
//!
//! A mixed workload (dense GHZ/W on Table-1 registers, sparse GHZ/W and
//! random-sparse states on a 14-qudit register, randomized dense states,
//! exact and 98 %-approximated options) is executed:
//!
//! * **cold**, once per worker count (fresh engine, empty cache) —
//!   `jobs_per_sec` and p50/p99 per-job latency vs. worker count;
//! * **sequentially** through the one-shot `prepare` functions — the
//!   no-engine baseline;
//! * **warm**, resubmitting the whole batch to an already-warm engine —
//!   cache hit counts, warm throughput, and a bit-identical comparison of
//!   every served circuit against the cold run.
//!
//! With `--streaming`, a fourth section runs the mixed small/large
//! workload through the persistent `EngineService` twice — once under the
//! FIFO baseline queue, once under the default size-aware scheduler — and
//! records per-class queue-wait p50/p99 and jobs/sec. Large jobs are
//! submitted ahead of small ones, so the FIFO run exhibits exactly the
//! head-of-line blocking the size-aware policy removes.
//!
//! With `--verify`, two further sections measure the serving-time guards
//! added by the admission-control PR: the whole mixed workload is run once
//! unverified and once under `VerificationPolicy::replay`, reporting the
//! replay-verification overhead (asserted ≤ 2× the unverified serving
//! time), and a one-slot-queue service is flooded through `try_submit` to
//! record the rejection rate and queue high-watermark.
//!
//! With `--warmstart`, a warm-start section measures what the persistent
//! cache snapshot buys a restarted process: a cold service runs the whole
//! mixed workload (paying the pipeline), snapshots its cache to disk, and
//! shuts down; a second service loads the snapshot at construction and
//! replays the same stream. The JSON records the snapshot's entry count
//! and file size, the load time, and cold vs. snapshot-loaded throughput;
//! every snapshot-served circuit is asserted bit-identical to the
//! sequential pipeline, and outside `--smoke` the run asserts the
//! snapshot-loaded service is at least 2× the cold throughput.
//!
//! With `--fairness`, a starvation section measures what wait-time aging
//! buys: two expensive jobs are submitted ahead of a small-job flood on a
//! single size-aware worker, once with aging off (the queued large job
//! pops dead last — the pre-aging starvation baseline) and once with the
//! aging default. Worst-case and p99.9 queue wait over *all* jobs, the
//! starved large class's worst wait, and the small-job p99 land in the
//! JSON; outside `--smoke` the run asserts that aging strictly lowers the
//! starved job's worst-case wait while keeping the small-job p99 within
//! 2× of the no-aging baseline.
//!
//! With `--parbuild`, an intra-job parallelism section measures what
//! `BuildOptions::build_threads` buys a single large job: one dense random
//! state is built directly at 1/2/4 threads (best-of-N wall time, every
//! parallel result asserted raw-bit identical to the sequential build),
//! and a stream of large jobs is served by a one-worker `EngineService`
//! with and without `with_intra_job_threads`, recording the large-job p99
//! serving latency on both sides plus the `parallel_builds` counter.
//! Outside `--smoke`, **and only when the host exposes ≥ 4 cores**, the
//! run asserts the 4-thread build is ≥ 1.8× the sequential one; on
//! smaller hosts (including the 1-core container this repo grows in) the
//! speedups are recorded, never asserted.
//!
//! With `--router`, a sharded-serving section measures what the
//! consistent-hash `mdq-router` front-end costs and buys: the mixed
//! workload is served once by a single direct `EngineService` and once
//! through a router of N one-worker shards (every routed circuit asserted
//! bit-identical to the direct one), then resubmitted to the still-warm
//! router so duplicates land on the shard that already caches them —
//! warm throughput and per-shard hit rates land in the JSON. A synthetic
//! key population is routed before and after a shard joins and leaves,
//! recording the per-shard key spread (max/min) at each topology and the
//! moved-key fraction of each resize (≈ 1/N for a consistent ring, vs.
//! (N−1)/N for naive modulo hashing).
//!
//! Flags:
//! * `--smoke`     — tiny batch, worker counts {1, 2} (CI keep-alive mode);
//! * `--jobs N`    — batch size (default 48);
//! * `--streaming` — additionally run the EngineService queue-wait section;
//! * `--verify`    — additionally run the verification + admission section;
//! * `--warmstart` — additionally run the snapshot warm-start section;
//! * `--fairness`  — additionally run the aging/starvation section;
//! * `--parbuild`  — additionally run the intra-job parallelism section;
//! * `--router`    — additionally run the sharded-serving section;
//! * `--transport` — additionally run the network-serving section: the
//!   mixed workload round-trips through a `WireServer` over a local
//!   socket (unix-domain where available, loopback TCP otherwise) and is
//!   compared, cold and warm, against in-process `Router::submit` —
//!   per-call p50/p99 round-trip latency and the socket tax land in the
//!   JSON, with every served circuit asserted bit-identical;
//! * `--out PATH`  — output path (default `BENCH_engine.json`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use mdq_bench::{dims3, dims4, flag_value};
use mdq_core::{PrepareOptions, VerificationPolicy};
use mdq_engine::{
    Aging, BatchEngine, EngineConfig, EngineService, JobHandle, PrepareRequest, SchedulingPolicy,
};
use mdq_num::radix::Dims;
use mdq_states::{ghz, random_state, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The per-worker-count cold-run measurements.
struct ColdRun {
    workers: usize,
    jobs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Queue-wait measurements of one streaming run under one policy.
struct StreamingRun {
    policy: &'static str,
    jobs_per_sec: f64,
    small_p50_us: f64,
    small_p99_us: f64,
    large_p99_us: f64,
}

/// Queue-wait measurements of one starvation run under one aging setting.
struct FairnessRun {
    aging: &'static str,
    /// Worst queue wait over *all* jobs. In a fully pre-queued batch the
    /// last-popped job always waits ≈ the makespan, so this is reported
    /// for context but stays ~constant across aging settings.
    worst_us: f64,
    p999_us: f64,
    /// Worst queue wait of the large (starvation-prone) class — the
    /// quantity aging actually bounds: with aging off it grows with the
    /// flood length; with aging on it is capped at the decay horizon.
    large_worst_us: f64,
    small_p99_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let streaming = args.iter().any(|a| a == "--streaming");
    let verify = args.iter().any(|a| a == "--verify");
    let warmstart = args.iter().any(|a| a == "--warmstart");
    let fairness = args.iter().any(|a| a == "--fairness");
    let parbuild = args.iter().any(|a| a == "--parbuild");
    let router = args.iter().any(|a| a == "--router");
    let transport = args.iter().any(|a| a == "--transport");
    let jobs: usize = if smoke {
        8
    } else {
        flag_value(&args, "--jobs")
            .map(|v| v.parse().expect("--jobs takes an integer"))
            .unwrap_or(48)
    };
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_engine.json");

    let requests = mixed_workload(jobs);
    println!(
        "engine benchmark: {} jobs (mixed GHZ/W/random, dense+sparse)\n",
        requests.len()
    );

    // Sequential baseline: the one-shot pipeline, no engine, no cache.
    let t = Instant::now();
    for request in &requests {
        request.prepare_sequential().expect("pipeline runs");
    }
    let sequential_jobs_per_sec = requests.len() as f64 / t.elapsed().as_secs_f64();
    println!(
        "{:<28} {:>12.1} jobs/s",
        "sequential baseline", sequential_jobs_per_sec
    );

    let mut cold_runs = Vec::new();
    for &workers in worker_counts {
        let engine = BatchEngine::new(EngineConfig::default().with_workers(workers));
        let t = Instant::now();
        let results = engine.run(&requests);
        let wall = t.elapsed();
        let mut latencies: Vec<Duration> = results
            .iter()
            .map(|r| r.as_ref().expect("job succeeds").elapsed)
            .collect();
        latencies.sort_unstable();
        let run = ColdRun {
            workers,
            jobs_per_sec: requests.len() as f64 / wall.as_secs_f64(),
            p50_us: percentile_us(&latencies, 0.50),
            p99_us: percentile_us(&latencies, 0.99),
        };
        println!(
            "{:<28} {:>12.1} jobs/s   p50 {:>8.0} µs   p99 {:>8.0} µs",
            format!("cold, {workers} worker(s)"),
            run.jobs_per_sec,
            run.p50_us,
            run.p99_us
        );
        cold_runs.push(run);
    }

    // Warm resubmission: same engine, same batch, twice — the second pass is
    // served entirely from the fingerprint cache and must be bit-identical.
    let engine =
        BatchEngine::new(EngineConfig::default().with_workers(*worker_counts.last().unwrap()));
    let cold = engine.run(&requests);
    let t = Instant::now();
    let warm = engine.run(&requests);
    let warm_wall = t.elapsed();
    let mut identical = true;
    let mut warm_hits = 0u64;
    for (c, w) in cold.iter().zip(&warm) {
        let (c, w) = (
            c.as_ref().expect("cold job succeeds"),
            w.as_ref().expect("warm job succeeds"),
        );
        identical &= c.circuit == w.circuit;
        warm_hits += u64::from(w.from_cache);
    }
    let stats = engine.stats();
    let warm_jobs_per_sec = requests.len() as f64 / warm_wall.as_secs_f64();
    println!(
        "{:<28} {:>12.1} jobs/s   {} hits / {} jobs, bit-identical: {}",
        "warm (cache replay)",
        warm_jobs_per_sec,
        warm_hits,
        requests.len(),
        identical
    );
    assert!(warm_hits > 0, "warm resubmission must hit the cache");
    assert!(identical, "cache replays must be bit-identical");

    let speedup = cold_runs.last().unwrap().jobs_per_sec / cold_runs[0].jobs_per_sec;
    println!(
        "\nthroughput at {} workers vs 1: {:.2}x (hardware: {} core(s) visible)",
        cold_runs.last().unwrap().workers,
        speedup,
        std::thread::available_parallelism().map_or(1, usize::from)
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"mdq-engine-bench-v1\",");
    let _ = writeln!(out, "  \"jobs\": {},", requests.len());
    let _ = writeln!(
        out,
        "  \"visible_cores\": {},",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    let _ = writeln!(
        out,
        "  \"sequential_jobs_per_sec\": {sequential_jobs_per_sec:.1},"
    );
    out.push_str("  \"worker_counts\": [\n");
    for (i, run) in cold_runs.iter().enumerate() {
        let comma = if i + 1 == cold_runs.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"workers\": {}, \"jobs_per_sec\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}}}{comma}",
            run.workers, run.jobs_per_sec, run.p50_us, run.p99_us
        );
    }
    out.push_str("  ],\n");
    let comma = if parbuild || warmstart || streaming || verify || fairness || router || transport {
        ","
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"evictions\": {}, \
         \"warm_jobs_per_sec\": {warm_jobs_per_sec:.1}, \"bit_identical\": {identical}}}{comma}",
        stats.cache.hits, stats.cache.misses, stats.cache.entries, stats.cache.evictions
    );

    if parbuild {
        let comma = if warmstart || streaming || verify || fairness || router || transport {
            ","
        } else {
            ""
        };
        out.push_str(&run_parbuild(smoke, comma));
    }

    if warmstart {
        let workers = *worker_counts.last().unwrap();
        let snap_path = std::env::temp_dir().join(format!(
            "engine_bench_warmstart_{}.mdqsnap",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&snap_path);

        // Cold pass: a fresh service pays the pipeline for every distinct
        // request, then snapshots its filled cache to disk.
        let cold_service = EngineService::new(EngineConfig::default().with_workers(workers));
        let t = Instant::now();
        for handle in cold_service.submit_batch(requests.iter().cloned()) {
            handle.wait().expect("cold warm-start job succeeds");
        }
        let cold_wall = t.elapsed();
        let snap_stats = cold_service
            .snapshot_to(&snap_path)
            .expect("snapshot saves");
        cold_service.shutdown();

        // Snapshot pass: a restarted service loads the file at
        // construction and replays the identical stream from the cache.
        let warm_service = EngineService::new(
            EngineConfig::default()
                .with_workers(workers)
                .with_warm_start(&snap_path),
        );
        let load = match warm_service.warm_start_load() {
            Some(Ok(load)) => *load,
            other => panic!("warm start failed: {other:?}"),
        };
        assert_eq!(load.skipped, 0, "a fresh snapshot round-trips in full");
        let t = Instant::now();
        let reports: Vec<_> = warm_service
            .submit_batch(requests.iter().cloned())
            .into_iter()
            .map(|handle| handle.wait().expect("snapshot-served job succeeds"))
            .collect();
        let snap_wall = t.elapsed();
        warm_service.shutdown();
        let _ = std::fs::remove_file(&snap_path);

        let snap_hits = reports.iter().filter(|r| r.from_cache).count();
        assert_eq!(
            snap_hits,
            requests.len(),
            "the replayed stream must be served entirely from the snapshot"
        );
        let mut snap_identical = true;
        for (request, report) in requests.iter().zip(&reports) {
            snap_identical &= report.circuit
                == request
                    .prepare_sequential()
                    .expect("sequential reference runs")
                    .circuit;
        }
        assert!(
            snap_identical,
            "snapshot-served circuits must be bit-identical to the sequential pipeline"
        );
        let cold_jobs_per_sec = requests.len() as f64 / cold_wall.as_secs_f64();
        let snap_jobs_per_sec = requests.len() as f64 / snap_wall.as_secs_f64();
        let snap_speedup = snap_jobs_per_sec / cold_jobs_per_sec;
        println!(
            "\nwarm-start section: {} entries, {} bytes on disk, loaded in {:?}",
            snap_stats.entries, snap_stats.bytes, load.duration
        );
        println!(
            "{:<28} {:>12.1} jobs/s\n{:<28} {:>12.1} jobs/s   ({snap_speedup:.1}x cold, \
             {snap_hits}/{} from snapshot, bit-identical: {snap_identical})",
            format!("cold start, {workers} worker(s)"),
            cold_jobs_per_sec,
            "snapshot-loaded",
            snap_jobs_per_sec,
            requests.len()
        );
        if !smoke {
            assert!(
                snap_speedup >= 2.0,
                "a snapshot-loaded service must serve the replayed stream at \
                 least 2x the cold-start throughput (measured {snap_speedup:.2}x)"
            );
        }
        let comma = if streaming || verify || fairness || router || transport {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"warmstart\": {{\"entries\": {}, \"file_bytes\": {}, \
             \"load_ms\": {:.3}, \"loaded\": {}, \"skipped\": {}, \
             \"cold_jobs_per_sec\": {cold_jobs_per_sec:.1}, \
             \"snapshot_jobs_per_sec\": {snap_jobs_per_sec:.1}, \
             \"speedup\": {snap_speedup:.2}, \"bit_identical\": {snap_identical}}}{comma}",
            snap_stats.entries,
            snap_stats.bytes,
            load.duration.as_secs_f64() * 1e3,
            load.loaded,
            load.skipped
        );
    }

    if streaming {
        let (small_jobs, large_jobs) = if smoke { (8, 2) } else { (48, 6) };
        println!(
            "\nstreaming section: {large_jobs} large + {small_jobs} small jobs, \
             1 worker, large submitted first"
        );
        let runs = [
            run_streaming(SchedulingPolicy::Fifo, "fifo", small_jobs, large_jobs),
            run_streaming(
                SchedulingPolicy::SizeAware,
                "size_aware",
                small_jobs,
                large_jobs,
            ),
        ];
        for run in &runs {
            println!(
                "{:<28} {:>12.1} jobs/s   small queue-wait p50 {:>9.0} µs  p99 {:>9.0} µs   \
                 large p99 {:>9.0} µs",
                format!("streaming, {}", run.policy),
                run.jobs_per_sec,
                run.small_p50_us,
                run.small_p99_us,
                run.large_p99_us
            );
        }
        let improvement = runs[0].small_p99_us / runs[1].small_p99_us.max(1.0);
        println!(
            "small-job p99 queue wait: size-aware is {improvement:.1}x below the FIFO baseline"
        );
        if !smoke {
            assert!(
                runs[1].small_p99_us < runs[0].small_p99_us,
                "size-aware scheduling must beat the FIFO baseline on small-job p99 queue wait"
            );
        }
        out.push_str("  \"streaming\": {\n");
        let _ = writeln!(
            out,
            "    \"small_jobs\": {small_jobs}, \"large_jobs\": {large_jobs}, \"workers\": 1,"
        );
        for (i, run) in runs.iter().enumerate() {
            let comma = if i + 1 == runs.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"jobs_per_sec\": {:.1}, \"small_queue_wait_p50_us\": {:.1}, \
                 \"small_queue_wait_p99_us\": {:.1}, \"large_queue_wait_p99_us\": {:.1}}}{comma}",
                run.policy, run.jobs_per_sec, run.small_p50_us, run.small_p99_us, run.large_p99_us
            );
        }
        out.push_str("  }");
        out.push_str(if verify || fairness || router || transport {
            ",\n"
        } else {
            "\n"
        });
    }

    if verify {
        // Verification overhead: the same workload, unverified vs. under a
        // replay policy, on a cache-less single worker so every job pays
        // the pipeline (and, in the second pass, the replay). The 0.95
        // floor passes every job — including the 98 %-approximated ones,
        // which verify at their reached fidelity of ≈0.99.
        // Serving time is the sum of per-job worker times (excludes thread
        // spawning and queue overhead) over three repetitions of the
        // workload; passes are interleaved and the best of five is taken
        // on each side, keeping the ratio stable against noise on shared
        // CI hardware.
        let verified_requests: Vec<PrepareRequest> = requests
            .iter()
            .cloned()
            .map(|r| r.with_verification(VerificationPolicy::replay(0.95)))
            .collect();
        let run_once = |requests: &[PrepareRequest]| -> Duration {
            let engine = BatchEngine::new(EngineConfig::default().with_workers(1).without_cache());
            (0..3)
                .flat_map(|_| engine.run(requests))
                .map(|result| result.expect("verification workload succeeds").elapsed)
                .sum()
        };
        let (mut plain, mut verified) = (Duration::MAX, Duration::MAX);
        let mut overhead = f64::INFINITY;
        for _ in 0..5 {
            // Adjacent passes see the same machine load, so the per-pass
            // ratio is robust against common-mode noise; the best pair is
            // the measured overhead.
            let p = run_once(&requests);
            let v = run_once(&verified_requests);
            let ratio = v.as_secs_f64() / p.as_secs_f64().max(f64::MIN_POSITIVE);
            if ratio < overhead {
                overhead = ratio;
                plain = p;
                verified = v;
            }
        }
        println!(
            "\nverification: unverified {:?}, verified {:?} → overhead {overhead:.2}x",
            plain, verified
        );
        assert!(
            overhead <= 2.0,
            "replay verification must cost at most 2x the unverified serving \
             time (measured {overhead:.2}x)"
        );

        // Admission under flood: one worker pinned on an expensive job, a
        // one-slot queue, and a burst of non-blocking submissions — the
        // rejection rate and high watermark land in the JSON.
        let service = EngineService::new(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_depth(1)
                .without_cache(),
        );
        let d_large = dims4();
        let mut rng = StdRng::seed_from_u64(0xAD_A115);
        let busy = service.submit(PrepareRequest::dense(
            d_large.clone(),
            random_state(&d_large, RandomKind::ReImUniform, &mut rng),
            PrepareOptions::exact(),
        ));
        // Let the worker pick the pinned job up, so the burst races a busy
        // worker (one admission, then rejections) rather than a full queue.
        while service.stats().queued > 0 {
            std::thread::yield_now();
        }
        let d_small = dims3();
        let cheap = PrepareRequest::dense(d_small.clone(), ghz(&d_small), PrepareOptions::exact());
        let burst = if smoke { 64 } else { 512 };
        let mut admitted = Vec::new();
        for _ in 0..burst {
            if let Ok(handle) = service.try_submit(cheap.clone()) {
                admitted.push(handle);
            }
        }
        busy.wait().expect("pinned job completes");
        for handle in admitted {
            handle.wait().expect("admitted burst job completes");
        }
        let stats = service.stats();
        let rejection_rate = stats.rejected as f64 / burst as f64;
        println!(
            "admission flood: {} submissions, {} rejected ({:.0}% shed), \
             high watermark {}",
            burst,
            stats.rejected,
            rejection_rate * 100.0,
            stats.high_watermark
        );
        service.shutdown();

        out.push_str("  \"verification\": {\n");
        let _ = writeln!(
            out,
            "    \"unverified_ms\": {:.3}, \"verified_ms\": {:.3}, \
             \"overhead_ratio\": {overhead:.3}",
            plain.as_secs_f64() * 1e3,
            verified.as_secs_f64() * 1e3
        );
        out.push_str("  },\n");
        let comma = if fairness || router || transport {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"admission\": {{\"queue_depth\": 1, \"burst\": {burst}, \
             \"rejected\": {}, \"rejection_rate\": {rejection_rate:.3}, \
             \"high_watermark\": {}}}{comma}",
            stats.rejected, stats.high_watermark
        );
    }

    if fairness {
        let (small_jobs, large_jobs) = if smoke { (16, 2) } else { (1000, 2) };
        // Interleaved repetitions with a per-metric median keep the
        // comparison stable against load spikes on shared CI hardware
        // (the same approach the verification section takes).
        let reps = if smoke { 1 } else { 3 };
        println!(
            "\nfairness section: {large_jobs} large ahead of {small_jobs} small jobs, \
             1 size-aware worker, aging off vs on (median of {reps})"
        );
        let epoch = Duration::from_micros(500);
        let (mut off_reps, mut on_reps) = (Vec::new(), Vec::new());
        for _ in 0..reps {
            off_reps.push(run_fairness(
                Aging::Off,
                "aging_off",
                small_jobs,
                large_jobs,
            ));
            on_reps.push(run_fairness(
                Aging::HalveEvery(epoch),
                "aging_on",
                small_jobs,
                large_jobs,
            ));
        }
        let runs = [median_fairness(off_reps), median_fairness(on_reps)];
        for run in &runs {
            println!(
                "{:<28} worst queue-wait {:>9.0} µs   p99.9 {:>9.0} µs   \
                 starved-large worst {:>9.0} µs   small p99 {:>9.0} µs",
                format!("fairness, {}", run.aging),
                run.worst_us,
                run.p999_us,
                run.large_worst_us,
                run.small_p99_us
            );
        }
        println!(
            "starved-large worst queue wait: aging cuts it {:.1}x; \
             small-job p99 at {:.2}x the no-aging baseline",
            runs[0].large_worst_us / runs[1].large_worst_us.max(1.0),
            runs[1].small_p99_us / runs[0].small_p99_us.max(1.0)
        );
        if !smoke {
            assert!(
                runs[1].large_worst_us < runs[0].large_worst_us,
                "aging must lower the starved large job's worst queue wait below \
                 the no-aging baseline ({:.0} µs vs {:.0} µs)",
                runs[1].large_worst_us,
                runs[0].large_worst_us
            );
            assert!(
                runs[1].small_p99_us <= 2.0 * runs[0].small_p99_us,
                "aging must keep the small-job p99 queue wait within 2x the \
                 no-aging baseline ({:.0} µs vs {:.0} µs)",
                runs[1].small_p99_us,
                runs[0].small_p99_us
            );
        }
        out.push_str("  \"fairness\": {\n");
        let _ = writeln!(
            out,
            "    \"small_jobs\": {small_jobs}, \"large_jobs\": {large_jobs}, \
             \"workers\": 1, \"aging_epoch_us\": {}, \"repetitions\": {reps},",
            epoch.as_micros()
        );
        for (i, run) in runs.iter().enumerate() {
            let comma = if i + 1 == runs.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"worst_queue_wait_us\": {:.1}, \
                 \"queue_wait_p999_us\": {:.1}, \"large_worst_queue_wait_us\": {:.1}, \
                 \"small_queue_wait_p99_us\": {:.1}}}{comma}",
                run.aging, run.worst_us, run.p999_us, run.large_worst_us, run.small_p99_us
            );
        }
        out.push_str(if router || transport {
            "  },\n"
        } else {
            "  }\n"
        });
    }

    if router {
        out.push_str(&run_router(
            smoke,
            &requests,
            if transport { "," } else { "" },
        ));
    }

    if transport {
        out.push_str(&run_transport(smoke, &requests));
    }

    out.push_str("}\n");
    std::fs::write(out_path, out).expect("writing benchmark JSON");
    println!("JSON written to {out_path}");
}

/// The `--parbuild` section: direct 1/2/4-thread build times on one large
/// dense state (raw-bit checked against sequential), then large-job p99
/// serving latency through a one-worker service with and without
/// intra-job threads. Returns the section's JSON fragment, terminated by
/// `comma`.
fn run_parbuild(smoke: bool, comma: &str) -> String {
    use mdq_dd::{BuildOptions, StateDd};

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // Smoke keeps the state small; the full run uses ~20k amplitudes so
    // the split tasks dominate the thread-handout overhead.
    let build_dims = if smoke {
        dims4()
    } else {
        Dims::new(vec![3, 4, 3, 4, 3, 4, 3, 4]).expect("valid register")
    };
    let mut rng = StdRng::seed_from_u64(0x9A2B);
    let target = random_state(&build_dims, RandomKind::ReImUniform, &mut rng);
    let want = StateDd::from_amplitudes(&build_dims, &target, BuildOptions::default())
        .expect("sequential reference builds")
        .to_amplitudes();
    println!(
        "\nparbuild section: {} amplitudes on {build_dims}, {} core(s) visible",
        want.len(),
        cores
    );

    let reps = if smoke { 2 } else { 7 };
    let mut build_rows = Vec::new();
    let mut baseline = Duration::MAX;
    for threads in [1usize, 2, 4] {
        let opts = BuildOptions::default().build_threads(threads);
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let t = Instant::now();
            let built =
                StateDd::from_amplitudes(&build_dims, &target, opts).expect("diagram builds");
            best = best.min(t.elapsed());
            std::hint::black_box(built);
        }
        let got = StateDd::from_amplitudes(&build_dims, &target, opts)
            .expect("diagram builds")
            .to_amplitudes();
        assert!(
            want.iter().zip(&got).all(|(a, b)| {
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
            }),
            "{threads}-thread build must be raw-bit identical to sequential"
        );
        if threads == 1 {
            baseline = best;
        }
        let speedup = baseline.as_secs_f64() / best.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "{:<28} {:>12.0} µs/build   speedup {speedup:.2}x",
            format!("build, {threads} thread(s)"),
            best.as_secs_f64() * 1e6
        );
        build_rows.push((threads, best, speedup));
    }
    let four_thread_speedup = build_rows.last().unwrap().2;
    if !smoke && cores >= 4 {
        assert!(
            four_thread_speedup >= 1.8,
            "on a {cores}-core host the 4-thread build must reach at least \
             1.8x the sequential build (measured {four_thread_speedup:.2}x)"
        );
    }

    // Large-job serving latency: the same stream of large dense jobs
    // through one worker, sequential builds vs. an intra-job grant of 4.
    let large_jobs = if smoke { 4 } else { 12 };
    let run_stream = |threads: usize| -> (f64, u64) {
        let mut config = EngineConfig::default().with_workers(1).without_cache();
        if threads > 1 {
            config = config.with_intra_job_threads(1, threads);
        }
        let service = EngineService::new(config);
        let requests: Vec<PrepareRequest> = (0..large_jobs)
            .map(|job| {
                let mut rng = StdRng::seed_from_u64(0x1A26E + job as u64);
                PrepareRequest::dense(
                    build_dims.clone(),
                    random_state(&build_dims, RandomKind::ReImUniform, &mut rng),
                    PrepareOptions::exact().without_zero_subtrees(),
                )
            })
            .collect();
        let mut latencies: Vec<Duration> = service
            .submit_batch(requests)
            .into_iter()
            .map(|handle| handle.wait().expect("large job succeeds").elapsed)
            .collect();
        latencies.sort_unstable();
        let parallel_builds = service.stats().parallel_builds;
        service.shutdown();
        (percentile_us(&latencies, 0.99), parallel_builds)
    };
    let (sequential_p99_us, _) = run_stream(1);
    let (parallel_p99_us, parallel_builds) = run_stream(4);
    println!(
        "{:<28} p99 {:>9.0} µs\n{:<28} p99 {:>9.0} µs   ({parallel_builds}/{large_jobs} builds \
         went parallel)",
        "large jobs, sequential", sequential_p99_us, "large jobs, intra-job 4", parallel_p99_us
    );

    let mut out = String::from("  \"parbuild\": {\n");
    let _ = writeln!(
        out,
        "    \"space\": {}, \"visible_cores\": {cores}, \"best_of\": {reps},",
        want.len()
    );
    out.push_str("    \"build\": [\n");
    for (i, (threads, best, speedup)) in build_rows.iter().enumerate() {
        let comma = if i + 1 == build_rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      {{\"threads\": {threads}, \"build_us\": {:.1}, \"speedup\": {speedup:.2}, \
             \"bit_identical\": true}}{comma}",
            best.as_secs_f64() * 1e6
        );
    }
    out.push_str("    ],\n");
    let _ = writeln!(
        out,
        "    \"large_jobs\": {large_jobs}, \"large_p99_sequential_us\": \
         {sequential_p99_us:.1}, \"large_p99_intra_job_us\": {parallel_p99_us:.1}, \
         \"parallel_builds\": {parallel_builds}"
    );
    let _ = writeln!(out, "  }}{comma}");
    out
}

/// The `--router` section: the mixed workload served directly vs. through
/// a consistent-hash router of one-worker shards (bit-identity asserted),
/// a warm resubmission measuring shard-cache hit rates, and a synthetic
/// key population routed across a shard join and a shard leave to record
/// the balance spread and moved-key fractions. The fragment is terminated
/// by `comma`.
fn run_router(smoke: bool, requests: &[PrepareRequest], comma: &str) -> String {
    use mdq_router::{Router, RouterConfig, TenantId};

    let shard_count = if smoke { 2 } else { 4 };
    println!(
        "\nrouter section: {} jobs, direct {shard_count}-worker service vs \
         {shard_count} shards x 1 worker",
        requests.len()
    );

    // Direct baseline: one service holding as many workers as the routed
    // tier has shards, so both sides spend the same worker budget.
    let direct = EngineService::new(EngineConfig::default().with_workers(shard_count));
    let t = Instant::now();
    let direct_reports: Vec<_> = direct
        .submit_batch(requests.to_vec())
        .into_iter()
        .map(|handle| handle.wait().expect("direct job succeeds"))
        .collect();
    let direct_wall = t.elapsed();
    direct.shutdown();
    let direct_jobs_per_sec = requests.len() as f64 / direct_wall.as_secs_f64();
    println!(
        "{:<28} {:>12.1} jobs/s",
        format!("direct, {shard_count} worker(s)"),
        direct_jobs_per_sec
    );

    // Routed cold pass: every circuit must come back raw-bit identical to
    // direct serving — routing is a placement decision, never a result one.
    let router = Router::new(
        RouterConfig::default().with_engine_config(EngineConfig::default().with_workers(1)),
    );
    for id in 0..shard_count {
        router.add_shard(id);
    }
    let tenant = TenantId(0);
    let t = Instant::now();
    let handles: Vec<_> = requests
        .iter()
        .map(|r| {
            router
                .submit(tenant, r.clone())
                .expect("unbounded router admits")
        })
        .collect();
    let routed_reports: Vec<_> = handles
        .into_iter()
        .map(|handle| handle.wait().expect("routed job succeeds"))
        .collect();
    let routed_wall = t.elapsed();
    let identical = direct_reports
        .iter()
        .zip(&routed_reports)
        .all(|(d, r)| d.circuit == r.circuit);
    assert!(
        identical,
        "routed circuits must be bit-identical to direct serving"
    );
    let routed_jobs_per_sec = requests.len() as f64 / routed_wall.as_secs_f64();
    let routed_vs_direct = routed_jobs_per_sec / direct_jobs_per_sec.max(f64::MIN_POSITIVE);
    println!(
        "{:<28} {:>12.1} jobs/s   ({routed_vs_direct:.2}x direct, bit-identical: {identical})",
        format!("routed, {shard_count} shard(s)"),
        routed_jobs_per_sec
    );

    // Warm resubmission: duplicates co-locate by fingerprint, so the
    // second pass is served from the shard caches filled by the first.
    let t = Instant::now();
    let warm: Vec<_> = requests
        .iter()
        .map(|r| {
            router
                .submit(tenant, r.clone())
                .expect("unbounded router admits")
        })
        .map(|handle| handle.wait().expect("warm routed job succeeds"))
        .collect();
    let warm_wall = t.elapsed();
    let warm_hits = warm.iter().filter(|r| r.from_cache).count();
    assert!(warm_hits > 0, "warm resubmission must hit the shard caches");
    let warm_jobs_per_sec = requests.len() as f64 / warm_wall.as_secs_f64();
    let warm_hit_rate = warm_hits as f64 / requests.len() as f64;
    let stats = router.stats();
    println!(
        "{:<28} {:>12.1} jobs/s   {warm_hits} hits / {} jobs",
        "routed warm (shard caches)",
        warm_jobs_per_sec,
        requests.len()
    );

    // Shard balance across resizes: a synthetic key population placed at
    // the starting topology, after a shard joins, and after a shard
    // leaves. A consistent ring moves ≈ 1/N of the keys per resize.
    let keys: usize = if smoke { 512 } else { 4096 };
    let fingerprints: Vec<u64> = (0..keys as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let place = |router: &Router| -> Vec<usize> {
        fingerprints
            .iter()
            .map(|&fp| router.route_fingerprint(fp).expect("ring has shards"))
            .collect()
    };
    let spread = |router: &Router, placement: &[usize]| -> (usize, usize) {
        let per_shard: Vec<usize> = router
            .shards()
            .into_iter()
            .map(|shard| placement.iter().filter(|&&p| p == shard).count())
            .collect();
        (
            per_shard.iter().copied().max().unwrap_or(0),
            per_shard.iter().copied().min().unwrap_or(0),
        )
    };
    let moved =
        |a: &[usize], b: &[usize]| -> usize { a.iter().zip(b).filter(|(x, y)| x != y).count() };

    let initial = place(&router);
    let (initial_max, initial_min) = spread(&router, &initial);
    router.add_shard(shard_count);
    let joined = place(&router);
    let (join_max, join_min) = spread(&router, &joined);
    let moved_join = moved(&initial, &joined);
    router.remove_shard(0);
    let left = place(&router);
    let (leave_max, leave_min) = spread(&router, &left);
    let moved_leave = moved(&joined, &left);
    router.shutdown();
    let join_fraction = moved_join as f64 / keys as f64;
    let leave_fraction = moved_leave as f64 / keys as f64;
    assert!(
        join_fraction < 0.6 && leave_fraction < 0.6,
        "a consistent ring must move ~1/N of the keys per resize, not \
         rehash everything (join {join_fraction:.2}, leave {leave_fraction:.2})"
    );
    println!(
        "shard balance: {keys} keys → max/min {initial_max}/{initial_min}; \
         join moves {moved_join} ({:.1}%), leave moves {moved_leave} ({:.1}%)",
        join_fraction * 100.0,
        leave_fraction * 100.0
    );

    let mut out = String::from("  \"router\": {\n");
    let _ = writeln!(
        out,
        "    \"shards\": {shard_count}, \"jobs\": {},",
        requests.len()
    );
    let _ = writeln!(
        out,
        "    \"direct_jobs_per_sec\": {direct_jobs_per_sec:.1}, \
         \"routed_jobs_per_sec\": {routed_jobs_per_sec:.1}, \
         \"routed_vs_direct\": {routed_vs_direct:.2}, \"bit_identical\": {identical},"
    );
    let _ = writeln!(
        out,
        "    \"warm_jobs_per_sec\": {warm_jobs_per_sec:.1}, \"warm_hits\": {warm_hits}, \
         \"warm_hit_rate\": {warm_hit_rate:.3},"
    );
    out.push_str("    \"shard_hit_rates\": [\n");
    for (i, shard) in stats.shards.iter().enumerate() {
        let comma = if i + 1 == stats.shards.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      {{\"shard\": {}, \"jobs\": {}, \"hit_rate\": {:.3}}}{comma}",
            shard.shard, shard.engine.jobs, shard.hit_rate
        );
    }
    out.push_str("    ],\n");
    out.push_str("    \"balance\": {\n");
    let _ = writeln!(out, "      \"keys\": {keys},");
    let _ = writeln!(
        out,
        "      \"initial\": {{\"shards\": {shard_count}, \"max_keys\": {initial_max}, \
         \"min_keys\": {initial_min}}},"
    );
    let _ = writeln!(
        out,
        "      \"after_join\": {{\"shards\": {}, \"max_keys\": {join_max}, \
         \"min_keys\": {join_min}, \"moved\": {moved_join}, \
         \"moved_fraction\": {join_fraction:.3}}},",
        shard_count + 1
    );
    let _ = writeln!(
        out,
        "      \"after_leave\": {{\"shards\": {shard_count}, \"max_keys\": {leave_max}, \
         \"min_keys\": {leave_min}, \"moved\": {moved_leave}, \
         \"moved_fraction\": {leave_fraction:.3}}}"
    );
    out.push_str("    }\n");
    let _ = writeln!(out, "  }}{comma}");
    out
}

/// The `--transport` section: the mixed workload served once through an
/// in-process two-shard router (one blocking `submit` + `wait` per call,
/// exactly the client's cadence) and once over a local socket through the
/// `mdq-transport` tier — unix-domain where available, loopback TCP
/// otherwise — each side measured cold and then warm (second pass rides
/// the shard caches, isolating protocol overhead from pipeline time).
/// Per-call round-trip p50/p99 and the socket tax (in-process throughput
/// over socket throughput) land in the JSON; every circuit served over
/// the socket is asserted raw-bit identical to its in-process twin.
/// Always the last section, so the fragment carries no trailing comma.
fn run_transport(smoke: bool, requests: &[PrepareRequest]) -> String {
    use mdq_circuit::Circuit;
    use mdq_engine::RequestFrame;
    use mdq_router::{Router, RouterConfig, TenantId};
    use mdq_transport::{
        Backend, ClientConfig, ServerAddr, ServerConfig, ServerReply, WireClient, WireServer,
    };

    let shard_count = 2;
    let make_router = || {
        let router = Router::new(
            RouterConfig::default().with_engine_config(EngineConfig::default().with_workers(1)),
        );
        for id in 0..shard_count {
            router.add_shard(id);
        }
        router
    };
    #[cfg(unix)]
    let (addr, socket_kind, socket_path) = {
        let path =
            std::env::temp_dir().join(format!("mdq_bench_transport_{}.sock", std::process::id()));
        (ServerAddr::unix(&path), "unix", Some(path))
    };
    #[cfg(not(unix))]
    let (addr, socket_kind, socket_path): (ServerAddr, &str, Option<std::path::PathBuf>) =
        (ServerAddr::loopback(), "tcp", None);
    println!(
        "\ntransport section: {} jobs, in-process Router::submit vs mdqwire over {socket_kind}",
        requests.len()
    );

    // In-process baseline: one submit+wait round trip per job — the same
    // cadence the blocking wire client has, so the comparison isolates
    // the envelope/serialize/socket cost rather than pipelining effects.
    let router = make_router();
    let tenant = TenantId(0);
    let run_inproc = || -> (Vec<Circuit>, f64, f64, f64) {
        let mut circuits = Vec::with_capacity(requests.len());
        let mut latencies = Vec::with_capacity(requests.len());
        let t = Instant::now();
        for request in requests {
            let call = Instant::now();
            let report = router
                .submit(tenant, request.clone())
                .expect("unbounded router admits")
                .wait()
                .expect("in-process job succeeds");
            latencies.push(call.elapsed());
            circuits.push(report.circuit);
        }
        let jobs_per_sec = requests.len() as f64 / t.elapsed().as_secs_f64();
        latencies.sort_unstable();
        (
            circuits,
            jobs_per_sec,
            percentile_us(&latencies, 0.50),
            percentile_us(&latencies, 0.99),
        )
    };
    let (inproc_cold, inproc_cold_jps, inproc_cold_p50, inproc_cold_p99) = run_inproc();
    let (_, inproc_warm_jps, inproc_warm_p50, inproc_warm_p99) = run_inproc();
    router.shutdown();
    println!(
        "{:<28} {:>12.1} jobs/s   p50 {:>8.0} µs   p99 {:>8.0} µs",
        "in-process cold", inproc_cold_jps, inproc_cold_p50, inproc_cold_p99
    );
    println!(
        "{:<28} {:>12.1} jobs/s   p50 {:>8.0} µs   p99 {:>8.0} µs",
        "in-process warm", inproc_warm_jps, inproc_warm_p50, inproc_warm_p99
    );

    // Socket tier: the same workload, round-tripped through the real
    // server and blocking client over a local socket.
    let server = WireServer::bind(
        &addr,
        Backend::Router(Box::new(make_router())),
        ServerConfig::new(),
    )
    .expect("local socket binds");
    let mut client = WireClient::connect(server.local_addr().clone(), ClientConfig::new())
        .expect("local client connects");
    let mut run_socket = || -> (Vec<Circuit>, f64, f64, f64) {
        let mut circuits = Vec::with_capacity(requests.len());
        let mut latencies = Vec::with_capacity(requests.len());
        let t = Instant::now();
        for request in requests {
            let frame = RequestFrame {
                tenant: Some(tenant.0),
                request: request.clone(),
            };
            let call = Instant::now();
            let reply = client.call(&frame).expect("local socket stays healthy");
            latencies.push(call.elapsed());
            match reply {
                ServerReply::Report(report) => circuits.push(report.report.circuit),
                ServerReply::Refused(refusal) => panic!("benchmark job refused: {refusal:?}"),
            }
        }
        let jobs_per_sec = requests.len() as f64 / t.elapsed().as_secs_f64();
        latencies.sort_unstable();
        (
            circuits,
            jobs_per_sec,
            percentile_us(&latencies, 0.50),
            percentile_us(&latencies, 0.99),
        )
    };
    let (socket_cold, socket_cold_jps, socket_cold_p50, socket_cold_p99) = run_socket();
    let (socket_warm, socket_warm_jps, socket_warm_p50, socket_warm_p99) = run_socket();
    drop(client);
    server.shutdown();
    if let Some(path) = socket_path {
        let _ = std::fs::remove_file(path);
    }

    let identical = inproc_cold == socket_cold && inproc_cold == socket_warm;
    assert!(
        identical,
        "every circuit served over the socket must be raw-bit identical to \
         in-process serving"
    );
    let tax_cold = inproc_cold_jps / socket_cold_jps.max(f64::MIN_POSITIVE);
    let tax_warm = inproc_warm_jps / socket_warm_jps.max(f64::MIN_POSITIVE);
    println!(
        "{:<28} {:>12.1} jobs/s   p50 {:>8.0} µs   p99 {:>8.0} µs   ({tax_cold:.2}x tax)",
        format!("{socket_kind} socket cold"),
        socket_cold_jps,
        socket_cold_p50,
        socket_cold_p99
    );
    println!(
        "{:<28} {:>12.1} jobs/s   p50 {:>8.0} µs   p99 {:>8.0} µs   ({tax_warm:.2}x tax, bit-identical: {identical})",
        format!("{socket_kind} socket warm"),
        socket_warm_jps,
        socket_warm_p50,
        socket_warm_p99
    );
    if !smoke {
        // The warm pass serves from shard caches on both sides, so the
        // socket tax there is pure protocol overhead — it must stay a
        // constant factor, not an order of magnitude.
        assert!(
            tax_warm < 50.0,
            "warm socket serving must stay within 50x of in-process \
             (measured {tax_warm:.1}x)"
        );
    }

    let mut out = String::from("  \"transport\": {\n");
    let _ = writeln!(
        out,
        "    \"jobs\": {}, \"shards\": {shard_count}, \"socket\": \"{socket_kind}\",",
        requests.len()
    );
    let _ = writeln!(
        out,
        "    \"inprocess\": {{\"cold_jobs_per_sec\": {inproc_cold_jps:.1}, \
         \"cold_p50_us\": {inproc_cold_p50:.1}, \"cold_p99_us\": {inproc_cold_p99:.1}, \
         \"warm_jobs_per_sec\": {inproc_warm_jps:.1}, \
         \"warm_p50_us\": {inproc_warm_p50:.1}, \"warm_p99_us\": {inproc_warm_p99:.1}}},"
    );
    let _ = writeln!(
        out,
        "    \"socket_tier\": {{\"cold_jobs_per_sec\": {socket_cold_jps:.1}, \
         \"cold_p50_us\": {socket_cold_p50:.1}, \"cold_p99_us\": {socket_cold_p99:.1}, \
         \"warm_jobs_per_sec\": {socket_warm_jps:.1}, \
         \"warm_p50_us\": {socket_warm_p50:.1}, \"warm_p99_us\": {socket_warm_p99:.1}}},"
    );
    let _ = writeln!(
        out,
        "    \"socket_tax_cold\": {tax_cold:.2}, \"socket_tax_warm\": {tax_warm:.2}, \
         \"bit_identical\": {identical}"
    );
    out.push_str("  }\n");
    out
}

/// Streams the mixed workload through a persistent `EngineService` under
/// the given policy: the expensive jobs are submitted *first*, so a FIFO
/// queue head-of-line-blocks every small job behind them while the
/// size-aware scheduler lets the small ones leapfrog the still-queued
/// large ones. One worker keeps the comparison deterministic; the cache is
/// off so every job really runs the pipeline.
fn run_streaming(
    policy: SchedulingPolicy,
    name: &'static str,
    small_jobs: usize,
    large_jobs: usize,
) -> StreamingRun {
    let d_large = dims4();
    let d_small = dims3();
    let opts = PrepareOptions::exact().without_zero_subtrees();
    let large: Vec<PrepareRequest> = (0..large_jobs)
        .map(|job| {
            let mut rng = StdRng::seed_from_u64(0x57_4e_a1 + job as u64);
            PrepareRequest::dense(
                d_large.clone(),
                random_state(&d_large, RandomKind::ReImUniform, &mut rng),
                opts,
            )
        })
        .collect();
    let small: Vec<PrepareRequest> =
        vec![PrepareRequest::dense(d_small.clone(), ghz(&d_small), opts); small_jobs];

    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .without_cache()
            .with_scheduling(policy),
    );
    let t = Instant::now();
    let large_handles = service.submit_batch(large);
    let small_handles = service.submit_batch(small);
    let small_waits = harvest_queue_waits(small_handles);
    let large_waits = harvest_queue_waits(large_handles);
    let wall = t.elapsed();
    service.shutdown();

    StreamingRun {
        policy: name,
        jobs_per_sec: (small_jobs + large_jobs) as f64 / wall.as_secs_f64(),
        small_p50_us: percentile_us(&small_waits, 0.50),
        small_p99_us: percentile_us(&small_waits, 0.99),
        large_p99_us: percentile_us(&large_waits, 0.99),
    }
}

/// Runs the starvation workload under one aging setting: two dense random
/// jobs on the 4-qudit Table-1 register (~milliseconds each, estimated
/// cost 810) are submitted *first*, then a flood of GHZ jobs on the
/// 3-qudit register (tens of µs each, cost 36). On one size-aware worker
/// the first large job pins the pool, so with aging off the second large
/// job's frozen key keeps it behind the entire flood — its queue wait
/// grows with the flood length. With aging on, its effective cost decays
/// below the smalls' within ~5 epochs and it pops mid-flood, bounding its
/// wait at the decay horizon. The large jobs are kept much cheaper than
/// the flood's total drain time so the promotion delays only a sliver of
/// the small class — that proportion, not luck, is what keeps the
/// small-job p99 within the asserted 2× of the no-aging baseline.
fn run_fairness(
    aging: Aging,
    name: &'static str,
    small_jobs: usize,
    large_jobs: usize,
) -> FairnessRun {
    let d_large = dims4();
    let d_small = dims3();
    let opts = PrepareOptions::exact().without_zero_subtrees();
    let large: Vec<PrepareRequest> = (0..large_jobs)
        .map(|job| {
            let mut rng = StdRng::seed_from_u64(0xFA_12 + job as u64);
            PrepareRequest::dense(
                d_large.clone(),
                random_state(&d_large, RandomKind::ReImUniform, &mut rng),
                opts,
            )
        })
        .collect();
    let small: Vec<PrepareRequest> =
        vec![PrepareRequest::dense(d_small.clone(), ghz(&d_small), opts); small_jobs];

    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .without_cache()
            .with_scheduling(SchedulingPolicy::SizeAware)
            .with_aging(aging),
    );
    let large_handles = service.submit_batch(large);
    let small_handles = service.submit_batch(small);
    let small_waits = harvest_queue_waits(small_handles);
    let large_waits = harvest_queue_waits(large_handles);
    service.shutdown();

    let mut all_waits = small_waits.clone();
    all_waits.extend_from_slice(&large_waits);
    all_waits.sort_unstable();
    FairnessRun {
        aging: name,
        worst_us: percentile_us(&all_waits, 1.0),
        p999_us: percentile_us(&all_waits, 0.999),
        large_worst_us: percentile_us(&large_waits, 1.0),
        small_p99_us: percentile_us(&small_waits, 0.99),
    }
}

/// Collapses repeated fairness runs of one aging setting into a single
/// row by taking the per-metric median.
fn median_fairness(reps: Vec<FairnessRun>) -> FairnessRun {
    let median = |pick: fn(&FairnessRun) -> f64| -> f64 {
        let mut values: Vec<f64> = reps.iter().map(pick).collect();
        values.sort_unstable_by(f64::total_cmp);
        values[values.len() / 2]
    };
    FairnessRun {
        aging: reps[0].aging,
        worst_us: median(|r| r.worst_us),
        p999_us: median(|r| r.p999_us),
        large_worst_us: median(|r| r.large_worst_us),
        small_p99_us: median(|r| r.small_p99_us),
    }
}

/// Waits for every handle and returns the sorted queue waits.
fn harvest_queue_waits(handles: Vec<JobHandle>) -> Vec<Duration> {
    let mut waits: Vec<Duration> = handles
        .into_iter()
        .map(|handle| handle.wait().expect("streaming job succeeds").queue_wait)
        .collect();
    waits.sort_unstable();
    waits
}

/// `jobs` requests cycling through a mixed template list; randomized
/// templates draw a fresh seed per instance so the cold cache mostly
/// misses, while every 8th job duplicates the first (exercising in-batch
/// hits the way a real request stream repeats popular states).
fn mixed_workload(jobs: usize) -> Vec<PrepareRequest> {
    let d3 = dims3();
    let d4 = dims4();
    let sparse_dims = Dims::new((0..14).map(|i| 2 + (i % 4)).collect()).expect("valid register");
    let exact = PrepareOptions::exact().without_zero_subtrees();
    let approx = PrepareOptions::approximated(0.98).without_zero_subtrees();

    let mut requests = Vec::with_capacity(jobs);
    for job in 0..jobs {
        let mut rng = StdRng::seed_from_u64(0xE1_61_4E + job as u64);
        let request = match job % 8 {
            0 => PrepareRequest::dense(d3.clone(), ghz(&d3), exact),
            1 => PrepareRequest::dense(d3.clone(), w_state(&d3), approx),
            2 => PrepareRequest::sparse(
                sparse_dims.clone(),
                mdq_states::sparse::ghz(&sparse_dims),
                exact,
            ),
            3 => PrepareRequest::dense(
                d3.clone(),
                random_state(&d3, RandomKind::ReImUniform, &mut rng),
                exact,
            ),
            4 => PrepareRequest::sparse(
                sparse_dims.clone(),
                mdq_states::sparse::random_sparse(&sparse_dims, 24, &mut rng),
                exact,
            ),
            5 => PrepareRequest::dense(d4.clone(), w_state(&d4), approx),
            6 => PrepareRequest::sparse(
                sparse_dims.clone(),
                mdq_states::sparse::w_state(&sparse_dims),
                exact,
            ),
            // The repeated popular request of the stream.
            _ => PrepareRequest::dense(d3.clone(), ghz(&d3), exact),
        };
        requests.push(request);
    }
    requests
}

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e6
}
