//! Shared workload definitions and table formatting for the benchmark
//! harness that regenerates every table and figure of the paper.
//!
//! The binaries in `src/bin/` each regenerate one experiment (see
//! `DESIGN.md` §4 for the experiment index):
//!
//! * `table1` — Table 1 (all rows, exact + approximated 98 %);
//! * `scaling` — the §5 claim that synthesis time is linear in DD nodes;
//! * `approx_sweep` — the §4.3 accuracy/size trade-off;
//! * `ablation_reduction` — the §4.3 reduction rules (product-node control
//!   elision, identity skipping);
//! * `transpile_cost` — the "transposable to two-qudit gates" claim.
//!
//! Criterion micro-benchmarks for the individual pipeline stages live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mdq_num::radix::Dims;
use mdq_num::Complex;
use mdq_states::{embedded_w, ghz, random_state, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A benchmark family of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Embedded W state (levels {0,1} of each qudit).
    EmbeddedW,
    /// Mixed-dimensional GHZ state.
    Ghz,
    /// All-levels W state.
    W,
    /// Dense random state (fresh draw per run).
    Random,
}

impl Family {
    /// Display name matching Table 1.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::EmbeddedW => "Emb. W-State",
            Family::Ghz => "GHZ State",
            Family::W => "W-State",
            Family::Random => "Random State",
        }
    }

    /// Generates the target state; `run` seeds the random family so each of
    /// the 40 averaged runs uses a fresh state, reproducibly.
    #[must_use]
    pub fn state(self, dims: &Dims, run: u64) -> Vec<Complex> {
        match self {
            Family::EmbeddedW => embedded_w(dims),
            Family::Ghz => ghz(dims),
            Family::W => w_state(dims),
            Family::Random => {
                let mut rng = StdRng::seed_from_u64(0xD1CE + run);
                random_state(dims, RandomKind::ReImUniform, &mut rng)
            }
        }
    }

    /// Whether the state differs between runs.
    #[must_use]
    pub fn is_randomized(self) -> bool {
        matches!(self, Family::Random)
    }
}

/// One benchmark configuration (a row of Table 1).
#[derive(Debug, Clone)]
pub struct Config {
    /// The benchmark family.
    pub family: Family,
    /// Qudit dimensions (most significant first) — the orderings recovered
    /// from the structural "Nodes" counts of Table 1.
    pub dims: Dims,
    /// The "Qudits" column text of Table 1 (e.g. `[1x3,1x6,1x2]`).
    pub label: &'static str,
}

/// The Table 1 register for 3 qudits.
#[must_use]
pub fn dims3() -> Dims {
    Dims::new(vec![3, 6, 2]).expect("valid register")
}

/// The Table 1 register for 4 qudits.
#[must_use]
pub fn dims4() -> Dims {
    Dims::new(vec![9, 5, 6, 3]).expect("valid register")
}

/// The Table 1 register for 5 qudits (random rows only).
#[must_use]
pub fn dims5() -> Dims {
    Dims::new(vec![6, 6, 5, 3, 3]).expect("valid register")
}

/// The Table 1 register for 6 qudits, variant `[3x5,1x4,2x2]` (random only).
#[must_use]
pub fn dims6a() -> Dims {
    Dims::new(vec![5, 4, 2, 5, 5, 2]).expect("valid register")
}

/// The Table 1 register for 6 qudits, variant `[3x4,1x7,1x3,1x5]`.
#[must_use]
pub fn dims6b() -> Dims {
    Dims::new(vec![4, 7, 4, 4, 3, 5]).expect("valid register")
}

/// All 14 rows of Table 1, in the paper's order.
#[must_use]
pub fn table1_rows() -> Vec<Config> {
    let structured = [Family::EmbeddedW, Family::Ghz, Family::W];
    let mut rows = Vec::new();
    for family in structured {
        rows.push(Config {
            family,
            dims: dims3(),
            label: "[1x3,1x6,1x2]",
        });
        rows.push(Config {
            family,
            dims: dims4(),
            label: "[1x9,1x5,1x6,1x3]",
        });
        rows.push(Config {
            family,
            dims: dims6b(),
            label: "[3x4,1x7,1x3,1x5]",
        });
    }
    rows.push(Config {
        family: Family::Random,
        dims: dims3(),
        label: "[1x3,1x6,1x2]",
    });
    rows.push(Config {
        family: Family::Random,
        dims: dims4(),
        label: "[1x9,1x5,1x6,1x3]",
    });
    rows.push(Config {
        family: Family::Random,
        dims: dims5(),
        label: "[2x6,1x5,2x3]",
    });
    rows.push(Config {
        family: Family::Random,
        dims: dims6a(),
        label: "[3x5,1x4,2x2]",
    });
    rows.push(Config {
        family: Family::Random,
        dims: dims6b(),
        label: "[3x4,1x7,1x3,1x5]",
    });
    rows
}

/// The register used by the sparse build/apply benchmarks: 20 mixed
/// qudits, a Hilbert space of ≈10^10 amplitudes — far beyond dense reach,
/// routine for the arena-backed sparse path.
#[must_use]
pub fn sparse_bench_dims() -> Dims {
    let pattern: Vec<usize> = (0..20).map(|i| 2 + (i % 4)).collect();
    Dims::new(pattern).expect("valid register")
}

/// The three sparse workload families of the DD build/apply benchmarks:
/// GHZ, W, and a seeded random sparse state with 32 support entries.
#[must_use]
pub fn sparse_workloads(dims: &Dims) -> Vec<(&'static str, mdq_states::sparse::SparseState)> {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    vec![
        ("ghz", mdq_states::sparse::ghz(dims)),
        ("w", mdq_states::sparse::w_state(dims)),
        (
            "random_sparse",
            mdq_states::sparse::random_sparse(dims, 32, &mut rng),
        ),
    ]
}

/// Returns the value following `flag` in an argument list (shared CLI
/// helper of the benchmark binaries).
#[must_use]
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Simple running mean.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    sum: f64,
    count: u64,
}

impl Mean {
    /// Adds a sample.
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// The mean of the samples added so far (0 when empty).
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_fourteen_rows() {
        assert_eq!(table1_rows().len(), 14);
    }

    #[test]
    fn structural_nodes_match_table_one() {
        assert_eq!(dims3().full_tree_edge_count(), 58);
        assert_eq!(dims4().full_tree_edge_count(), 1135);
        assert_eq!(dims5().full_tree_edge_count(), 2383);
        assert_eq!(dims6a().full_tree_edge_count(), 3266);
        assert_eq!(dims6b().full_tree_edge_count(), 8657);
    }

    #[test]
    fn random_family_differs_between_runs() {
        let d = dims3();
        let a = Family::Random.state(&d, 0);
        let b = Family::Random.state(&d, 1);
        assert_ne!(a, b);
        let c = Family::Random.state(&d, 0);
        assert_eq!(a, c);
    }

    #[test]
    fn structured_families_are_deterministic() {
        let d = dims3();
        for f in [Family::EmbeddedW, Family::Ghz, Family::W] {
            assert_eq!(f.state(&d, 0), f.state(&d, 5));
            assert!(!f.is_randomized());
        }
    }

    #[test]
    fn mean_averages() {
        let mut m = Mean::default();
        m.add(1.0);
        m.add(3.0);
        assert_eq!(m.value(), 2.0);
        assert_eq!(Mean::default().value(), 0.0);
    }
}
