//! Criterion micro-benchmarks for every stage of the preparation pipeline:
//! diagram construction, approximation, synthesis, end-to-end preparation,
//! and simulation. One group per stage; the `synthesize` group carries the
//! paper's linearity claim (time per run scales with the node counts
//! printed by `--bin scaling`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdq_bench::{dims3, dims4, dims5, Family};
use mdq_core::{prepare, synthesize, PrepareOptions, SynthesisOptions};
use mdq_dd::{BuildOptions, StateDd};
use mdq_sim::StateVector;
use std::hint::black_box;

fn bench_dd_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_build");
    for family in [Family::Ghz, Family::Random] {
        for dims in [dims3(), dims4(), dims5()] {
            let state = family.state(&dims, 0);
            let id = BenchmarkId::new(family.name(), dims.to_string());
            group.bench_with_input(id, &state, |b, state| {
                b.iter(|| {
                    StateDd::from_amplitudes(&dims, black_box(state), BuildOptions::default())
                        .expect("diagram builds")
                });
            });
        }
    }
    group.finish();
}

fn bench_approximate(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximate");
    for dims in [dims4(), dims5()] {
        let state = Family::Random.state(&dims, 0);
        let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default())
            .expect("diagram builds");
        let id = BenchmarkId::new("random_98", dims.to_string());
        group.bench_with_input(id, &dd, |b, dd| {
            b.iter(|| dd.approximate(black_box(0.02)).expect("approximation"));
        });
    }
    group.finish();
}

fn bench_synthesize(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    for family in [Family::Ghz, Family::W, Family::Random] {
        for dims in [dims3(), dims4(), dims5()] {
            let state = family.state(&dims, 0);
            let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default())
                .expect("diagram builds");
            let id = BenchmarkId::new(family.name(), format!("{}/n={}", dims, dd.node_count()));
            group.bench_with_input(id, &dd, |b, dd| {
                b.iter(|| synthesize(black_box(dd), SynthesisOptions::paper()));
            });
        }
    }
    group.finish();
}

fn bench_prepare_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepare_e2e");
    for family in [Family::Ghz, Family::Random] {
        let dims = dims4();
        let state = family.state(&dims, 0);
        group.bench_with_input(
            BenchmarkId::new("exact", family.name()),
            &state,
            |b, state| {
                b.iter(|| prepare(&dims, black_box(state), PrepareOptions::exact()).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("approx98", family.name()),
            &state,
            |b, state| {
                b.iter(|| {
                    prepare(&dims, black_box(state), PrepareOptions::approximated(0.98)).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for family in [Family::Ghz, Family::Random] {
        let dims = dims4();
        let state = family.state(&dims, 0);
        let circuit = prepare(&dims, &state, PrepareOptions::exact())
            .expect("preparation succeeds")
            .circuit;
        let id = BenchmarkId::new(family.name(), dims.to_string());
        group.bench_with_input(id, &circuit, |b, circuit| {
            b.iter(|| {
                let mut sv = StateVector::ground(dims.clone());
                sv.apply_circuit(black_box(circuit));
                sv
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dd_build, bench_approximate, bench_synthesize,
              bench_prepare_end_to_end, bench_simulate
}
criterion_main!(benches);
