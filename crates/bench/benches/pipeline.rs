//! Criterion micro-benchmarks for every stage of the preparation pipeline:
//! diagram construction, approximation, synthesis, end-to-end preparation,
//! and simulation. One group per stage; the `synthesize` group carries the
//! paper's linearity claim (time per run scales with the node counts
//! printed by `--bin scaling`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdq_bench::{dims3, dims4, dims5, sparse_bench_dims, sparse_workloads, Family};
use mdq_core::{prepare, synthesize, PrepareOptions, SynthesisOptions};
use mdq_dd::{BuildOptions, StateDd};
use mdq_sim::StateVector;
use std::hint::black_box;

fn bench_dd_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_build");
    for family in [Family::Ghz, Family::Random] {
        for dims in [dims3(), dims4(), dims5()] {
            let state = family.state(&dims, 0);
            let id = BenchmarkId::new(family.name(), dims.to_string());
            group.bench_with_input(id, &state, |b, state| {
                b.iter(|| {
                    StateDd::from_amplitudes(&dims, black_box(state), BuildOptions::default())
                        .expect("diagram builds")
                });
            });
        }
    }
    group.finish();
}

fn bench_dd_build_sparse(c: &mut Criterion) {
    // Arena-backed sparse construction on a register far beyond dense reach
    // (20 qudits, ≈10^10 amplitudes): cost is linear in the support size.
    let mut group = c.benchmark_group("dd_build_sparse");
    let dims = sparse_bench_dims();
    for (name, entries) in sparse_workloads(&dims) {
        let id = BenchmarkId::new(name, entries.len());
        group.bench_with_input(id, &entries, |b, entries| {
            b.iter(|| {
                StateDd::from_sparse(&dims, black_box(entries), BuildOptions::default())
                    .expect("diagram builds")
            });
        });
    }
    group.finish();
}

fn bench_dd_apply(c: &mut Criterion) {
    // Diagram-level circuit application (the verification path): synthesize
    // each workload's preparation circuit, then replay it on |0…0⟩ through
    // one shared arena.
    let mut group = c.benchmark_group("dd_apply");
    let dims = sparse_bench_dims();
    for (name, entries) in sparse_workloads(&dims) {
        let circuit = mdq_core::prepare_sparse(&dims, &entries, PrepareOptions::exact())
            .expect("preparation succeeds")
            .circuit;
        let ground = StateDd::ground(&dims);
        let id = BenchmarkId::new(name, circuit.len());
        group.bench_with_input(id, &circuit, |b, circuit| {
            b.iter(|| ground.apply_circuit(black_box(circuit)).expect("applies"));
        });
    }
    group.finish();
}

fn bench_approximate(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximate");
    for dims in [dims4(), dims5()] {
        let state = Family::Random.state(&dims, 0);
        let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default())
            .expect("diagram builds");
        let id = BenchmarkId::new("random_98", dims.to_string());
        group.bench_with_input(id, &dd, |b, dd| {
            b.iter(|| dd.approximate(black_box(0.02)).expect("approximation"));
        });
    }
    group.finish();
}

fn bench_synthesize(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    for family in [Family::Ghz, Family::W, Family::Random] {
        for dims in [dims3(), dims4(), dims5()] {
            let state = family.state(&dims, 0);
            let dd = StateDd::from_amplitudes(&dims, &state, BuildOptions::default())
                .expect("diagram builds");
            let id = BenchmarkId::new(family.name(), format!("{}/n={}", dims, dd.node_count()));
            group.bench_with_input(id, &dd, |b, dd| {
                b.iter(|| synthesize(black_box(dd), SynthesisOptions::paper()));
            });
        }
    }
    group.finish();
}

fn bench_prepare_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepare_e2e");
    for family in [Family::Ghz, Family::Random] {
        let dims = dims4();
        let state = family.state(&dims, 0);
        group.bench_with_input(
            BenchmarkId::new("exact", family.name()),
            &state,
            |b, state| {
                b.iter(|| prepare(&dims, black_box(state), PrepareOptions::exact()).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("approx98", family.name()),
            &state,
            |b, state| {
                b.iter(|| {
                    prepare(&dims, black_box(state), PrepareOptions::approximated(0.98)).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for family in [Family::Ghz, Family::Random] {
        let dims = dims4();
        let state = family.state(&dims, 0);
        let circuit = prepare(&dims, &state, PrepareOptions::exact())
            .expect("preparation succeeds")
            .circuit;
        let id = BenchmarkId::new(family.name(), dims.to_string());
        group.bench_with_input(id, &circuit, |b, circuit| {
            b.iter(|| {
                let mut sv = StateVector::ground(dims.clone());
                sv.apply_circuit(black_box(circuit));
                sv
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dd_build, bench_dd_build_sparse, bench_dd_apply,
              bench_approximate, bench_synthesize,
              bench_prepare_end_to_end, bench_simulate
}
criterion_main!(benches);
