//! Criterion comparison of the DD-based synthesis against the dense
//! recursive baseline (`mdq_core::baseline`): on structured states the
//! diagram wins on operation count and time; on dense random states the two
//! coincide (the diagram *is* the full tree there).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdq_bench::{dims3, dims4, Family};
use mdq_core::{baseline::synthesize_dense, prepare, PrepareOptions};
use std::hint::black_box;

fn bench_dd_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_vs_dense");
    for family in [Family::Ghz, Family::W, Family::Random] {
        for dims in [dims3(), dims4()] {
            let state = family.state(&dims, 0);
            group.bench_with_input(
                BenchmarkId::new(format!("dd/{}", family.name()), dims.to_string()),
                &state,
                |b, state| {
                    b.iter(|| prepare(&dims, black_box(state), PrepareOptions::exact()).unwrap());
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("dense/{}", family.name()), dims.to_string()),
                &state,
                |b, state| {
                    b.iter(|| synthesize_dense(&dims, black_box(state)));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dd_vs_dense
}
criterion_main!(benches);
