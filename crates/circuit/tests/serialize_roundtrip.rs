//! Property tests pinning the guarantee the engine's cache snapshots depend
//! on: the `mdqc` text serialization (and its single-line embedded form)
//! round-trips every serializable circuit **bit-exactly** — structure,
//! integer fields, and every `f64` angle down to its exact bit pattern.
//!
//! Angles are drawn from raw random 64-bit patterns (exponent-clamped to
//! finite), so the suite covers subnormals, negative zero, extreme
//! magnitudes, and values whose shortest decimal form needs all 17
//! significant digits. If Rust's float formatting were ever lossy for any
//! finite value, these tests would fail and the format would have to move
//! to hex-bits encoding; with shortest-round-trip formatting they pass.

use mdq_circuit::{serialize, Circuit, Control, Gate, Instruction};
use mdq_num::radix::Dims;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Reinterprets raw bits as a **finite** f64: a pattern whose exponent is
/// all-ones (inf/NaN) has its top exponent bit cleared, which preserves the
/// randomized mantissa and sign while guaranteeing finiteness.
fn finite_from_bits(bits: u64) -> f64 {
    let value = f64::from_bits(bits);
    if value.is_finite() {
        value
    } else {
        f64::from_bits(bits & !(1 << 62))
    }
}

/// One raw instruction draw: gate kind selector, target selector, two
/// level/amount selectors, and two raw angle bit patterns, plus a control
/// mask and a control-level selector. Everything is reduced modulo the
/// register inside [`build_instruction`], so every draw is valid.
type RawInstruction = (u8, u64, (u64, u64), (u64, u64), u64, u64);

fn build_instruction(dims: &Dims, raw: &RawInstruction) -> Instruction {
    let (kind, qudit_sel, (a, b), (theta_bits, phi_bits), ctrl_mask, ctrl_level_sel) = *raw;
    let width = dims.len();
    let qudit = (qudit_sel % width as u64) as usize;
    let d = dims.dim(qudit);
    // Two *distinct* levels below `d` (dims are always >= 2), ordered so the
    // `lo < hi` constructor contract holds.
    let x = (a % d as u64) as usize;
    let mut y = (b % d as u64) as usize;
    if y == x {
        y = (x + 1) % d;
    }
    let (lo, hi) = (x.min(y), x.max(y));
    let theta = finite_from_bits(theta_bits);
    let phi = finite_from_bits(phi_bits);
    let gate = match kind % 6 {
        0 => Gate::givens(lo, hi, theta, phi),
        1 => Gate::z_rotation(lo, hi, theta),
        2 => Gate::phase(lo, phi),
        3 => Gate::shift(a as i64 % 1_000),
        4 => Gate::fourier(),
        _ => Gate::fourier_inverse(),
    };
    // Mixed controls: any subset of the *other* qudits, each at a level
    // selected within its own dimension.
    let controls: Vec<Control> = (0..width)
        .filter(|&q| q != qudit && ctrl_mask & (1 << (q % 64)) != 0)
        .map(|q| {
            let cd = dims.dim(q) as u64;
            Control::new(q, (ctrl_level_sel.rotate_left(q as u32) % cd) as usize)
        })
        .collect();
    Instruction::controlled(qudit, gate, controls)
}

/// Bitwise equality of two circuits: identical structure and, for every
/// angle, identical `f64::to_bits` (stricter than `PartialEq`, which treats
/// `0.0 == -0.0`).
fn assert_bit_identical(a: &Circuit, b: &Circuit) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.dims().as_slice(), b.dims().as_slice());
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        prop_assert_eq!(x.qudit, y.qudit, "target of instruction {}", i);
        prop_assert_eq!(&x.controls, &y.controls, "controls of instruction {}", i);
        match (&x.gate, &y.gate) {
            (
                Gate::Givens { lo, hi, theta, phi },
                Gate::Givens {
                    lo: lo2,
                    hi: hi2,
                    theta: theta2,
                    phi: phi2,
                },
            ) => {
                prop_assert_eq!((lo, hi), (lo2, hi2), "givens levels of {}", i);
                prop_assert_eq!(theta.to_bits(), theta2.to_bits(), "theta bits of {}", i);
                prop_assert_eq!(phi.to_bits(), phi2.to_bits(), "phi bits of {}", i);
            }
            (
                Gate::ZRotation { lo, hi, theta },
                Gate::ZRotation {
                    lo: lo2,
                    hi: hi2,
                    theta: theta2,
                },
            ) => {
                prop_assert_eq!((lo, hi), (lo2, hi2), "zrot levels of {}", i);
                prop_assert_eq!(theta.to_bits(), theta2.to_bits(), "theta bits of {}", i);
            }
            (
                Gate::PhaseLevel { level, angle },
                Gate::PhaseLevel {
                    level: level2,
                    angle: angle2,
                },
            ) => {
                prop_assert_eq!(level, level2, "phase level of {}", i);
                prop_assert_eq!(angle.to_bits(), angle2.to_bits(), "angle bits of {}", i);
            }
            (gx, gy) => prop_assert_eq!(gx, gy, "gate of instruction {}", i),
        }
    }
    Ok(())
}

fn build_circuit(dims_spec: &[usize], raws: &[RawInstruction]) -> Circuit {
    let dims = Dims::new(dims_spec.to_vec()).expect("generated register is valid");
    let mut circuit = Circuit::new(dims.clone());
    for raw in raws {
        circuit
            .push(build_instruction(&dims, raw))
            .expect("generated instruction is valid");
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `to_text`/`from_text` round-trips arbitrary circuits over mixed
    /// registers bit-exactly, angles included.
    #[test]
    fn prop_text_round_trip_is_bit_exact(
        dims_spec in proptest::collection::vec(2usize..6, 1..5),
        raws in proptest::collection::vec(
            (0u8..6, 0u64..u64::MAX, (0u64..u64::MAX, 0u64..u64::MAX),
             (0u64..u64::MAX, 0u64..u64::MAX), 0u64..u64::MAX, 0u64..u64::MAX),
            0..12,
        ),
    ) {
        let circuit = build_circuit(&dims_spec, &raws);
        let text = serialize::to_text(&circuit).expect("no unitary gates generated");
        let back = serialize::from_text(&text).expect("own output parses");
        assert_bit_identical(&circuit, &back)?;
    }

    /// The single-line embedded form (`to_line`/`from_line`) round-trips
    /// bit-exactly too — this is the exact form the engine's snapshot
    /// records embed.
    #[test]
    fn prop_line_round_trip_is_bit_exact(
        dims_spec in proptest::collection::vec(2usize..6, 1..5),
        raws in proptest::collection::vec(
            (0u8..6, 0u64..u64::MAX, (0u64..u64::MAX, 0u64..u64::MAX),
             (0u64..u64::MAX, 0u64..u64::MAX), 0u64..u64::MAX, 0u64..u64::MAX),
            0..12,
        ),
    ) {
        let circuit = build_circuit(&dims_spec, &raws);
        let line = serialize::to_line(&circuit).expect("no unitary gates generated");
        prop_assert!(!line.contains('\n'));
        let back = serialize::from_line(circuit.dims().clone(), &line)
            .expect("own output parses");
        assert_bit_identical(&circuit, &back)?;
    }
}

/// Deterministic angle edge cases: negative zero, the smallest subnormal,
/// extreme magnitudes, and shortest-representation stress values must all
/// recover their exact bit patterns through both formats.
#[test]
fn angle_edge_cases_round_trip_bit_exactly() {
    let edge_angles = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        f64::from_bits(1),                     // smallest positive subnormal
        f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
        f64::MAX,
        -f64::MAX,
        std::f64::consts::PI,
        -std::f64::consts::FRAC_PI_3,
        1.0 + f64::EPSILON,
        0.1 + 0.2, // classic 17-digit shortest form
        1e-300,
        -2.2250738585072014e-308,
    ];
    let dims = Dims::new(vec![4, 3]).unwrap();
    let mut circuit = Circuit::new(dims.clone());
    for (i, &angle) in edge_angles.iter().enumerate() {
        let gate = match i % 3 {
            0 => Gate::givens(0, 3, angle, -angle),
            1 => Gate::z_rotation(1, 2, angle),
            _ => Gate::phase(2, angle),
        };
        circuit
            .push(Instruction::controlled(0, gate, vec![Control::new(1, 2)]))
            .unwrap();
    }
    let text = serialize::to_text(&circuit).unwrap();
    let parsed = serialize::from_text(&text).unwrap();
    let line = serialize::to_line(&circuit).unwrap();
    let parsed_line = serialize::from_line(dims, &line).unwrap();
    for back in [&parsed, &parsed_line] {
        for (x, y) in circuit.iter().zip(back.iter()) {
            assert_eq!(format!("{:?}", x.gate), format!("{:?}", y.gate));
            let bits = |g: &Gate| -> Vec<u64> {
                match g {
                    Gate::Givens { theta, phi, .. } => vec![theta.to_bits(), phi.to_bits()],
                    Gate::ZRotation { theta, .. } => vec![theta.to_bits()],
                    Gate::PhaseLevel { angle, .. } => vec![angle.to_bits()],
                    _ => vec![],
                }
            };
            assert_eq!(bits(&x.gate), bits(&y.gate), "lossy angle in {:?}", x.gate);
        }
    }
}
