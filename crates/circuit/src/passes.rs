//! Circuit rewriting passes.

use std::f64::consts::FRAC_PI_2;

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::Instruction;

/// Rewrites every two-level Z rotation using the paper's identity
/// `Z(θ) = R(−π/2, 0) · R(θ, π/2) · R(π/2, 0)` into three Givens rotations
/// on the same two levels (controls are preserved on each factor).
///
/// The identity is exact (all factors have determinant 1), so the circuit
/// implements the same unitary. Returns the rewritten circuit and the number
/// of Z rotations expanded.
///
/// Note the paper *counts* the phase rotation as a single operation in
/// Table 1 but points out this decomposition for hardware that only offers
/// two-level rotations; running this pass therefore triples the phase-gate
/// contribution to the operation count.
///
/// # Examples
///
/// ```
/// use mdq_circuit::{passes, Circuit, Gate, Instruction};
/// use mdq_num::radix::Dims;
///
/// let mut c = Circuit::new(Dims::new(vec![3])?);
/// c.push(Instruction::local(0, Gate::z_rotation(0, 1, 1.0)))?;
/// let (rewritten, expanded) = passes::decompose_phases(&c);
/// assert_eq!(expanded, 1);
/// assert_eq!(rewritten.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn decompose_phases(circuit: &Circuit) -> (Circuit, usize) {
    let mut out = Circuit::new(circuit.dims().clone());
    let mut expanded = 0;
    for instr in circuit.iter() {
        match instr.gate {
            Gate::ZRotation { lo, hi, theta } => {
                expanded += 1;
                // Application order is right-to-left in the identity:
                // first R(π/2, 0), then R(θ, π/2), then R(−π/2, 0).
                for gate in [
                    Gate::givens(lo, hi, FRAC_PI_2, 0.0),
                    Gate::givens(lo, hi, theta, FRAC_PI_2),
                    Gate::givens(lo, hi, -FRAC_PI_2, 0.0),
                ] {
                    out.push(Instruction::controlled(
                        instr.qudit,
                        gate,
                        instr.controls.clone(),
                    ))
                    .expect("rewritten instruction stays valid");
                }
            }
            _ => out
                .push(instr.clone())
                .expect("original instruction stays valid"),
        }
    }
    (out, expanded)
}

/// Merges adjacent rotations that act on the same qudit, the same two
/// levels, and under the same controls:
///
/// * `R(θ₁, φ)` followed by `R(θ₂, φ)` becomes `R(θ₁+θ₂, φ)`;
/// * `Z(θ₁)` followed by `Z(θ₂)` on the same levels becomes `Z(θ₁+θ₂)`;
/// * rotations that become the identity (and pre-existing identity
///   rotations) are dropped.
///
/// The pass runs to a fixpoint and returns the rewritten circuit with the
/// number of instructions removed. It only merges *adjacent* instructions,
/// so it never reorders anything and trivially preserves the unitary.
///
/// This is useful after concatenating synthesized fragments, and quantifies
/// the redundancy the paper's exact operation counts carry on sparse states
/// (identity rotations on empty levels).
///
/// # Examples
///
/// ```
/// use mdq_circuit::{passes, Circuit, Gate, Instruction};
/// use mdq_num::radix::Dims;
///
/// let mut c = Circuit::new(Dims::new(vec![2])?);
/// c.push(Instruction::local(0, Gate::givens(0, 1, 0.5, 0.1)))?;
/// c.push(Instruction::local(0, Gate::givens(0, 1, -0.5, 0.1)))?;
/// let (merged, removed) = passes::merge_rotations(&c, 1e-12);
/// assert_eq!(merged.len(), 0); // the pair cancels entirely
/// assert_eq!(removed, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn merge_rotations(circuit: &Circuit, tol: f64) -> (Circuit, usize) {
    let mut instructions: Vec<Instruction> = circuit.iter().cloned().collect();
    loop {
        let before = instructions.len();
        instructions = merge_once(instructions, tol);
        if instructions.len() == before {
            break;
        }
    }
    let removed = circuit.len() - instructions.len();
    let mut out = Circuit::new(circuit.dims().clone());
    for instr in instructions {
        out.push(instr).expect("merged instruction stays valid");
    }
    (out, removed)
}

fn merge_once(instructions: Vec<Instruction>, tol: f64) -> Vec<Instruction> {
    let mut out: Vec<Instruction> = Vec::with_capacity(instructions.len());
    for instr in instructions {
        if instr.gate.is_identity(tol) {
            continue;
        }
        if let Some(prev) = out.last() {
            if prev.qudit == instr.qudit && prev.controls == instr.controls {
                if let Some(merged) = merge_gates(&prev.gate, &instr.gate) {
                    let prev = out.pop().expect("checked non-empty");
                    if !merged.is_identity(tol) {
                        out.push(Instruction::controlled(prev.qudit, merged, prev.controls));
                    }
                    continue;
                }
            }
        }
        out.push(instr);
    }
    out
}

fn merge_gates(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (
            Gate::Givens {
                lo: l1,
                hi: h1,
                theta: t1,
                phi: p1,
            },
            Gate::Givens {
                lo: l2,
                hi: h2,
                theta: t2,
                phi: p2,
            },
        ) if l1 == l2 && h1 == h2 && (p1 - p2).abs() < 1e-15 => Some(Gate::Givens {
            lo: *l1,
            hi: *h1,
            theta: t1 + t2,
            phi: *p1,
        }),
        (
            Gate::ZRotation {
                lo: l1,
                hi: h1,
                theta: t1,
            },
            Gate::ZRotation {
                lo: l2,
                hi: h2,
                theta: t2,
            },
        ) if l1 == l2 && h1 == h2 => Some(Gate::ZRotation {
            lo: *l1,
            hi: *h1,
            theta: t1 + t2,
        }),
        (
            Gate::PhaseLevel {
                level: v1,
                angle: a1,
            },
            Gate::PhaseLevel {
                level: v2,
                angle: a2,
            },
        ) if v1 == v2 => Some(Gate::PhaseLevel {
            level: *v1,
            angle: a1 + a2,
        }),
        (Gate::Shift { amount: a1 }, Gate::Shift { amount: a2 }) => {
            Some(Gate::Shift { amount: a1 + a2 })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Control;
    use mdq_num::matrix::CMatrix;
    use mdq_num::radix::Dims;

    #[test]
    fn z_identity_matches_matrix_product() {
        // Verify Z(θ) = R(−π/2,0)·R(θ,π/2)·R(π/2,0) numerically for a
        // range of angles and embeddings.
        for &theta in &[0.0, 0.3, 1.0, -2.2, std::f64::consts::PI] {
            for (lo, hi, d) in [(0, 1, 2), (0, 1, 3), (1, 3, 4)] {
                let z = Gate::z_rotation(lo, hi, theta).matrix(d);
                let product = &(&Gate::givens(lo, hi, -FRAC_PI_2, 0.0).matrix(d)
                    * &Gate::givens(lo, hi, theta, FRAC_PI_2).matrix(d))
                    * &Gate::givens(lo, hi, FRAC_PI_2, 0.0).matrix(d);
                assert!(
                    product.approx_eq(&z, 1e-10),
                    "θ={theta} lo={lo} hi={hi} d={d}:\n{product}\nvs\n{z}"
                );
            }
        }
    }

    #[test]
    fn pass_preserves_other_gates() {
        let mut c = Circuit::new(Dims::new(vec![3, 2]).unwrap());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::local(0, Gate::z_rotation(0, 1, 0.7)))
            .unwrap();
        c.push(Instruction::local(1, Gate::shift(1))).unwrap();
        let (out, expanded) = decompose_phases(&c);
        assert_eq!(expanded, 1);
        assert_eq!(out.len(), 5);
        assert_eq!(out.instructions()[0].gate, Gate::fourier());
        assert_eq!(out.instructions()[4].gate, Gate::shift(1));
    }

    #[test]
    fn pass_preserves_controls() {
        let mut c = Circuit::new(Dims::new(vec![2, 3]).unwrap());
        c.push(Instruction::controlled(
            1,
            Gate::z_rotation(0, 2, -0.4),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        let (out, _) = decompose_phases(&c);
        assert_eq!(out.len(), 3);
        for instr in out.iter() {
            assert_eq!(instr.controls, vec![Control::new(0, 1)]);
        }
    }

    #[test]
    fn decomposed_circuit_multiplies_to_original_unitary() {
        // Single qutrit: compare full 3×3 unitaries.
        let d = 3;
        let theta = 0.9;
        let mut c = Circuit::new(Dims::new(vec![d]).unwrap());
        c.push(Instruction::local(0, Gate::z_rotation(1, 2, theta)))
            .unwrap();
        let (out, _) = decompose_phases(&c);
        let mut m = CMatrix::identity(d);
        for instr in out.iter() {
            m = &instr.gate.matrix(d) * &m;
        }
        assert!(m.approx_eq(&Gate::z_rotation(1, 2, theta).matrix(d), 1e-10));
    }

    #[test]
    fn merge_combines_same_axis_givens() {
        let mut c = Circuit::new(Dims::new(vec![3]).unwrap());
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.4, 0.2)))
            .unwrap();
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.5, 0.2)))
            .unwrap();
        let (merged, removed) = merge_rotations(&c, 1e-12);
        assert_eq!(removed, 1);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.instructions()[0].gate, Gate::givens(0, 1, 0.9, 0.2));
    }

    #[test]
    fn merge_respects_controls_and_levels() {
        let mut c = Circuit::new(Dims::new(vec![3, 2]).unwrap());
        // Different controls: no merge.
        c.push(Instruction::controlled(
            0,
            Gate::givens(0, 1, 0.4, 0.0),
            vec![Control::new(1, 0)],
        ))
        .unwrap();
        c.push(Instruction::controlled(
            0,
            Gate::givens(0, 1, 0.4, 0.0),
            vec![Control::new(1, 1)],
        ))
        .unwrap();
        // Different level pair: no merge.
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.4, 0.0)))
            .unwrap();
        c.push(Instruction::local(0, Gate::givens(1, 2, 0.4, 0.0)))
            .unwrap();
        let (merged, removed) = merge_rotations(&c, 1e-12);
        assert_eq!(removed, 0);
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn merge_cascades_to_fixpoint() {
        // Three gates that only fully cancel after two merge rounds.
        let mut c = Circuit::new(Dims::new(vec![2]).unwrap());
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.3, 0.0)))
            .unwrap();
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.3, 0.0)))
            .unwrap();
        c.push(Instruction::local(0, Gate::givens(0, 1, -0.6, 0.0)))
            .unwrap();
        let (merged, removed) = merge_rotations(&c, 1e-12);
        assert_eq!(merged.len(), 0);
        assert_eq!(removed, 3);
    }

    #[test]
    fn merge_combines_shifts_and_phases() {
        let mut c = Circuit::new(Dims::new(vec![4]).unwrap());
        c.push(Instruction::local(0, Gate::shift(1))).unwrap();
        c.push(Instruction::local(0, Gate::shift(3))).unwrap();
        c.push(Instruction::local(0, Gate::phase(2, 0.5))).unwrap();
        c.push(Instruction::local(0, Gate::phase(2, -0.5))).unwrap();
        let (merged, _) = merge_rotations(&c, 1e-12);
        // shift(4) on d=4 is identity… but the pass only knows amounts, and
        // Gate::is_identity for Shift tests amount == 0, so shift(4)
        // remains. The phase pair cancels.
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.instructions()[0].gate, Gate::shift(4));
    }

    #[test]
    fn merge_drops_preexisting_identities() {
        let mut c = Circuit::new(Dims::new(vec![2, 2]).unwrap());
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.0, 0.7)))
            .unwrap();
        c.push(Instruction::local(1, Gate::shift(0))).unwrap();
        let (merged, removed) = merge_rotations(&c, 1e-12);
        assert_eq!(merged.len(), 0);
        assert_eq!(removed, 2);
    }
}
