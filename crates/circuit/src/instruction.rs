//! Controlled gate applications.

use std::fmt;

use crate::gate::Gate;

/// A control condition: the instruction fires only when `qudit` is in basis
/// state `level`.
///
/// This matches the paper's circuit notation, where the integer drawn inside
/// a control circle is the level that activates the controlled operation
/// (Figure 1: "+1" controlled on level 1, "+2" controlled on level 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Control {
    /// Index of the controlling qudit.
    pub qudit: usize,
    /// Activation level of the controlling qudit.
    pub level: usize,
}

impl Control {
    /// Creates a control condition.
    #[must_use]
    pub fn new(qudit: usize, level: usize) -> Self {
        Control { qudit, level }
    }
}

impl fmt::Display for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}@{}", self.qudit, self.level)
    }
}

/// One gate application: a target qudit, a gate, and zero or more controls.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Target qudit index.
    pub qudit: usize,
    /// The gate applied to the target.
    pub gate: Gate,
    /// Control conditions; all must hold for the gate to fire.
    pub controls: Vec<Control>,
}

impl Instruction {
    /// An uncontrolled (local) gate.
    #[must_use]
    pub fn local(qudit: usize, gate: Gate) -> Self {
        Instruction {
            qudit,
            gate,
            controls: Vec::new(),
        }
    }

    /// A controlled gate.
    #[must_use]
    pub fn controlled(qudit: usize, gate: Gate, controls: Vec<Control>) -> Self {
        Instruction {
            qudit,
            gate,
            controls,
        }
    }

    /// Number of control conditions — the per-operation value behind the
    /// "#Controls" column of Table 1.
    #[must_use]
    pub fn control_count(&self) -> usize {
        self.controls.len()
    }

    /// The adjoint instruction (same controls, inverse gate).
    #[must_use]
    pub fn adjoint(&self) -> Instruction {
        Instruction {
            qudit: self.qudit,
            gate: self.gate.adjoint(),
            controls: self.controls.clone(),
        }
    }

    /// All qudits the instruction occupies (target plus controls), used for
    /// depth scheduling.
    pub fn qudits(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.qudit).chain(self.controls.iter().map(|c| c.qudit))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on q{}", self.gate, self.qudit)?;
        if !self.controls.is_empty() {
            write!(f, " ctrl[")?;
            for (i, c) in self.controls.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_instruction_has_no_controls() {
        let i = Instruction::local(1, Gate::fourier());
        assert_eq!(i.control_count(), 0);
        assert_eq!(i.qudits().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn controlled_instruction_lists_all_qudits() {
        let i = Instruction::controlled(
            2,
            Gate::shift(1),
            vec![Control::new(0, 1), Control::new(1, 3)],
        );
        assert_eq!(i.control_count(), 2);
        assert_eq!(i.qudits().collect::<Vec<_>>(), vec![2, 0, 1]);
    }

    #[test]
    fn adjoint_keeps_controls_and_inverts_gate() {
        let i = Instruction::controlled(0, Gate::shift(1), vec![Control::new(1, 2)]);
        let a = i.adjoint();
        assert_eq!(a.controls, i.controls);
        assert_eq!(a.gate, Gate::shift(-1));
    }

    #[test]
    fn display_mentions_controls() {
        let i = Instruction::controlled(1, Gate::shift(1), vec![Control::new(0, 2)]);
        assert_eq!(i.to_string(), "X(+1) on q1 ctrl[q0@2]");
    }
}
