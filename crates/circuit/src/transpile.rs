//! Lowering multi-controlled operations to local and two-qudit gates.
//!
//! The paper justifies counting multi-controlled operations by noting the
//! circuit "can later be transposed into a sequence of local and two-qudit
//! operations \[35\], with also linear complexity in terms of depth \[36\]".
//! This module implements such a transposition so the claim is exercised
//! end to end:
//!
//! * 0- and 1-control instructions are already local/two-qudit and pass
//!   through unchanged;
//! * a `k ≥ 2`-controlled gate is lowered with a **conjunction ladder** over
//!   `k` clean ancilla qubits appended to the register: `anc_i` records
//!   whether the first `i` control conditions hold, the gate fires once
//!   single-controlled on `anc_k`, and the ladder is uncomputed. Each ladder
//!   step is a doubly-controlled two-level NOT, itself expanded into five
//!   two-qudit Givens rotations plus one local phase via the multi-valued
//!   generalization of the Barenco decomposition (the inner control of every
//!   step is an ancilla *qubit*, which is what makes the five-gate identity
//!   exact in mixed dimensions).
//!
//! The op-count overhead is `10k − 7 + 1` two-qudit gates per `k`-controlled
//! instruction — linear in `k`, matching the linear-depth result the paper
//! cites.

use std::f64::consts::PI;

use mdq_num::radix::Dims;

use crate::circuit::{Circuit, CircuitError};
use crate::gate::Gate;
use crate::instruction::{Control, Instruction};

/// Result of [`to_two_qudit`].
#[derive(Debug, Clone)]
pub struct TranspileResult {
    /// The lowered circuit over the extended register. Every instruction
    /// touches at most two qudits.
    pub circuit: Circuit,
    /// Number of ancilla qubits appended after the original qudits.
    pub ancilla_count: usize,
    /// Number of qudits of the original register (ancillas start at this
    /// index).
    pub original_qudits: usize,
}

/// Lowers every instruction of `circuit` to local and two-qudit gates.
///
/// Ancilla qubits (dimension 2, initialized and returned to `|0⟩`) are
/// appended to the register as needed; on the original qudits the lowered
/// circuit implements exactly the same unitary.
///
/// # Errors
///
/// Returns a [`CircuitError`] if an instruction of the input circuit is
/// invalid for its register (which cannot happen for circuits built through
/// [`Circuit::push`]).
pub fn to_two_qudit(circuit: &Circuit) -> Result<TranspileResult, CircuitError> {
    let original_qudits = circuit.dims().len();
    let max_controls = circuit
        .iter()
        .map(Instruction::control_count)
        .max()
        .unwrap_or(0);
    let ancilla_count = if max_controls >= 2 { max_controls } else { 0 };

    let mut dims = circuit.dims().as_slice().to_vec();
    dims.extend(std::iter::repeat_n(2, ancilla_count));
    let dims = Dims::new(dims).expect("extended register is valid");
    let mut out = Circuit::new(dims);

    for instr in circuit.iter() {
        let k = instr.control_count();
        if k <= 1 {
            out.push(instr.clone())?;
            continue;
        }

        let anc = |i: usize| original_qudits + i; // anc(0) … anc(k−1)

        // Compute: anc_0 = [c_0], then anc_i = anc_{i−1} ∧ [c_i].
        let mut compute: Vec<Instruction> = Vec::new();
        compute.push(Instruction::controlled(
            anc(0),
            x_tilde(),
            vec![instr.controls[0]],
        ));
        for i in 1..k {
            ccnot_onto(&mut compute, instr.controls[i], anc(i - 1), anc(i));
        }
        for step in &compute {
            out.push(step.clone())?;
        }

        // The payload gate, single-controlled on the conjunction ancilla.
        out.push(Instruction::controlled(
            instr.qudit,
            instr.gate.clone(),
            vec![Control::new(anc(k - 1), 1)],
        ))?;

        // Uncompute: adjoint of the compute sequence in reverse order.
        for step in compute.iter().rev() {
            out.push(step.adjoint())?;
        }
    }

    Ok(TranspileResult {
        circuit: out,
        ancilla_count,
        original_qudits,
    })
}

/// The two-level NOT used on ancilla qubits: `X̃ = R_{0,1}(π, 0) = −iX` on
/// the (0,1) subspace. Its phase `−i` cancels between the compute and
/// uncompute halves of the ladder.
fn x_tilde() -> Gate {
    Gate::givens(0, 1, PI, 0.0)
}

/// `√X̃ = R_{0,1}(π/2, 0)`.
fn v_gate() -> Gate {
    Gate::givens(0, 1, PI / 2.0, 0.0)
}

/// Emits a doubly-controlled X̃ onto ancilla qubit `target`, controlled on
/// an arbitrary-dimension qudit condition `c1` and on ancilla qubit
/// `c2_qubit` being 1, using the five-rotation Barenco-style identity
///
/// `CC-U = [C_{c2}V] [C_{c1}X̃(c2)] [C_{c2}V†] [C_{c1}X̃(c2)] [C_{c1}V] · P_{c1}(π)`
///
/// with `V² = U = X̃`. The trailing local phase on `c1` cancels the `(−i)²`
/// picked up by the two `X̃` factors, making the identity exact. The inner
/// toggled qudit `c2` must be a qubit: its two levels are exactly the
/// control level and its complement, which is what rules out the spectator
/// levels that break the plain qubit identity in higher dimensions.
fn ccnot_onto(seq: &mut Vec<Instruction>, c1: Control, c2_qubit: usize, target: usize) {
    let c2 = Control::new(c2_qubit, 1);
    seq.push(Instruction::controlled(target, v_gate(), vec![c2]));
    seq.push(Instruction::controlled(c2_qubit, x_tilde(), vec![c1]));
    seq.push(Instruction::controlled(
        target,
        v_gate().adjoint(),
        vec![c2],
    ));
    seq.push(Instruction::controlled(c2_qubit, x_tilde(), vec![c1]));
    seq.push(Instruction::controlled(target, v_gate(), vec![c1]));
    seq.push(Instruction::local(c1.qudit, Gate::phase(c1.level, PI)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    #[test]
    fn zero_and_one_control_pass_through() {
        let mut c = Circuit::new(dims(&[3, 2]));
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 2)],
        ))
        .unwrap();
        let t = to_two_qudit(&c).unwrap();
        assert_eq!(t.ancilla_count, 0);
        assert_eq!(t.circuit.len(), 2);
        assert_eq!(t.circuit.dims().len(), 2);
    }

    #[test]
    fn two_controls_use_two_ancillas() {
        let mut c = Circuit::new(dims(&[3, 4, 2]));
        c.push(Instruction::controlled(
            2,
            Gate::givens(0, 1, 1.0, 0.2),
            vec![Control::new(0, 1), Control::new(1, 3)],
        ))
        .unwrap();
        let t = to_two_qudit(&c).unwrap();
        assert_eq!(t.ancilla_count, 2);
        assert_eq!(t.circuit.dims().as_slice(), &[3, 4, 2, 2, 2]);
        // 1 (anc0) + 6 (ladder step) + 1 (payload) + mirrored 7 = 15.
        assert_eq!(t.circuit.len(), 15);
    }

    #[test]
    fn every_transpiled_instruction_touches_at_most_two_qudits() {
        let mut c = Circuit::new(dims(&[3, 4, 2, 5]));
        c.push(Instruction::controlled(
            3,
            Gate::givens(0, 2, 0.7, -0.3),
            vec![Control::new(0, 1), Control::new(1, 3), Control::new(2, 1)],
        ))
        .unwrap();
        let t = to_two_qudit(&c).unwrap();
        for instr in t.circuit.iter() {
            assert!(instr.qudits().count() <= 2, "instruction {instr}");
        }
    }

    #[test]
    fn op_count_grows_linearly_with_controls() {
        let mut lens = Vec::new();
        for k in 2..=6 {
            let mut d = vec![3; k + 1];
            d[0] = 2;
            let mut c = Circuit::new(dims(&d));
            let controls: Vec<Control> = (1..=k).map(|q| Control::new(q, 1)).collect();
            c.push(Instruction::controlled(
                0,
                Gate::givens(0, 1, 0.5, 0.0),
                controls,
            ))
            .unwrap();
            let t = to_two_qudit(&c).unwrap();
            lens.push(t.circuit.len());
        }
        // 10k − 7 + 1 two-qudit gates plus k locals… verify exact linearity.
        let diffs: Vec<isize> = lens
            .windows(2)
            .map(|w| w[1] as isize - w[0] as isize)
            .collect();
        assert!(diffs.iter().all(|&d| d == diffs[0]), "lens {lens:?}");
    }

    #[test]
    fn ancillas_are_shared_across_instructions() {
        let mut c = Circuit::new(dims(&[2, 2, 2, 2]));
        for target in 2..4 {
            c.push(Instruction::controlled(
                target,
                Gate::shift(1),
                vec![Control::new(0, 1), Control::new(1, 1)],
            ))
            .unwrap();
        }
        let t = to_two_qudit(&c).unwrap();
        assert_eq!(t.ancilla_count, 2);
    }
}
