//! Mixed-dimensional qudit circuit IR.
//!
//! The synthesis algorithm of the paper emits **multi-controlled two-level
//! rotations**: Givens rotations `R_{i,j}(θ, φ)` acting on two levels of one
//! qudit, controlled on specific levels of other qudits, plus single-level
//! phase rotations. This crate provides:
//!
//! * [`Gate`] — the gate alphabet (Givens rotation, level phase, cyclic
//!   shift, generalized Fourier/Hadamard, arbitrary unitary), each with a
//!   dense matrix builder and an adjoint;
//! * [`Instruction`] — a gate on a target qudit with a list of
//!   [`Control`]s (`(qudit, level)` pairs, matching the paper's circuit
//!   notation where the control level is drawn inside the circle);
//! * [`Circuit`] — an ordered instruction list over a mixed-dimensional
//!   register with validation, statistics ([`CircuitStats`] mirrors the
//!   "Operations"/"#Controls" columns of Table 1), depth computation,
//!   adjoint/reverse, and text rendering;
//! * passes: [`passes::decompose_phases`] realizes the paper's identity
//!   `Z(θ) = R(−π/2, 0)·R(θ, π/2)·R(π/2, 0)` to express phase rotations as
//!   Givens rotations, and [`transpile::to_two_qudit`] lowers
//!   multi-controlled operations to local and two-qudit gates (the step the
//!   paper defers to \[35\], \[36\]).
//!
//! # Examples
//!
//! ```
//! use mdq_circuit::{Circuit, Control, Gate, Instruction};
//! use mdq_num::radix::Dims;
//!
//! // The two-qutrit GHZ preparation of the paper's Figure 1:
//! // a qutrit Hadamard followed by controlled increments.
//! let dims = Dims::new(vec![3, 3])?;
//! let mut circuit = Circuit::new(dims);
//! circuit.push(Instruction::local(0, Gate::fourier()))?;
//! circuit.push(Instruction::controlled(
//!     1,
//!     Gate::shift(1),
//!     vec![Control::new(0, 1)],
//! ))?;
//! circuit.push(Instruction::controlled(
//!     1,
//!     Gate::shift(2),
//!     vec![Control::new(0, 2)],
//! ))?;
//! assert_eq!(circuit.len(), 3);
//! assert_eq!(circuit.stats().controls_max, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod gate;
mod instruction;
pub mod passes;
pub mod serialize;
pub mod transpile;

pub use circuit::{Circuit, CircuitError, CircuitStats};
pub use gate::Gate;
pub use instruction::{Control, Instruction};
