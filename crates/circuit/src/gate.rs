//! The gate alphabet for mixed-dimensional qudit circuits.

use std::f64::consts::PI;
use std::fmt;

use mdq_num::matrix::CMatrix;
use mdq_num::Complex;

/// A single-qudit gate, parameterized by the local dimension of its target
/// at application time (gates are dimension-generic where possible).
///
/// The synthesis algorithm uses only [`Gate::Givens`] and
/// [`Gate::PhaseLevel`]; the remaining variants cover the textbook qudit
/// gates used in examples and benchmarks (Figure 1 of the paper uses the
/// qutrit Hadamard and controlled increments).
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Two-level Givens rotation `R_{i,j}(θ, φ)` on levels `lo < hi`:
    ///
    /// `R = exp(−iθ/2 (cos φ · σx^{lo,hi} + sin φ · σy^{lo,hi}))`,
    ///
    /// i.e. the 2×2 block
    /// `[[cos θ/2, −i e^{−iφ} sin θ/2], [−i e^{iφ} sin θ/2, cos θ/2]]`
    /// embedded at rows/columns `(lo, hi)` of the identity. This is the
    /// native entangling-free primitive of trapped-ion qudit processors
    /// (Ringbauer et al., Nature Physics 2022) and the workhorse of the
    /// paper's synthesis.
    Givens {
        /// Lower level of the rotation subspace.
        lo: usize,
        /// Higher level of the rotation subspace.
        hi: usize,
        /// Rotation angle θ.
        theta: f64,
        /// Rotation phase φ.
        phi: f64,
    },
    /// Phase on a single level: `|level⟩ → e^{iα}|level⟩`.
    ///
    /// Note that a single-level phase has determinant `e^{iα}` and therefore
    /// cannot be written exactly as a product of (determinant-1) Givens
    /// rotations; the synthesizer instead emits [`Gate::ZRotation`], which
    /// can. `PhaseLevel` remains in the alphabet for hand-written circuits
    /// and for the local corrections of the transpiler.
    PhaseLevel {
        /// The level receiving the phase.
        level: usize,
        /// Phase angle α.
        angle: f64,
    },
    /// Two-level Z rotation `Z_{lo,hi}(θ) = diag(e^{iθ/2}, e^{−iθ/2})`
    /// embedded at levels `(lo, hi)` of the identity.
    ///
    /// This is the paper's final per-node "phase rotation applied on the
    /// level 0-1"; it is counted as **one** operation in Table 1 and
    /// decomposes exactly into two-level rotations via
    /// `Z(θ) = R(−π/2, 0)·R(θ, π/2)·R(π/2, 0)`
    /// (see [`crate::passes::decompose_phases`]).
    ZRotation {
        /// Lower level of the rotation subspace.
        lo: usize,
        /// Higher level of the rotation subspace.
        hi: usize,
        /// Rotation angle θ.
        theta: f64,
    },
    /// Cyclic shift `|k⟩ → |k + amount mod d⟩` (the qudit generalization of
    /// Pauli-X; the "+1"/"+2" boxes of the paper's Figure 1).
    Shift {
        /// Shift amount (may be negative; reduced modulo the dimension).
        amount: i64,
    },
    /// The generalized Hadamard (discrete Fourier transform)
    /// `H|j⟩ = 1/√d Σ_k ω^{jk}|k⟩` with `ω = e^{2πi/d}`, or its inverse.
    Fourier {
        /// Whether this is the inverse transform.
        inverse: bool,
    },
    /// An arbitrary single-qudit unitary of explicit dimension.
    Unitary(CMatrix),
}

impl Gate {
    /// A Givens rotation; see [`Gate::Givens`].
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn givens(lo: usize, hi: usize, theta: f64, phi: f64) -> Gate {
        assert!(
            lo < hi,
            "Givens rotation requires lo < hi, got {lo} >= {hi}"
        );
        Gate::Givens { lo, hi, theta, phi }
    }

    /// A single-level phase gate; see [`Gate::PhaseLevel`].
    #[must_use]
    pub fn phase(level: usize, angle: f64) -> Gate {
        Gate::PhaseLevel { level, angle }
    }

    /// A two-level Z rotation; see [`Gate::ZRotation`].
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn z_rotation(lo: usize, hi: usize, theta: f64) -> Gate {
        assert!(lo < hi, "Z rotation requires lo < hi, got {lo} >= {hi}");
        Gate::ZRotation { lo, hi, theta }
    }

    /// A cyclic shift gate; see [`Gate::Shift`].
    #[must_use]
    pub fn shift(amount: i64) -> Gate {
        Gate::Shift { amount }
    }

    /// The generalized Hadamard; see [`Gate::Fourier`].
    #[must_use]
    pub fn fourier() -> Gate {
        Gate::Fourier { inverse: false }
    }

    /// The inverse generalized Hadamard.
    #[must_use]
    pub fn fourier_inverse() -> Gate {
        Gate::Fourier { inverse: true }
    }

    /// The highest level index the gate touches, used for validation against
    /// the target dimension (`None` when every level is acceptable).
    #[must_use]
    pub fn max_level(&self) -> Option<usize> {
        match self {
            Gate::Givens { hi, .. } | Gate::ZRotation { hi, .. } => Some(*hi),
            Gate::PhaseLevel { level, .. } => Some(*level),
            Gate::Shift { .. } | Gate::Fourier { .. } => None,
            Gate::Unitary(m) => Some(m.dim().saturating_sub(1)),
        }
    }

    /// The exact dimension the gate requires, if any (only explicit
    /// unitaries are dimension-pinned).
    #[must_use]
    pub fn required_dim(&self) -> Option<usize> {
        match self {
            Gate::Unitary(m) => Some(m.dim()),
            _ => None,
        }
    }

    /// The dense `d×d` matrix of the gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate's levels do not fit in `d`, or if an explicit
    /// unitary has a different dimension.
    #[must_use]
    pub fn matrix(&self, d: usize) -> CMatrix {
        match self {
            Gate::Givens { lo, hi, theta, phi } => {
                assert!(*hi < d, "Givens level {hi} out of range for dimension {d}");
                let mut m = CMatrix::identity(d);
                let c = Complex::real((theta / 2.0).cos());
                let s = (theta / 2.0).sin();
                let a01 = Complex::new(0.0, -1.0) * Complex::cis(-phi) * s;
                let a10 = Complex::new(0.0, -1.0) * Complex::cis(*phi) * s;
                m.set(*lo, *lo, c);
                m.set(*hi, *hi, c);
                m.set(*lo, *hi, a01);
                m.set(*hi, *lo, a10);
                m
            }
            Gate::PhaseLevel { level, angle } => {
                assert!(
                    *level < d,
                    "phase level {level} out of range for dimension {d}"
                );
                let mut m = CMatrix::identity(d);
                m.set(*level, *level, Complex::cis(*angle));
                m
            }
            Gate::ZRotation { lo, hi, theta } => {
                assert!(
                    *hi < d,
                    "Z-rotation level {hi} out of range for dimension {d}"
                );
                let mut m = CMatrix::identity(d);
                m.set(*lo, *lo, Complex::cis(theta / 2.0));
                m.set(*hi, *hi, Complex::cis(-theta / 2.0));
                m
            }
            Gate::Shift { amount } => {
                let shift = amount.rem_euclid(d as i64) as usize;
                let mut m = CMatrix::zero(d);
                for k in 0..d {
                    m.set((k + shift) % d, k, Complex::ONE);
                }
                m
            }
            Gate::Fourier { inverse } => {
                let sign = if *inverse { -1.0 } else { 1.0 };
                let scale = 1.0 / (d as f64).sqrt();
                let mut m = CMatrix::zero(d);
                for j in 0..d {
                    for k in 0..d {
                        let angle = sign * 2.0 * PI * (j * k) as f64 / d as f64;
                        m.set(k, j, Complex::from_polar(scale, angle));
                    }
                }
                m
            }
            Gate::Unitary(m) => {
                assert_eq!(m.dim(), d, "unitary dimension mismatch");
                m.clone()
            }
        }
    }

    /// The adjoint (inverse) gate.
    #[must_use]
    pub fn adjoint(&self) -> Gate {
        match self {
            Gate::Givens { lo, hi, theta, phi } => Gate::Givens {
                lo: *lo,
                hi: *hi,
                theta: -theta,
                phi: *phi,
            },
            Gate::PhaseLevel { level, angle } => Gate::PhaseLevel {
                level: *level,
                angle: -angle,
            },
            Gate::ZRotation { lo, hi, theta } => Gate::ZRotation {
                lo: *lo,
                hi: *hi,
                theta: -theta,
            },
            Gate::Shift { amount } => Gate::Shift { amount: -amount },
            Gate::Fourier { inverse } => Gate::Fourier { inverse: !inverse },
            Gate::Unitary(m) => Gate::Unitary(m.adjoint()),
        }
    }

    /// Whether the gate is (numerically) the identity within `tol`.
    #[must_use]
    pub fn is_identity(&self, tol: f64) -> bool {
        match self {
            Gate::Givens { theta, .. } => {
                // R(θ,·) = I iff θ ≡ 0 (mod 4π); θ = 2π gives −I ≠ I.
                let t = theta.rem_euclid(4.0 * PI);
                t.abs() <= tol || (4.0 * PI - t).abs() <= tol
            }
            Gate::PhaseLevel { angle, .. } => {
                let a = angle.rem_euclid(2.0 * PI);
                a.abs() <= tol || (2.0 * PI - a).abs() <= tol
            }
            Gate::ZRotation { theta, .. } => {
                // Z(θ) = I iff θ ≡ 0 (mod 4π); θ = 2π is −I on the block.
                let t = theta.rem_euclid(4.0 * PI);
                t.abs() <= tol || (4.0 * PI - t).abs() <= tol
            }
            Gate::Shift { amount } => *amount == 0,
            Gate::Fourier { .. } => false,
            Gate::Unitary(m) => m.approx_eq(&CMatrix::identity(m.dim()), tol),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Givens { lo, hi, theta, phi } => {
                write!(f, "R[{lo},{hi}](θ={theta:.4}, φ={phi:.4})")
            }
            Gate::PhaseLevel { level, angle } => write!(f, "P[{level}](α={angle:.4})"),
            Gate::ZRotation { lo, hi, theta } => write!(f, "Z[{lo},{hi}](θ={theta:.4})"),
            Gate::Shift { amount } => write!(f, "X(+{amount})"),
            Gate::Fourier { inverse: false } => write!(f, "H"),
            Gate::Fourier { inverse: true } => write!(f, "H†"),
            Gate::Unitary(m) => write!(f, "U({}×{})", m.dim(), m.dim()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn givens_matrix_matches_definition() {
        // θ = π on levels (0,1) of a qutrit: block [[0, −ie^{−iφ}], [−ie^{iφ}, 0]].
        let phi = 0.4;
        let m = Gate::givens(0, 1, PI, phi).matrix(3);
        assert!(m.get(0, 0).is_zero(TOL));
        assert!(m
            .get(0, 1)
            .approx_eq(Complex::new(0.0, -1.0) * Complex::cis(-phi), TOL));
        assert!(m
            .get(1, 0)
            .approx_eq(Complex::new(0.0, -1.0) * Complex::cis(phi), TOL));
        assert!(m.get(2, 2).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn givens_rotation_moves_amplitude_between_levels() {
        // R(π/2, −π/2) on (0,1) maps |0⟩ to (|0⟩ + |1⟩)/√2 up to phases.
        let m = Gate::givens(0, 1, PI / 2.0, 0.0).matrix(2);
        let v = m.mul_vec(&[Complex::ONE, Complex::ZERO]);
        assert!((v[0].abs() - 1.0 / 2.0_f64.sqrt()).abs() < TOL);
        assert!((v[1].abs() - 1.0 / 2.0_f64.sqrt()).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn givens_rejects_bad_levels() {
        let _ = Gate::givens(1, 1, 0.1, 0.0);
    }

    #[test]
    fn phase_matrix_is_diagonal() {
        let m = Gate::phase(2, 0.9).matrix(4);
        assert!(m.get(2, 2).approx_eq(Complex::cis(0.9), TOL));
        assert!(m.get(0, 0).approx_eq(Complex::ONE, TOL));
        assert!(m.get(1, 2).is_zero(TOL));
    }

    #[test]
    fn shift_matrix_permutes_levels() {
        let m = Gate::shift(1).matrix(3);
        let v = m.mul_vec(&[Complex::ONE, Complex::ZERO, Complex::ZERO]);
        assert!(v[1].approx_eq(Complex::ONE, TOL));
        // Wrap-around.
        let v = m.mul_vec(&[Complex::ZERO, Complex::ZERO, Complex::ONE]);
        assert!(v[0].approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn negative_shift_is_inverse() {
        let plus = Gate::shift(1).matrix(5);
        let minus = Gate::shift(-1).matrix(5);
        assert!((&plus * &minus).approx_eq(&CMatrix::identity(5), TOL));
    }

    #[test]
    fn fourier_creates_uniform_superposition_from_ground() {
        // The paper's Example 2: H|0⟩ on a qutrit = (|0⟩+|1⟩+|2⟩)/√3.
        let m = Gate::fourier().matrix(3);
        let v = m.mul_vec(&[Complex::ONE, Complex::ZERO, Complex::ZERO]);
        let a = Complex::real(1.0 / 3.0_f64.sqrt());
        for x in v {
            assert!(x.approx_eq(a, TOL));
        }
    }

    #[test]
    fn fourier_inverse_undoes_fourier() {
        for d in 2..=6 {
            let f = Gate::fourier().matrix(d);
            let fi = Gate::fourier_inverse().matrix(d);
            assert!((&fi * &f).approx_eq(&CMatrix::identity(d), 1e-10), "d={d}");
        }
    }

    #[test]
    fn adjoint_inverts_every_gate_kind() {
        let gates = [
            Gate::givens(0, 2, 1.1, -0.7),
            Gate::phase(1, 2.2),
            Gate::shift(2),
            Gate::fourier(),
            Gate::Unitary(Gate::givens(0, 1, 0.3, 0.1).matrix(3)),
        ];
        for g in gates {
            let d = 3;
            let m = g.matrix(d);
            let ma = g.adjoint().matrix(d);
            assert!(
                (&ma * &m).approx_eq(&CMatrix::identity(d), 1e-10),
                "gate {g}"
            );
        }
    }

    #[test]
    fn identity_detection() {
        assert!(Gate::givens(0, 1, 0.0, 0.3).is_identity(1e-12));
        assert!(!Gate::givens(0, 1, 2.0 * PI, 0.0).is_identity(1e-12)); // = −I on the block
        assert!(Gate::givens(0, 1, 4.0 * PI, 0.0).is_identity(1e-9));
        assert!(Gate::phase(0, 0.0).is_identity(1e-12));
        assert!(Gate::phase(0, 2.0 * PI).is_identity(1e-9));
        assert!(Gate::shift(0).is_identity(1e-12));
        assert!(!Gate::fourier().is_identity(1e-12));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Gate::shift(2).to_string(), "X(+2)");
        assert!(Gate::givens(1, 2, 0.5, 0.0).to_string().contains("R[1,2]"));
    }

    proptest! {
        #[test]
        fn prop_all_gates_are_unitary(
            theta in -10.0..10.0f64,
            phi in -10.0..10.0f64,
            angle in -10.0..10.0f64,
            amount in -10i64..10,
            d in 2usize..7,
        ) {
            let lo = 0;
            let hi = d - 1;
            prop_assert!(Gate::givens(lo, hi, theta, phi).matrix(d).is_unitary(1e-9));
            prop_assert!(Gate::phase(d - 1, angle).matrix(d).is_unitary(1e-9));
            prop_assert!(Gate::shift(amount).matrix(d).is_unitary(1e-9));
            prop_assert!(Gate::fourier().matrix(d).is_unitary(1e-9));
        }

        #[test]
        fn prop_givens_composition_adds_angles(
            t1 in -3.0..3.0f64,
            t2 in -3.0..3.0f64,
            phi in -3.0..3.0f64,
        ) {
            // Same-axis rotations compose additively: R(t1,φ)·R(t2,φ) = R(t1+t2,φ).
            let a = Gate::givens(0, 1, t1, phi).matrix(2);
            let b = Gate::givens(0, 1, t2, phi).matrix(2);
            let c = Gate::givens(0, 1, t1 + t2, phi).matrix(2);
            prop_assert!((&a * &b).approx_eq(&c, 1e-9));
        }
    }
}
