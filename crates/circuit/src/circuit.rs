//! The circuit container: validation, statistics, depth, rendering.

use std::fmt;

use mdq_num::radix::Dims;

use crate::gate::Gate;
use crate::instruction::Instruction;

/// Errors produced when pushing instructions into a [`Circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// The target qudit index is out of range.
    TargetOutOfRange {
        /// The offending index.
        qudit: usize,
        /// Number of qudits in the register.
        register: usize,
    },
    /// The gate addresses a level outside the target's dimension.
    LevelOutOfRange {
        /// The level addressed by the gate.
        level: usize,
        /// The target qudit's dimension.
        dim: usize,
    },
    /// An explicit unitary has a dimension different from the target's.
    GateDimMismatch {
        /// The unitary's dimension.
        gate_dim: usize,
        /// The target qudit's dimension.
        dim: usize,
    },
    /// A control refers to a qudit out of range.
    ControlOutOfRange {
        /// The offending control qudit index.
        qudit: usize,
        /// Number of qudits in the register.
        register: usize,
    },
    /// A control level exceeds the control qudit's dimension.
    ControlLevelOutOfRange {
        /// The offending control level.
        level: usize,
        /// The control qudit's dimension.
        dim: usize,
    },
    /// The target appears among the controls, or a control qudit repeats.
    OverlappingOperands,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::TargetOutOfRange { qudit, register } => {
                write!(
                    f,
                    "target qudit {qudit} out of range for {register}-qudit register"
                )
            }
            CircuitError::LevelOutOfRange { level, dim } => {
                write!(f, "gate level {level} out of range for dimension {dim}")
            }
            CircuitError::GateDimMismatch { gate_dim, dim } => {
                write!(
                    f,
                    "unitary of dimension {gate_dim} applied to qudit of dimension {dim}"
                )
            }
            CircuitError::ControlOutOfRange { qudit, register } => {
                write!(
                    f,
                    "control qudit {qudit} out of range for {register}-qudit register"
                )
            }
            CircuitError::ControlLevelOutOfRange { level, dim } => {
                write!(f, "control level {level} out of range for dimension {dim}")
            }
            CircuitError::OverlappingOperands => {
                write!(f, "target and control qudits must be pairwise distinct")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Aggregate statistics of a circuit, mirroring the evaluation columns of
/// the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Total number of (multi-controlled) operations — "Operations".
    pub operations: usize,
    /// Median number of controls per operation — "#Controls".
    pub controls_median: f64,
    /// Mean number of controls per operation.
    pub controls_mean: f64,
    /// Maximum number of controls on any operation.
    pub controls_max: usize,
    /// Number of Givens rotations.
    pub givens_count: usize,
    /// Number of single-level phase rotations.
    pub phase_count: usize,
    /// Number of operations acting on at least two qudits (≥ 1 control).
    pub entangling_count: usize,
}

/// An ordered list of instructions over a mixed-dimensional register.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    dims: Dims,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// An empty circuit over the given register.
    #[must_use]
    pub fn new(dims: Dims) -> Self {
        Circuit {
            dims,
            instructions: Vec::new(),
        }
    }

    /// The register layout.
    #[must_use]
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instructions in application order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Validates an instruction against the register without pushing it.
    ///
    /// # Errors
    ///
    /// Returns the specific [`CircuitError`] describing the first violated
    /// constraint.
    pub fn validate(&self, instruction: &Instruction) -> Result<(), CircuitError> {
        let n = self.dims.len();
        if instruction.qudit >= n {
            return Err(CircuitError::TargetOutOfRange {
                qudit: instruction.qudit,
                register: n,
            });
        }
        let dim = self.dims.dim(instruction.qudit);
        if let Some(level) = instruction.gate.max_level() {
            if let Gate::Unitary(_) = instruction.gate {
                // handled below via required_dim
            } else if level >= dim {
                return Err(CircuitError::LevelOutOfRange { level, dim });
            }
        }
        if let Some(gate_dim) = instruction.gate.required_dim() {
            if gate_dim != dim {
                return Err(CircuitError::GateDimMismatch { gate_dim, dim });
            }
        }
        let mut seen = vec![false; n];
        seen[instruction.qudit] = true;
        for c in &instruction.controls {
            if c.qudit >= n {
                return Err(CircuitError::ControlOutOfRange {
                    qudit: c.qudit,
                    register: n,
                });
            }
            if seen[c.qudit] {
                return Err(CircuitError::OverlappingOperands);
            }
            seen[c.qudit] = true;
            let cdim = self.dims.dim(c.qudit);
            if c.level >= cdim {
                return Err(CircuitError::ControlLevelOutOfRange {
                    level: c.level,
                    dim: cdim,
                });
            }
        }
        Ok(())
    }

    /// Appends an instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if the instruction does not fit the
    /// register (see [`Circuit::validate`]).
    pub fn push(&mut self, instruction: Instruction) -> Result<(), CircuitError> {
        self.validate(&instruction)?;
        self.instructions.push(instruction);
        Ok(())
    }

    /// Appends every instruction of `other` (which must be over the same
    /// register).
    ///
    /// # Errors
    ///
    /// Returns the first validation error.
    pub fn extend_from(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        for instr in other.iter() {
            self.push(instr.clone())?;
        }
        Ok(())
    }

    /// The adjoint circuit: reversed instruction order, each gate inverted.
    ///
    /// Applying `c.adjoint()` after `c` is the identity; this is how the
    /// synthesizer turns a disentangling sequence into a preparation
    /// circuit.
    #[must_use]
    pub fn adjoint(&self) -> Circuit {
        Circuit {
            dims: self.dims.clone(),
            instructions: self
                .instructions
                .iter()
                .rev()
                .map(Instruction::adjoint)
                .collect(),
        }
    }

    /// Aggregate statistics (Table 1 columns). An empty circuit reports
    /// zeroed statistics.
    #[must_use]
    pub fn stats(&self) -> CircuitStats {
        let mut counts: Vec<usize> = self
            .instructions
            .iter()
            .map(Instruction::control_count)
            .collect();
        counts.sort_unstable();
        let operations = counts.len();
        let controls_median = if counts.is_empty() {
            0.0
        } else if operations % 2 == 1 {
            counts[operations / 2] as f64
        } else {
            (counts[operations / 2 - 1] + counts[operations / 2]) as f64 / 2.0
        };
        let controls_mean = if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<usize>() as f64 / operations as f64
        };
        let controls_max = counts.last().copied().unwrap_or(0);
        let mut givens_count = 0;
        let mut phase_count = 0;
        let mut entangling_count = 0;
        for i in &self.instructions {
            match i.gate {
                Gate::Givens { .. } => givens_count += 1,
                Gate::PhaseLevel { .. } => phase_count += 1,
                _ => {}
            }
            if i.control_count() > 0 {
                entangling_count += 1;
            }
        }
        CircuitStats {
            operations,
            controls_median,
            controls_mean,
            controls_max,
            givens_count,
            phase_count,
            entangling_count,
        }
    }

    /// Circuit depth under greedy ASAP scheduling: an instruction occupies
    /// its target and all control qudits for one time step; instructions on
    /// disjoint qudit sets run in parallel.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut busy_until = vec![0usize; self.dims.len()];
        let mut depth = 0;
        for instr in &self.instructions {
            let start = instr.qudits().map(|q| busy_until[q]).max().unwrap_or(0);
            let finish = start + 1;
            for q in instr.qudits() {
                busy_until[q] = finish;
            }
            depth = depth.max(finish);
        }
        depth
    }

    /// A multi-line textual rendering, one instruction per line.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "circuit over {} ({} instructions)",
            self.dims,
            self.len()
        );
        for (i, instr) in self.instructions.iter().enumerate() {
            let _ = writeln!(out, "  {i:4}: {instr}");
        }
        out
    }

    /// Removes instructions whose gate is the identity within `tol`,
    /// returning how many were dropped.
    pub fn drop_identities(&mut self, tol: f64) -> usize {
        let before = self.instructions.len();
        self.instructions.retain(|i| !i.gate.is_identity(tol));
        before - self.instructions.len()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Control;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(dims(&[3, 2]));
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::givens(0, 1, 1.0, 0.0),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::phase(1, 0.5),
            vec![Control::new(0, 2)],
        ))
        .unwrap();
        c
    }

    #[test]
    fn push_validates_target_range() {
        let mut c = Circuit::new(dims(&[2]));
        let err = c.push(Instruction::local(1, Gate::fourier()));
        assert_eq!(
            err.unwrap_err(),
            CircuitError::TargetOutOfRange {
                qudit: 1,
                register: 1
            }
        );
    }

    #[test]
    fn push_validates_gate_levels() {
        let mut c = Circuit::new(dims(&[2, 2]));
        let err = c.push(Instruction::local(0, Gate::givens(0, 2, 1.0, 0.0)));
        assert_eq!(
            err.unwrap_err(),
            CircuitError::LevelOutOfRange { level: 2, dim: 2 }
        );
    }

    #[test]
    fn push_validates_unitary_dimension() {
        let mut c = Circuit::new(dims(&[3]));
        let u = Gate::Unitary(mdq_num::matrix::CMatrix::identity(2));
        let err = c.push(Instruction::local(0, u));
        assert_eq!(
            err.unwrap_err(),
            CircuitError::GateDimMismatch {
                gate_dim: 2,
                dim: 3
            }
        );
    }

    #[test]
    fn push_validates_control_levels_and_overlap() {
        let mut c = Circuit::new(dims(&[3, 2]));
        let err = c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 3)],
        ));
        assert_eq!(
            err.unwrap_err(),
            CircuitError::ControlLevelOutOfRange { level: 3, dim: 3 }
        );
        let err = c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(1, 0)],
        ));
        assert_eq!(err.unwrap_err(), CircuitError::OverlappingOperands);
        let err = c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 0), Control::new(0, 1)],
        ));
        assert_eq!(err.unwrap_err(), CircuitError::OverlappingOperands);
    }

    #[test]
    fn stats_median_and_mean() {
        let c = sample_circuit();
        let s = c.stats();
        assert_eq!(s.operations, 3);
        assert_eq!(s.controls_median, 1.0);
        assert!((s.controls_mean - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.controls_max, 1);
        assert_eq!(s.givens_count, 1);
        assert_eq!(s.phase_count, 1);
        assert_eq!(s.entangling_count, 2);
    }

    #[test]
    fn stats_median_of_even_count() {
        let mut c = Circuit::new(dims(&[2, 2, 2]));
        c.push(Instruction::local(0, Gate::shift(1))).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 1), Control::new(2, 1)],
        ))
        .unwrap();
        assert_eq!(c.stats().controls_median, 1.0); // median of {0, 2}
    }

    #[test]
    fn empty_circuit_stats_are_zero() {
        let c = Circuit::new(dims(&[2]));
        let s = c.stats();
        assert_eq!(s.operations, 0);
        assert_eq!(s.controls_median, 0.0);
        assert_eq!(s.controls_max, 0);
    }

    #[test]
    fn adjoint_reverses_and_inverts() {
        let c = sample_circuit();
        let a = c.adjoint();
        assert_eq!(a.len(), c.len());
        assert_eq!(a.instructions()[0].gate, Gate::phase(1, -0.5));
        assert_eq!(a.instructions()[2].gate, Gate::fourier_inverse());
    }

    #[test]
    fn depth_parallelizes_disjoint_instructions() {
        let mut c = Circuit::new(dims(&[2, 2, 2, 2]));
        c.push(Instruction::local(0, Gate::shift(1))).unwrap();
        c.push(Instruction::local(1, Gate::shift(1))).unwrap();
        assert_eq!(c.depth(), 1);
        c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        assert_eq!(c.depth(), 2);
        // Disjoint pair still fits in parallel with the controlled gate.
        c.push(Instruction::controlled(
            3,
            Gate::shift(1),
            vec![Control::new(2, 1)],
        ))
        .unwrap();
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn drop_identities_removes_null_rotations() {
        let mut c = Circuit::new(dims(&[2]));
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.0, 0.3)))
            .unwrap();
        c.push(Instruction::local(0, Gate::givens(0, 1, 1.0, 0.3)))
            .unwrap();
        c.push(Instruction::local(0, Gate::phase(0, 0.0))).unwrap();
        assert_eq!(c.drop_identities(1e-12), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn render_lists_instructions() {
        let c = sample_circuit();
        let r = c.render();
        assert!(r.contains("H on q0"));
        assert!(r.contains("ctrl[q0@1]"));
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = sample_circuit();
        let b = sample_circuit();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 6);
    }
}
