//! A plain-text serialization of mixed-dimensional circuits.
//!
//! The format is line-oriented and human-editable, in the spirit of
//! OpenQASM but with mixed-radix registers and `(qudit, level)` controls:
//!
//! ```text
//! mdqc 1
//! dims 3 6 2
//! givens q1 lo0 hi1 theta1.5707963 phi-0.5 ctrl 0@1 2@0
//! zrot q0 lo0 hi1 theta0.25
//! phase q2 level1 angle0.75
//! shift q2 amount-1
//! fourier q1
//! fourier- q1
//! ```
//!
//! Explicit `Unitary` gates are not serializable (they have no compact
//! textual form) and produce [`SerializeError::UnsupportedGate`].

use std::fmt;

use mdq_num::radix::Dims;

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::{Control, Instruction};

/// Errors produced by [`to_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// The circuit contains a gate without a textual form.
    UnsupportedGate {
        /// Index of the offending instruction.
        index: usize,
    },
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::UnsupportedGate { index } => {
                write!(
                    f,
                    "instruction {index} has no textual form (explicit unitary)"
                )
            }
        }
    }
}

impl std::error::Error for SerializeError {}

/// Errors produced by [`from_text`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The header line was missing or malformed.
    BadHeader,
    /// The `dims` line was missing or malformed.
    BadDims,
    /// A gate line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The parsed instruction failed circuit validation.
    Invalid {
        /// 1-based line number.
        line: usize,
        /// The underlying circuit error, as text.
        reason: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or malformed 'mdqc 1' header"),
            ParseError::BadDims => write!(f, "missing or malformed 'dims …' line"),
            ParseError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::Invalid { line, reason } => {
                write!(f, "line {line}: invalid instruction: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a circuit to the `mdqc` text format.
///
/// # Errors
///
/// Returns [`SerializeError::UnsupportedGate`] for explicit-unitary gates.
///
/// # Examples
///
/// ```
/// use mdq_circuit::{serialize, Circuit, Gate, Instruction};
/// use mdq_num::radix::Dims;
///
/// let mut c = Circuit::new(Dims::new(vec![3])?);
/// c.push(Instruction::local(0, Gate::fourier()))?;
/// let text = serialize::to_text(&c)?;
/// let back = serialize::from_text(&text)?;
/// assert_eq!(c, back);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_text(circuit: &Circuit) -> Result<String, SerializeError> {
    use std::fmt::Write as _;
    let mut out = String::from("mdqc 1\n");
    out.push_str("dims");
    for d in circuit.dims().as_slice() {
        let _ = write!(out, " {d}");
    }
    out.push('\n');
    for (index, instr) in circuit.iter().enumerate() {
        out.push_str(&instruction_text(instr, index)?);
        out.push('\n');
    }
    Ok(out)
}

/// The textual form of one instruction (gate body plus control tail), shared
/// by [`to_text`] and [`to_line`].
///
/// Angles are written through Rust's shortest-round-trip float formatting,
/// which is guaranteed to parse back to the **bit-identical** `f64` for every
/// finite value (including `-0.0` and subnormals) — the property the engine's
/// snapshot format depends on, pinned by the serialize round-trip proptests.
fn instruction_text(instr: &Instruction, index: usize) -> Result<String, SerializeError> {
    use std::fmt::Write as _;
    let mut out = match &instr.gate {
        Gate::Givens { lo, hi, theta, phi } => {
            format!(
                "givens q{} lo{lo} hi{hi} theta{theta} phi{phi}",
                instr.qudit
            )
        }
        Gate::ZRotation { lo, hi, theta } => {
            format!("zrot q{} lo{lo} hi{hi} theta{theta}", instr.qudit)
        }
        Gate::PhaseLevel { level, angle } => {
            format!("phase q{} level{level} angle{angle}", instr.qudit)
        }
        Gate::Shift { amount } => format!("shift q{} amount{amount}", instr.qudit),
        Gate::Fourier { inverse: false } => format!("fourier q{}", instr.qudit),
        Gate::Fourier { inverse: true } => format!("fourier- q{}", instr.qudit),
        Gate::Unitary(_) => return Err(SerializeError::UnsupportedGate { index }),
    };
    if !instr.controls.is_empty() {
        out.push_str(" ctrl");
        for c in &instr.controls {
            let _ = write!(out, " {}@{}", c.qudit, c.level);
        }
    }
    Ok(out)
}

/// Serializes a circuit **body** to a single line: the instructions of
/// [`to_text`]'s format joined by `" ; "`, without the header and `dims`
/// lines (the register travels separately). The empty circuit serializes to
/// the empty string. This is the embedded form used by records that must
/// hold a whole circuit in one field, such as the engine's cache snapshots.
///
/// # Errors
///
/// Returns [`SerializeError::UnsupportedGate`] for explicit-unitary gates.
///
/// # Examples
///
/// ```
/// use mdq_circuit::{serialize, Circuit, Gate, Instruction};
/// use mdq_num::radix::Dims;
///
/// let dims = Dims::new(vec![3, 2])?;
/// let mut c = Circuit::new(dims.clone());
/// c.push(Instruction::local(0, Gate::fourier()))?;
/// c.push(Instruction::local(1, Gate::shift(1)))?;
/// let line = serialize::to_line(&c)?;
/// assert_eq!(line, "fourier q0 ; shift q1 amount1");
/// assert_eq!(serialize::from_line(dims, &line)?, c);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_line(circuit: &Circuit) -> Result<String, SerializeError> {
    let mut out = String::new();
    for (index, instr) in circuit.iter().enumerate() {
        if index > 0 {
            out.push_str(" ; ");
        }
        out.push_str(&instruction_text(instr, index)?);
    }
    Ok(out)
}

/// Parses a single-line circuit body produced by [`to_line`] against the
/// given register. Whitespace-only input yields the empty circuit.
///
/// # Errors
///
/// Returns [`ParseError::BadLine`]/[`ParseError::Invalid`] with `line` set
/// to the **1-based instruction position** within the line.
pub fn from_line(dims: Dims, text: &str) -> Result<Circuit, ParseError> {
    let mut circuit = Circuit::new(dims);
    if text.trim().is_empty() {
        return Ok(circuit);
    }
    for (index, segment) in text.split(';').enumerate() {
        let position = index + 1;
        let instr = parse_instruction(segment.trim()).map_err(|reason| ParseError::BadLine {
            line: position,
            reason,
        })?;
        circuit.push(instr).map_err(|e| ParseError::Invalid {
            line: position,
            reason: e.to_string(),
        })?;
    }
    Ok(circuit)
}

/// Parses a circuit from the `mdqc` text format.
///
/// # Errors
///
/// Returns [`ParseError`] describing the first malformed line, including
/// instructions that fail validation against the declared register.
pub fn from_text(text: &str) -> Result<Circuit, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
    if header != "mdqc 1" {
        return Err(ParseError::BadHeader);
    }
    let (_, dims_line) = lines.next().ok_or(ParseError::BadDims)?;
    let dims_tokens: Vec<&str> = dims_line.split_whitespace().collect();
    if dims_tokens.first() != Some(&"dims") || dims_tokens.len() < 2 {
        return Err(ParseError::BadDims);
    }
    let dims: Vec<usize> = dims_tokens[1..]
        .iter()
        .map(|t| t.parse().map_err(|_| ParseError::BadDims))
        .collect::<Result<_, _>>()?;
    let dims = Dims::new(dims).map_err(|_| ParseError::BadDims)?;

    let mut circuit = Circuit::new(dims);
    for (line, content) in lines {
        let instr =
            parse_instruction(content).map_err(|reason| ParseError::BadLine { line, reason })?;
        circuit.push(instr).map_err(|e| ParseError::Invalid {
            line,
            reason: e.to_string(),
        })?;
    }
    Ok(circuit)
}

/// Formats a raw 64-bit pattern as exactly 16 lowercase hex digits — the
/// *raw-f64-bit* text form shared by the engine's snapshot (`mdqsnap`) and
/// wire (`mdqwire`) formats for values that must round-trip **bit-exactly**
/// where shortest-float formatting cannot (amplitudes, fidelities,
/// tolerances: `-0.0`, subnormals, non-finite values, NaN payloads).
///
/// # Examples
///
/// ```
/// use mdq_circuit::serialize::{bits_from_hex, bits_to_hex};
///
/// let bits = (-0.0f64).to_bits();
/// let text = bits_to_hex(bits);
/// assert_eq!(text, "8000000000000000");
/// assert_eq!(bits_from_hex(&text), Some(bits));
/// ```
#[must_use]
pub fn bits_to_hex(bits: u64) -> String {
    format!("{bits:016x}")
}

/// Parses the 16-hex-digit raw bit pattern written by [`bits_to_hex`].
/// Returns `None` unless the input is exactly 16 hex digits (case is
/// accepted; canonical output is lowercase) — length is enforced so a
/// truncated value is a parse error, never a silently shortened bit
/// pattern.
#[must_use]
pub fn bits_from_hex(text: &str) -> Option<u64> {
    // `from_str_radix` tolerates a leading sign; a bit pattern must be
    // exactly 16 hex digits and nothing else.
    if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

fn parse_instruction(line: &str) -> Result<Instruction, String> {
    let mut tokens = line.split_whitespace();
    let kind = tokens.next().ok_or("empty line")?;
    let mut rest: Vec<&str> = tokens.collect();

    // Split off the control tail.
    let mut controls = Vec::new();
    if let Some(pos) = rest.iter().position(|&t| t == "ctrl") {
        for spec in rest.split_off(pos).into_iter().skip(1) {
            let (q, l) = spec
                .split_once('@')
                .ok_or_else(|| format!("bad control '{spec}', expected q@level"))?;
            controls.push(Control::new(
                q.parse().map_err(|_| format!("bad control qudit '{q}'"))?,
                l.parse().map_err(|_| format!("bad control level '{l}'"))?,
            ));
        }
    }

    let field = |prefix: &str| -> Result<&str, String> {
        rest.iter()
            .find_map(|t| t.strip_prefix(prefix))
            .ok_or_else(|| format!("missing field '{prefix}'"))
    };
    let usize_field = |prefix: &str| -> Result<usize, String> {
        field(prefix)?
            .parse()
            .map_err(|_| format!("bad integer for '{prefix}'"))
    };
    let f64_field = |prefix: &str| -> Result<f64, String> {
        field(prefix)?
            .parse()
            .map_err(|_| format!("bad number for '{prefix}'"))
    };

    let qudit = usize_field("q")?;
    let gate = match kind {
        "givens" => Gate::Givens {
            lo: usize_field("lo")?,
            hi: usize_field("hi")?,
            theta: f64_field("theta")?,
            phi: f64_field("phi")?,
        },
        "zrot" => Gate::ZRotation {
            lo: usize_field("lo")?,
            hi: usize_field("hi")?,
            theta: f64_field("theta")?,
        },
        "phase" => Gate::PhaseLevel {
            level: usize_field("level")?,
            angle: f64_field("angle")?,
        },
        "shift" => Gate::Shift {
            amount: field("amount")?
                .parse()
                .map_err(|_| "bad integer for 'amount'".to_owned())?,
        },
        "fourier" => Gate::Fourier { inverse: false },
        "fourier-" => Gate::Fourier { inverse: true },
        other => return Err(format!("unknown gate '{other}'")),
    };
    Ok(Instruction::controlled(qudit, gate, controls))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_num::matrix::CMatrix;

    fn sample() -> Circuit {
        let mut c = Circuit::new(Dims::new(vec![3, 6, 2]).unwrap());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::givens(2, 4, 1.25, -0.75),
            vec![Control::new(0, 2)],
        ))
        .unwrap();
        c.push(Instruction::controlled(
            2,
            Gate::z_rotation(0, 1, 0.5),
            vec![Control::new(0, 1), Control::new(1, 3)],
        ))
        .unwrap();
        c.push(Instruction::local(2, Gate::phase(1, -2.5))).unwrap();
        c.push(Instruction::local(1, Gate::shift(-2))).unwrap();
        c.push(Instruction::local(0, Gate::fourier_inverse()))
            .unwrap();
        c
    }

    #[test]
    fn round_trip_preserves_circuit() {
        let c = sample();
        let text = to_text(&c).unwrap();
        let back = from_text(&text).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "mdqc 1\n\n# a comment\ndims 2 2\n\nshift q0 amount1\n# end\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unitary_gates_are_rejected() {
        let mut c = Circuit::new(Dims::new(vec![2]).unwrap());
        c.push(Instruction::local(0, Gate::Unitary(CMatrix::identity(2))))
            .unwrap();
        assert_eq!(
            to_text(&c).unwrap_err(),
            SerializeError::UnsupportedGate { index: 0 }
        );
    }

    #[test]
    fn bad_header_is_rejected() {
        assert_eq!(
            from_text("qasm 2\ndims 2\n").unwrap_err(),
            ParseError::BadHeader
        );
        assert_eq!(from_text("").unwrap_err(), ParseError::BadHeader);
    }

    #[test]
    fn bad_dims_are_rejected() {
        assert_eq!(
            from_text("mdqc 1\ndims\n").unwrap_err(),
            ParseError::BadDims
        );
        assert_eq!(
            from_text("mdqc 1\ndims 2 x\n").unwrap_err(),
            ParseError::BadDims
        );
        assert_eq!(
            from_text("mdqc 1\ndims 1 2\n").unwrap_err(),
            ParseError::BadDims
        );
    }

    #[test]
    fn bad_gate_lines_carry_line_numbers() {
        let err = from_text("mdqc 1\ndims 2 2\nwarp q0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 3, .. }), "{err}");
        let err = from_text("mdqc 1\ndims 2 2\ngivens q0 lo0 hi1 theta0.5\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 3, .. }), "{err}");
    }

    #[test]
    fn invalid_instructions_fail_validation() {
        // Level 5 does not exist on a qubit.
        let err = from_text("mdqc 1\ndims 2 2\ngivens q0 lo0 hi5 theta0.5 phi0\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid { line: 3, .. }), "{err}");
    }

    #[test]
    fn malformed_controls_are_reported() {
        let err = from_text("mdqc 1\ndims 2 2\nshift q0 amount1 ctrl 1-0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { .. }), "{err}");
    }

    #[test]
    fn line_round_trip_preserves_circuit() {
        let c = sample();
        let line = to_line(&c).unwrap();
        assert!(!line.contains('\n'), "single line form");
        let back = from_line(c.dims().clone(), &line).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn empty_circuit_round_trips_through_the_line_form() {
        let dims = Dims::new(vec![2, 3]).unwrap();
        let c = Circuit::new(dims.clone());
        let line = to_line(&c).unwrap();
        assert!(line.is_empty());
        assert_eq!(from_line(dims.clone(), &line).unwrap(), c);
        assert_eq!(from_line(dims, "   ").unwrap(), c);
    }

    #[test]
    fn line_errors_carry_the_instruction_position() {
        let dims = Dims::new(vec![2, 2]).unwrap();
        let err = from_line(dims.clone(), "shift q0 amount1 ; warp q1").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 2, .. }), "{err}");
        // Validation failures too: level 5 does not exist on a qubit.
        let err = from_line(dims.clone(), "phase q0 level5 angle0.5").unwrap_err();
        assert!(matches!(err, ParseError::Invalid { line: 1, .. }), "{err}");
        // An empty segment between separators is malformed, not skipped.
        let err = from_line(dims, "shift q0 amount1 ; ; shift q1 amount1").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 2, .. }), "{err}");
    }

    #[test]
    fn line_form_rejects_unitary_gates() {
        let mut c = Circuit::new(Dims::new(vec![2]).unwrap());
        c.push(Instruction::local(0, Gate::Unitary(CMatrix::identity(2))))
            .unwrap();
        assert_eq!(
            to_line(&c).unwrap_err(),
            SerializeError::UnsupportedGate { index: 0 }
        );
    }

    #[test]
    fn bit_hex_round_trips_every_f64_class() {
        for value in [
            0.0,
            -0.0,
            1.0,
            -1.5e-308, // subnormal
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let text = bits_to_hex(value.to_bits());
            assert_eq!(text.len(), 16);
            assert_eq!(bits_from_hex(&text), Some(value.to_bits()));
        }
        assert_eq!(
            bits_from_hex("00000000000000FF"),
            Some(0xff),
            "case-insensitive"
        );
        assert_eq!(bits_from_hex("0"), None, "short input rejected");
        assert_eq!(
            bits_from_hex("00000000000000000"),
            None,
            "long input rejected"
        );
        assert_eq!(bits_from_hex("000000000000000g"), None, "non-hex rejected");
        assert_eq!(bits_from_hex("+000000000000001"), None, "sign rejected");
    }

    #[test]
    fn parsed_gates_act_identically() {
        // The textual round trip must preserve semantics bit-for-bit; check
        // the matrices of the round-tripped gates.
        let c = sample();
        let back = from_text(&to_text(&c).unwrap()).unwrap();
        for (a, b) in c.iter().zip(back.iter()) {
            let d = c.dims().dim(a.qudit);
            assert!(a.gate.matrix(d).approx_eq(&b.gate.matrix(d), 0.0));
        }
    }
}
