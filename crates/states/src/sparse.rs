//! Sparse `(digits, amplitude)` generators for structured states.
//!
//! The dense generators of the crate root materialize the full Hilbert
//! space, which caps registers at a few thousand amplitudes. The structured
//! benchmark families (GHZ, W, embedded W, Dicke, cyclic, basis) have
//! supports linear (or polynomial) in the qudit count, so they pair
//! naturally with [`StateDd::from_sparse`] to scale to registers whose
//! dense vector could never be allocated.
//!
//! [`StateDd::from_sparse`]: https://example.invalid/mdq
//!
//! # Examples
//!
//! ```
//! use mdq_dd::{BuildOptions, StateDd};
//! use mdq_num::radix::Dims;
//! use mdq_states::sparse;
//!
//! // A 16-qudit mixed register: the dense space has ~43 million
//! // amplitudes; the sparse GHZ description has two entries.
//! let dims = Dims::new(vec![3, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2, 5, 3, 2, 3])?;
//! let dd = StateDd::from_sparse(&dims, &sparse::ghz(&dims), BuildOptions::default())?;
//! assert_eq!(dd.node_count(), 1 + 2 * 15);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use mdq_num::radix::Dims;
use mdq_num::Complex;
use rand::Rng;

/// A sparse state: basis-state digits and their amplitudes.
pub type SparseState = Vec<(Vec<usize>, Complex)>;

/// A random sparse state with (at most) `support` distinct basis states and
/// uniformly drawn complex amplitudes — the "random sparse" workload of the
/// build/apply benchmarks, scaling to registers whose dense vector could
/// never be allocated.
///
/// Digits are drawn per qudit, so the cost is `O(support · n)` regardless of
/// the Hilbert-space size. Entries landing on the same basis state are
/// summed by the diagram builder (making the effective support smaller);
/// the amplitudes are left unnormalized, as `StateDd::from_sparse`
/// normalizes anyway.
///
/// # Panics
///
/// Panics if `support` is zero.
pub fn random_sparse<R: Rng + ?Sized>(dims: &Dims, support: usize, rng: &mut R) -> SparseState {
    assert!(support > 0, "support must be positive");
    (0..support)
        .map(|_| {
            let digits: Vec<usize> = dims
                .as_slice()
                .iter()
                .map(|&d| rng.gen_range(0..d))
                .collect();
            let amp = Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            (digits, amp)
        })
        .collect()
}

/// Sparse form of [`ghz`](crate::ghz): `k = min(dims)` diagonal components.
#[must_use]
pub fn ghz(dims: &Dims) -> SparseState {
    let k = dims
        .as_slice()
        .iter()
        .copied()
        .min()
        .expect("non-empty register");
    let amp = Complex::real(1.0 / (k as f64).sqrt());
    (0..k).map(|level| (vec![level; dims.len()], amp)).collect()
}

/// Sparse form of [`w_state`](crate::w_state): one component per excited
/// level of every qudit.
#[must_use]
pub fn w_state(dims: &Dims) -> SparseState {
    let components: usize = dims.as_slice().iter().map(|d| d - 1).sum();
    let amp = Complex::real(1.0 / (components as f64).sqrt());
    let mut entries = Vec::with_capacity(components);
    for (qudit, &d) in dims.as_slice().iter().enumerate() {
        for level in 1..d {
            let mut digits = vec![0; dims.len()];
            digits[qudit] = level;
            entries.push((digits, amp));
        }
    }
    entries
}

/// Sparse form of [`embedded_w`](crate::embedded_w): one level-1 component
/// per qudit.
#[must_use]
pub fn embedded_w(dims: &Dims) -> SparseState {
    let n = dims.len();
    let amp = Complex::real(1.0 / (n as f64).sqrt());
    (0..n)
        .map(|qudit| {
            let mut digits = vec![0; n];
            digits[qudit] = 1;
            (digits, amp)
        })
        .collect()
}

/// Sparse form of [`basis_state`](crate::basis_state).
///
/// # Panics
///
/// Panics if the digits are out of range for the register.
#[must_use]
pub fn basis_state(dims: &Dims, digits: &[usize]) -> SparseState {
    // Validate through index_of.
    let _ = dims.index_of(digits);
    vec![(digits.to_vec(), Complex::ONE)]
}

/// Sparse form of [`dicke`](crate::dicke): `C(n, k)` components with exactly
/// `k` qudits at level 1.
///
/// # Panics
///
/// Panics if `k > dims.len()`.
#[must_use]
pub fn dicke(dims: &Dims, k: usize) -> SparseState {
    let n = dims.len();
    assert!(k <= n, "cannot excite {k} of {n} qudits");
    let mut entries = Vec::new();
    let mut pattern = vec![0usize; n];
    collect_dicke(&mut pattern, 0, k, &mut entries);
    let amp = Complex::real(1.0 / (entries.len() as f64).sqrt());
    entries.into_iter().map(|digits| (digits, amp)).collect()
}

fn collect_dicke(pattern: &mut Vec<usize>, from: usize, left: usize, out: &mut Vec<Vec<usize>>) {
    if left == 0 {
        out.push(pattern.clone());
        return;
    }
    let n = pattern.len();
    if from + left > n {
        return;
    }
    // Exclude `from`.
    collect_dicke(pattern, from + 1, left, out);
    // Include `from`.
    pattern[from] = 1;
    collect_dicke(pattern, from + 1, left - 1, out);
    pattern[from] = 0;
}

/// Sparse form of [`cyclic`](crate::cyclic): the distinct representable
/// rotations of `seed`.
///
/// # Panics
///
/// Panics if `seed` mismatches the register or no rotation is representable.
#[must_use]
pub fn cyclic(dims: &Dims, seed: &[usize]) -> SparseState {
    assert_eq!(seed.len(), dims.len(), "seed length mismatch");
    let n = dims.len();
    let mut components: Vec<Vec<usize>> = Vec::new();
    for shift in 0..n {
        let rotated: Vec<usize> = (0..n).map(|i| seed[(i + shift) % n]).collect();
        if rotated
            .iter()
            .zip(dims.as_slice())
            .all(|(&digit, &d)| digit < d)
            && !components.contains(&rotated)
        {
            components.push(rotated);
        }
    }
    assert!(!components.is_empty(), "no representable rotation of seed");
    let amp = Complex::real(1.0 / (components.len() as f64).sqrt());
    components.into_iter().map(|digits| (digits, amp)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    /// Densifies a sparse state for comparison with the dense generators.
    fn densify(dims: &Dims, entries: &SparseState) -> Vec<Complex> {
        let mut amps = vec![Complex::ZERO; dims.space_size()];
        for (digits, amp) in entries {
            amps[dims.index_of(digits)] += *amp;
        }
        amps
    }

    #[test]
    fn sparse_generators_match_dense_generators() {
        let d = dims(&[3, 6, 2]);
        let pairs: Vec<(Vec<Complex>, SparseState)> = vec![
            (crate::ghz(&d), ghz(&d)),
            (crate::w_state(&d), w_state(&d)),
            (crate::embedded_w(&d), embedded_w(&d)),
            (crate::dicke(&d, 2), dicke(&d, 2)),
            (
                crate::basis_state(&d, &[2, 4, 1]),
                basis_state(&d, &[2, 4, 1]),
            ),
            (crate::cyclic(&d, &[1, 0, 0]), cyclic(&d, &[1, 0, 0])),
        ];
        for (i, (dense, sparse)) in pairs.iter().enumerate() {
            let from_sparse = densify(&d, sparse);
            for (a, b) in dense.iter().zip(from_sparse.iter()) {
                assert!(a.approx_eq(*b, 1e-12), "family {i}");
            }
        }
    }

    #[test]
    fn sparse_supports_are_minimal() {
        let d = dims(&[9, 5, 6, 3]);
        assert_eq!(ghz(&d).len(), 3);
        assert_eq!(w_state(&d).len(), 19);
        assert_eq!(embedded_w(&d).len(), 4);
        assert_eq!(basis_state(&d, &[0, 0, 0, 0]).len(), 1);
    }

    #[test]
    fn dicke_enumerates_choose_patterns() {
        let d = dims(&[2; 6]);
        assert_eq!(dicke(&d, 3).len(), 20); // C(6,3)
        assert_eq!(dicke(&d, 0).len(), 1);
        assert_eq!(dicke(&d, 6).len(), 1);
    }

    #[test]
    fn random_sparse_is_seeded_and_in_range() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let pattern: Vec<usize> = (0..30).map(|i| 2 + (i % 5)).collect();
        let d = dims(&pattern);
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_sparse(&d, 12, &mut rng);
        assert_eq!(a.len(), 12);
        for (digits, _) in &a {
            assert_eq!(digits.len(), d.len());
            for (&digit, &dim) in digits.iter().zip(d.as_slice()) {
                assert!(digit < dim);
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        let b = random_sparse(&d, 12, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn generators_scale_to_large_registers() {
        // 24 qudits — impossible densely, trivial sparsely.
        let pattern: Vec<usize> = (0..24).map(|i| 2 + (i % 4)).collect();
        let d = dims(&pattern);
        assert_eq!(ghz(&d).len(), 2);
        assert_eq!(
            w_state(&d).len(),
            pattern.iter().map(|x| x - 1).sum::<usize>()
        );
        assert_eq!(embedded_w(&d).len(), 24);
    }
}
