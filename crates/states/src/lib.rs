//! Benchmark quantum-state generators for mixed-dimensional qudit systems.
//!
//! These are the workloads of the paper's evaluation (Table 1):
//!
//! * [`ghz`] — the mixed-dimensional GHZ state
//!   `1/√k (|0…0⟩ + |1…1⟩ + … + |k−1,…,k−1⟩)` with `k = min(dims)`;
//! * [`w_state`] — the all-levels W generalization: one component per
//!   excited level of every qudit (`Σ(dᵢ−1)` components), the variant whose
//!   operation counts reproduce the paper's W rows;
//! * [`embedded_w`] — the *n*-qubit W state embedded into levels {0, 1} of
//!   each qudit (Yeh, *Scaling W state circuits in the qudit Clifford
//!   hierarchy*, 2023 — reference \[27\] of the paper);
//! * [`random_state`] — dense random states ("amplitudes generated from a
//!   uniform distribution"), with selectable [`RandomKind`];
//!
//! plus generators used by the examples and extension benchmarks:
//! [`uniform`], [`basis_state`], [`product_state`], [`dicke`], and
//! [`cyclic`].
//!
//! All generators return normalized dense amplitude vectors in mixed-radix
//! index order (see [`Dims::index_of`]).
//!
//! # Examples
//!
//! ```
//! use mdq_num::radix::Dims;
//! use mdq_states::{ghz, w_state};
//!
//! let dims = Dims::new(vec![3, 6, 2])?;
//! let g = ghz(&dims);
//! // min dim is 2 ⇒ two components of amplitude 1/√2.
//! assert!((g[dims.index_of(&[0, 0, 0])].re - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
//! assert!((g[dims.index_of(&[1, 1, 1])].re - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
//!
//! // The all-levels W state has Σ(dᵢ−1) = 2+5+1 = 8 components.
//! let w = w_state(&dims);
//! let support = w.iter().filter(|a| a.norm_sqr() > 1e-12).count();
//! assert_eq!(support, 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sparse;

use mdq_num::radix::Dims;
use mdq_num::Complex;
use rand::Rng;

/// The mixed-dimensional GHZ state `1/√k Σ_{l<k} |l,l,…,l⟩` with
/// `k = min(dims)` (reference \[33\] of the paper).
///
/// For uniform qubit registers this is the familiar
/// `(|0…0⟩ + |1…1⟩)/√2`; mixed registers are truncated at the smallest
/// local dimension so every component is a valid basis state.
#[must_use]
pub fn ghz(dims: &Dims) -> Vec<Complex> {
    let k = dims
        .as_slice()
        .iter()
        .copied()
        .min()
        .expect("non-empty register");
    let amp = Complex::real(1.0 / (k as f64).sqrt());
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    for level in 0..k {
        let digits = vec![level; dims.len()];
        amps[dims.index_of(&digits)] = amp;
    }
    amps
}

/// The all-levels W generalization: an equal superposition of every state
/// with exactly one qudit excited to any of its levels `1..dᵢ`,
/// `1/√N Σᵢ Σ_{l=1}^{dᵢ−1} |0,…,l⟩ᵢ,…,0⟩` with `N = Σ(dᵢ−1)`.
///
/// For qubit registers this is the ordinary W state (reference \[34\]); the
/// operation counts it produces under exact synthesis match the paper's
/// W-state rows of Table 1 (37/186/262), which identifies it as the variant
/// benchmarked there.
#[must_use]
pub fn w_state(dims: &Dims) -> Vec<Complex> {
    let components: usize = dims.as_slice().iter().map(|d| d - 1).sum();
    let amp = Complex::real(1.0 / (components as f64).sqrt());
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    for (qudit, &d) in dims.as_slice().iter().enumerate() {
        for level in 1..d {
            let mut digits = vec![0; dims.len()];
            digits[qudit] = level;
            amps[dims.index_of(&digits)] = amp;
        }
    }
    amps
}

/// The *n*-qubit W state embedded into levels {0, 1} of each qudit:
/// `1/√n (|0…01⟩ + |0…10⟩ + … + |10…0⟩)` (reference \[27\]).
#[must_use]
pub fn embedded_w(dims: &Dims) -> Vec<Complex> {
    let n = dims.len();
    let amp = Complex::real(1.0 / (n as f64).sqrt());
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    for qudit in 0..n {
        let mut digits = vec![0; n];
        digits[qudit] = 1;
        amps[dims.index_of(&digits)] = amp;
    }
    amps
}

/// How random amplitudes are drawn by [`random_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RandomKind {
    /// Real and imaginary parts i.i.d. uniform on `(−1, 1)` (default).
    #[default]
    ReImUniform,
    /// Non-negative real amplitudes uniform on `(0, 1)`.
    RealUniform,
    /// Magnitude uniform on `(0, 1)` with phase uniform on `(0, 2π)`.
    MagnitudePhase,
}

/// A dense random state with every amplitude drawn from a uniform
/// distribution, then normalized (the paper's "Random State" benchmark; the
/// exact distribution is unspecified there, so the flavour is selectable).
///
/// With probability 1 every amplitude is distinct and nonzero, so the
/// decision diagram is a full tree and "DistinctC" equals the edge count —
/// exactly the behaviour of the Random rows of Table 1.
pub fn random_state<R: Rng + ?Sized>(dims: &Dims, kind: RandomKind, rng: &mut R) -> Vec<Complex> {
    let n = dims.space_size();
    let raw: Vec<Complex> = (0..n)
        .map(|_| match kind {
            RandomKind::ReImUniform => {
                Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            }
            RandomKind::RealUniform => Complex::real(rng.gen_range(0.0..1.0)),
            RandomKind::MagnitudePhase => Complex::from_polar(
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..std::f64::consts::TAU),
            ),
        })
        .collect();
    normalize(raw)
}

/// The uniform superposition over all basis states.
#[must_use]
pub fn uniform(dims: &Dims) -> Vec<Complex> {
    let n = dims.space_size();
    vec![Complex::real(1.0 / (n as f64).sqrt()); n]
}

/// The basis state `|digits⟩`.
///
/// # Panics
///
/// Panics if the digits are out of range for the register.
#[must_use]
pub fn basis_state(dims: &Dims, digits: &[usize]) -> Vec<Complex> {
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    amps[dims.index_of(digits)] = Complex::ONE;
    amps
}

/// A product state `⊗ᵢ |ψᵢ⟩` from local amplitude vectors (each normalized
/// internally).
///
/// # Panics
///
/// Panics if the number of factors or any factor length mismatches the
/// register, or if a factor has zero norm.
#[must_use]
pub fn product_state(dims: &Dims, factors: &[Vec<Complex>]) -> Vec<Complex> {
    assert_eq!(factors.len(), dims.len(), "need one local factor per qudit");
    for (i, f) in factors.iter().enumerate() {
        assert_eq!(f.len(), dims.dim(i), "factor {i} has wrong dimension");
        assert!(mdq_num::norm(f) > 1e-12, "factor {i} has zero norm");
    }
    let mut amps = Vec::with_capacity(dims.space_size());
    for digits in dims.iter_basis() {
        let mut a = Complex::ONE;
        for (i, &digit) in digits.iter().enumerate() {
            a *= factors[i][digit];
        }
        amps.push(a);
    }
    normalize(amps)
}

/// The Dicke-style state with exactly `k` qudits excited to level 1 (and
/// every other qudit at level 0), in equal superposition — the qudit
/// embedding of the qubit Dicke state `|D^n_k⟩`.
///
/// # Panics
///
/// Panics if `k > dims.len()`.
#[must_use]
pub fn dicke(dims: &Dims, k: usize) -> Vec<Complex> {
    let n = dims.len();
    assert!(k <= n, "cannot excite {k} of {n} qudits");
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    let mut count = 0usize;
    // Enumerate all n-choose-k excitation patterns via bitmasks.
    for mask in 0u64..(1 << n) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let digits: Vec<usize> = (0..n).map(|i| usize::from(mask >> i & 1 == 1)).collect();
        amps[dims.index_of(&digits)] = Complex::ONE;
        count += 1;
    }
    let amp = Complex::real(1.0 / (count as f64).sqrt());
    for a in &mut amps {
        if a.norm_sqr() > 0.0 {
            *a = amp;
        }
    }
    amps
}

/// A cyclic state: the equal superposition of all distinct cyclic rotations
/// of the digit string `seed` (cf. Mozafari, Yang, De Micheli, *Efficient
/// preparation of cyclic quantum states*, ASP-DAC 2022 — reference \[24\]).
///
/// Rotations that would move a digit onto a qudit too small to hold it are
/// skipped, which keeps the construction well-defined on mixed registers.
///
/// # Panics
///
/// Panics if `seed` is out of range for the register or no rotation is
/// representable.
#[must_use]
pub fn cyclic(dims: &Dims, seed: &[usize]) -> Vec<Complex> {
    assert_eq!(seed.len(), dims.len(), "seed length mismatch");
    let n = dims.len();
    let mut components = Vec::new();
    for shift in 0..n {
        let rotated: Vec<usize> = (0..n).map(|i| seed[(i + shift) % n]).collect();
        if rotated
            .iter()
            .zip(dims.as_slice())
            .all(|(&digit, &d)| digit < d)
        {
            let idx = dims.index_of(&rotated);
            if !components.contains(&idx) {
                components.push(idx);
            }
        }
    }
    assert!(!components.is_empty(), "no representable rotation of seed");
    let amp = Complex::real(1.0 / (components.len() as f64).sqrt());
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    for idx in components {
        amps[idx] = amp;
    }
    amps
}

fn normalize(mut amps: Vec<Complex>) -> Vec<Complex> {
    let norm = mdq_num::norm(&amps);
    assert!(norm > 1e-12, "state has zero norm");
    for a in &mut amps {
        *a = *a / norm;
    }
    amps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn assert_normalized(amps: &[Complex]) {
        let total: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((total - 1.0).abs() < 1e-12, "norm² = {total}");
    }

    fn support(amps: &[Complex]) -> usize {
        amps.iter().filter(|a| a.norm_sqr() > 1e-15).count()
    }

    #[test]
    fn ghz_uses_min_dimension_components() {
        let d = dims(&[3, 6, 2]);
        let g = ghz(&d);
        assert_normalized(&g);
        assert_eq!(support(&g), 2);
        let d = dims(&[4, 7, 4, 4, 3, 5]);
        let g = ghz(&d);
        assert_eq!(support(&g), 3);
        assert_normalized(&g);
    }

    #[test]
    fn ghz_on_uniform_qutrits_matches_example_three() {
        // The paper's Example 3: (|00⟩ + |11⟩ + |22⟩)/√3.
        let d = dims(&[3, 3]);
        let g = ghz(&d);
        let a = 1.0 / 3.0_f64.sqrt();
        for k in 0..3 {
            assert!((g[d.index_of(&[k, k])].re - a).abs() < 1e-12);
        }
        assert_eq!(support(&g), 3);
    }

    #[test]
    fn w_state_component_counts() {
        for (v, expected) in [
            (vec![3usize, 6, 2], 8usize), // 2+5+1
            (vec![9, 5, 6, 3], 19),       // 8+4+5+2
            (vec![4, 7, 4, 4, 3, 5], 21), // 3+6+3+3+2+4
        ] {
            let d = dims(&v);
            let w = w_state(&d);
            assert_eq!(support(&w), expected, "dims {v:?}");
            assert_normalized(&w);
        }
    }

    #[test]
    fn w_state_components_have_single_excitation() {
        let d = dims(&[3, 4]);
        let w = w_state(&d);
        for (i, a) in w.iter().enumerate() {
            if a.norm_sqr() > 1e-15 {
                let digits = d.digits_of(i);
                let excited = digits.iter().filter(|&&x| x > 0).count();
                assert_eq!(excited, 1, "component {digits:?}");
            }
        }
    }

    #[test]
    fn embedded_w_has_one_component_per_qudit() {
        let d = dims(&[9, 5, 6, 3]);
        let w = embedded_w(&d);
        assert_eq!(support(&w), 4);
        assert_normalized(&w);
        // Every component uses only levels {0,1}.
        for (i, a) in w.iter().enumerate() {
            if a.norm_sqr() > 1e-15 {
                assert!(d.digits_of(i).iter().all(|&x| x <= 1));
            }
        }
    }

    #[test]
    fn embedded_w_on_qubits_equals_w_state() {
        let d = dims(&[2, 2, 2]);
        let a = embedded_w(&d);
        let b = w_state(&d);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn random_state_is_dense_and_seeded() {
        let d = dims(&[3, 6, 2]);
        let mut rng = StdRng::seed_from_u64(7);
        let r1 = random_state(&d, RandomKind::ReImUniform, &mut rng);
        assert_normalized(&r1);
        assert_eq!(support(&r1), d.space_size());
        // Same seed reproduces the state.
        let mut rng = StdRng::seed_from_u64(7);
        let r2 = random_state(&d, RandomKind::ReImUniform, &mut rng);
        assert_eq!(r1, r2);
        // Different seed differs.
        let mut rng = StdRng::seed_from_u64(8);
        let r3 = random_state(&d, RandomKind::ReImUniform, &mut rng);
        assert_ne!(r1, r3);
    }

    #[test]
    fn random_kinds_respect_their_distributions() {
        let d = dims(&[4, 4]);
        let mut rng = StdRng::seed_from_u64(3);
        let real = random_state(&d, RandomKind::RealUniform, &mut rng);
        assert!(real.iter().all(|a| a.im == 0.0 && a.re >= 0.0));
        let polar = random_state(&d, RandomKind::MagnitudePhase, &mut rng);
        assert_normalized(&polar);
        assert!(polar.iter().any(|a| a.im != 0.0));
    }

    #[test]
    fn uniform_state_is_flat() {
        let d = dims(&[3, 2]);
        let u = uniform(&d);
        assert_normalized(&u);
        let a = 1.0 / 6.0_f64.sqrt();
        assert!(u.iter().all(|x| (x.re - a).abs() < 1e-12 && x.im == 0.0));
    }

    #[test]
    fn basis_state_is_one_hot() {
        let d = dims(&[3, 4]);
        let b = basis_state(&d, &[2, 1]);
        assert_eq!(support(&b), 1);
        assert!(b[d.index_of(&[2, 1])].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn product_state_factorizes() {
        let d = dims(&[2, 3]);
        let plus = vec![Complex::ONE, Complex::ONE];
        let skew = vec![Complex::real(1.0), Complex::real(2.0), Complex::real(2.0)];
        let p = product_state(&d, &[plus, skew]);
        assert_normalized(&p);
        // amplitude(|i,j⟩) ∝ 1 · skew[j]
        let a00 = p[d.index_of(&[0, 0])];
        let a01 = p[d.index_of(&[0, 1])];
        assert!((a01.re / a00.re - 2.0).abs() < 1e-12);
        let a10 = p[d.index_of(&[1, 0])];
        assert!(a10.approx_eq(a00, 1e-12));
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn product_state_checks_factor_lengths() {
        let d = dims(&[2, 3]);
        let _ = product_state(&d, &[vec![Complex::ONE; 2], vec![Complex::ONE; 2]]);
    }

    #[test]
    fn dicke_counts_choose_patterns() {
        let d = dims(&[2, 3, 2, 4]);
        let s = dicke(&d, 2);
        assert_eq!(support(&s), 6); // C(4,2)
        assert_normalized(&s);
        for (i, a) in s.iter().enumerate() {
            if a.norm_sqr() > 1e-15 {
                let digits = d.digits_of(i);
                assert_eq!(digits.iter().sum::<usize>(), 2);
                assert!(digits.iter().all(|&x| x <= 1));
            }
        }
    }

    #[test]
    fn dicke_zero_is_ground_state() {
        let d = dims(&[3, 2]);
        let s = dicke(&d, 0);
        assert_eq!(support(&s), 1);
        assert!(s[0].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn cyclic_superposes_rotations() {
        let d = dims(&[3, 3, 3]);
        let s = cyclic(&d, &[0, 1, 2]);
        assert_eq!(support(&s), 3);
        assert_normalized(&s);
        assert!(s[d.index_of(&[0, 1, 2])].norm_sqr() > 0.0);
        assert!(s[d.index_of(&[1, 2, 0])].norm_sqr() > 0.0);
        assert!(s[d.index_of(&[2, 0, 1])].norm_sqr() > 0.0);
    }

    #[test]
    fn cyclic_deduplicates_fixed_points() {
        let d = dims(&[2, 2]);
        let s = cyclic(&d, &[1, 1]);
        assert_eq!(support(&s), 1);
    }

    #[test]
    fn cyclic_skips_unrepresentable_rotations() {
        // Rotating [2,0] onto a qubit position is invalid and skipped.
        let d = dims(&[3, 2]);
        let s = cyclic(&d, &[2, 0]);
        assert_eq!(support(&s), 1);
        assert!(s[d.index_of(&[2, 0])].norm_sqr() > 0.0);
    }

    #[test]
    fn all_generators_are_normalized_across_registers() {
        for v in [vec![2usize, 2], vec![3, 6, 2], vec![9, 5, 6, 3]] {
            let d = dims(&v);
            assert_normalized(&ghz(&d));
            assert_normalized(&w_state(&d));
            assert_normalized(&embedded_w(&d));
            assert_normalized(&uniform(&d));
            let mut rng = StdRng::seed_from_u64(1);
            assert_normalized(&random_state(&d, RandomKind::default(), &mut rng));
        }
    }
}
