//! Dense mixed-radix state-vector simulator for mixed-dimensional qudit
//! circuits.
//!
//! The paper's evaluation reports the *fidelity* actually reached by the
//! synthesized circuits; verifying that requires executing mixed-dimensional
//! circuits on a classical simulator (the authors use their DD-based
//! simulator from QCE 2023). This crate provides a straightforward dense
//! simulator: a [`StateVector`] over a mixed-radix register to which
//! [`Instruction`]s and whole [`Circuit`]s are applied exactly.
//!
//! Dense simulation is exponential in the number of qudits, which is fine
//! for verification at the paper's benchmark sizes (the largest Table 1
//! register has 6720 basis states).
//!
//! # Examples
//!
//! ```
//! use mdq_circuit::{Circuit, Control, Gate, Instruction};
//! use mdq_num::radix::Dims;
//! use mdq_sim::StateVector;
//!
//! // Prepare the two-qutrit GHZ state of the paper's Figure 1.
//! let dims = Dims::new(vec![3, 3])?;
//! let mut circuit = Circuit::new(dims.clone());
//! circuit.push(Instruction::local(0, Gate::fourier()))?;
//! circuit.push(Instruction::controlled(1, Gate::shift(1), vec![Control::new(0, 1)]))?;
//! circuit.push(Instruction::controlled(1, Gate::shift(2), vec![Control::new(0, 2)]))?;
//!
//! let mut state = StateVector::ground(dims.clone());
//! state.apply_circuit(&circuit);
//!
//! let p00 = state.probability(&[0, 0]);
//! let p11 = state.probability(&[1, 1]);
//! let p22 = state.probability(&[2, 2]);
//! assert!((p00 - 1.0 / 3.0).abs() < 1e-12);
//! assert!((p11 - 1.0 / 3.0).abs() < 1e-12);
//! assert!((p22 - 1.0 / 3.0).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use mdq_circuit::{Circuit, Gate, Instruction};
use mdq_num::matrix::CMatrix;
use mdq_num::radix::Dims;
use mdq_num::Complex;

/// Errors produced when constructing a [`StateVector`] from amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The amplitude vector length does not match the register size.
    WrongLength {
        /// Expected `dims.space_size()`.
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// The amplitude vector has zero norm.
    ZeroNorm,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WrongLength { expected, got } => {
                write!(f, "amplitude vector has length {got}, expected {expected}")
            }
            SimError::ZeroNorm => write!(f, "amplitude vector has zero norm"),
        }
    }
}

impl std::error::Error for SimError {}

/// A dense pure state of a mixed-dimensional qudit register.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    dims: Dims,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The product ground state `|0…0⟩`.
    #[must_use]
    pub fn ground(dims: Dims) -> Self {
        let mut amps = vec![Complex::ZERO; dims.space_size()];
        amps[0] = Complex::ONE;
        StateVector { dims, amps }
    }

    /// A state from explicit amplitudes (normalized on construction).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the length mismatches the register or the
    /// norm is zero.
    pub fn from_amplitudes(dims: Dims, amplitudes: &[Complex]) -> Result<Self, SimError> {
        if amplitudes.len() != dims.space_size() {
            return Err(SimError::WrongLength {
                expected: dims.space_size(),
                got: amplitudes.len(),
            });
        }
        let norm = mdq_num::norm(amplitudes);
        if norm <= 1e-15 {
            return Err(SimError::ZeroNorm);
        }
        let amps = amplitudes.iter().map(|a| *a / norm).collect();
        Ok(StateVector { dims, amps })
    }

    /// The register layout.
    #[must_use]
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// The amplitudes in mixed-radix index order.
    #[must_use]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// The amplitude of one basis state.
    ///
    /// # Panics
    ///
    /// Panics if the digits are out of range.
    #[must_use]
    pub fn amplitude(&self, digits: &[usize]) -> Complex {
        self.amps[self.dims.index_of(digits)]
    }

    /// The measurement probability of one basis state.
    ///
    /// # Panics
    ///
    /// Panics if the digits are out of range.
    #[must_use]
    pub fn probability(&self, digits: &[usize]) -> f64 {
        self.amplitude(digits).norm_sqr()
    }

    /// The Euclidean norm of the state (1 for any reachable state).
    #[must_use]
    pub fn norm(&self) -> f64 {
        mdq_num::norm(&self.amps)
    }

    /// Fidelity `|⟨self|other⟩|²` with another state over the same register.
    ///
    /// # Panics
    ///
    /// Panics if the registers differ.
    #[must_use]
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.dims, other.dims, "fidelity across different registers");
        mdq_num::fidelity(&self.amps, &other.amps)
    }

    /// Fidelity against a dense amplitude slice (assumed normalized).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn fidelity_with_amplitudes(&self, amplitudes: &[Complex]) -> f64 {
        mdq_num::fidelity(&self.amps, amplitudes)
    }

    /// Applies one instruction in place.
    ///
    /// # Panics
    ///
    /// Panics if the instruction does not fit the register (use
    /// [`Circuit::push`] to build validated circuits).
    pub fn apply(&mut self, instruction: &Instruction) {
        let t = instruction.qudit;
        let n = self.dims.len();
        assert!(t < n, "target qudit {t} out of range");
        let d = self.dims.dim(t);
        let strides = self.dims.strides();
        let stride_t = strides[t];

        // Pre-compute control (stride, dim, level) triples.
        let controls: Vec<(usize, usize, usize)> = instruction
            .controls
            .iter()
            .map(|c| {
                assert!(c.qudit < n, "control qudit {} out of range", c.qudit);
                assert!(c.qudit != t, "control equals target");
                let cd = self.dims.dim(c.qudit);
                assert!(c.level < cd, "control level {} out of range", c.level);
                (strides[c.qudit], cd, c.level)
            })
            .collect();
        let control_ok = |idx: usize| {
            controls
                .iter()
                .all(|&(stride, dim, level)| (idx / stride) % dim == level)
        };

        match &instruction.gate {
            // Two-level gates touch only a 2×2 block of each fiber.
            Gate::Givens { lo, hi, theta, phi } => {
                let c = Complex::real((theta / 2.0).cos());
                let s = (theta / 2.0).sin();
                let a01 = Complex::new(0.0, -1.0) * Complex::cis(-phi) * s;
                let a10 = Complex::new(0.0, -1.0) * Complex::cis(*phi) * s;
                self.for_each_pair(stride_t, d, *lo, *hi, control_ok, |x, y| {
                    (c * x + a01 * y, a10 * x + c * y)
                });
            }
            // Diagonal gates scale amplitudes in place — no fiber gather, no
            // d×d matrix product, one multiplication per touched amplitude.
            Gate::ZRotation { lo, hi, theta } => {
                let mut factors = vec![Complex::ONE; d];
                factors[*lo] = Complex::cis(theta / 2.0);
                factors[*hi] = Complex::cis(-theta / 2.0);
                self.scale_levels(stride_t, d, control_ok, &factors);
            }
            Gate::PhaseLevel { level, angle } => {
                let mut factors = vec![Complex::ONE; d];
                factors[*level] = Complex::cis(*angle);
                self.scale_levels(stride_t, d, control_ok, &factors);
            }
            gate => {
                let m = gate.matrix(d);
                self.apply_fiber_matrix(stride_t, d, control_ok, &m);
            }
        }
    }

    /// Applies a closure to the `(lo, hi)` components of every target fiber
    /// passing the control predicate.
    fn for_each_pair(
        &mut self,
        stride_t: usize,
        d: usize,
        lo: usize,
        hi: usize,
        control_ok: impl Fn(usize) -> bool,
        f: impl Fn(Complex, Complex) -> (Complex, Complex),
    ) {
        for idx in 0..self.amps.len() {
            let digit = (idx / stride_t) % d;
            if digit == 0 && control_ok(idx) {
                let i_lo = idx + lo * stride_t;
                let i_hi = idx + hi * stride_t;
                let (x, y) = f(self.amps[i_lo], self.amps[i_hi]);
                self.amps[i_lo] = x;
                self.amps[i_hi] = y;
            }
        }
    }

    /// Multiplies every amplitude by the per-level factor of its target
    /// digit, skipping identity factors — the in-place fast path for
    /// diagonal gates. Controls sit on other qudits, so the predicate can be
    /// evaluated per element instead of per fiber.
    fn scale_levels(
        &mut self,
        stride_t: usize,
        d: usize,
        control_ok: impl Fn(usize) -> bool,
        factors: &[Complex],
    ) {
        for idx in 0..self.amps.len() {
            let f = factors[(idx / stride_t) % d];
            if f != Complex::ONE && control_ok(idx) {
                self.amps[idx] *= f;
            }
        }
    }

    /// Applies a full `d×d` matrix to every target fiber passing the control
    /// predicate.
    fn apply_fiber_matrix(
        &mut self,
        stride_t: usize,
        d: usize,
        control_ok: impl Fn(usize) -> bool,
        m: &CMatrix,
    ) {
        let size = self.amps.len();
        let mut fiber = vec![Complex::ZERO; d];
        for idx in 0..size {
            let digit = (idx / stride_t) % d;
            if digit != 0 || !control_ok(idx) {
                continue;
            }
            for (k, f) in fiber.iter_mut().enumerate() {
                *f = self.amps[idx + k * stride_t];
            }
            let out = m.mul_vec(&fiber);
            for (k, v) in out.into_iter().enumerate() {
                self.amps[idx + k * stride_t] = v;
            }
        }
    }

    /// Applies every instruction of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's register differs from the state's.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.dims(),
            &self.dims,
            "circuit register differs from state register"
        );
        for instr in circuit.iter() {
            self.apply(instr);
        }
    }

    /// Samples a basis state (as digits) from the measurement distribution.
    /// The caller supplies uniform random numbers in `[0, 1)`.
    pub fn sample(&self, mut uniform: impl FnMut() -> f64) -> Vec<usize> {
        let mut x = uniform();
        for (idx, amp) in self.amps.iter().enumerate() {
            let p = amp.norm_sqr();
            if x < p {
                return self.dims.digits_of(idx);
            }
            x -= p;
        }
        self.dims.digits_of(self.amps.len() - 1)
    }

    /// The marginal measurement distribution of one qudit: entry `l` is the
    /// probability of observing `qudit` at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `qudit` is out of range.
    #[must_use]
    pub fn marginal(&self, qudit: usize) -> Vec<f64> {
        assert!(qudit < self.dims.len(), "qudit {qudit} out of range");
        let d = self.dims.dim(qudit);
        let stride = self.dims.strides()[qudit];
        let mut probs = vec![0.0; d];
        for (idx, amp) in self.amps.iter().enumerate() {
            probs[(idx / stride) % d] += amp.norm_sqr();
        }
        probs
    }

    /// Projectively measures one qudit, collapsing the state in place and
    /// returning the observed level. The caller supplies a uniform random
    /// number in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `qudit` is out of range.
    pub fn measure(&mut self, qudit: usize, uniform: f64) -> usize {
        let probs = self.marginal(qudit);
        let mut x = uniform;
        let mut outcome = probs.len() - 1;
        for (l, &p) in probs.iter().enumerate() {
            if x < p {
                outcome = l;
                break;
            }
            x -= p;
        }
        let d = self.dims.dim(qudit);
        let stride = self.dims.strides()[qudit];
        let renorm = probs[outcome].sqrt();
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            if (idx / stride) % d == outcome {
                *amp = *amp / renorm;
            } else {
                *amp = Complex::ZERO;
            }
        }
        outcome
    }

    /// Extends the register with extra qudits in `|0⟩`, returning the new
    /// state (existing amplitudes occupy the `extra digits = 0` slice).
    ///
    /// Used to run transpiled circuits, whose ancillas extend the register.
    #[must_use]
    pub fn with_ancillas(&self, extra_dims: &[usize]) -> StateVector {
        let mut dims = self.dims.as_slice().to_vec();
        dims.extend_from_slice(extra_dims);
        let dims = Dims::new(dims).expect("extended register is valid");
        let extra: usize = extra_dims.iter().product();
        let mut amps = vec![Complex::ZERO; dims.space_size()];
        for (i, a) in self.amps.iter().enumerate() {
            amps[i * extra] = *a;
        }
        StateVector { dims, amps }
    }

    /// Projects out trailing ancilla qudits that are in `|0⟩`, returning the
    /// reduced state and the probability mass found outside the ancilla
    /// ground space (0 for a correctly uncomputed circuit).
    ///
    /// # Panics
    ///
    /// Panics if `original` exceeds the register length.
    #[must_use]
    pub fn without_ancillas(&self, original: usize) -> (StateVector, f64) {
        assert!(original <= self.dims.len() && original > 0);
        let dims =
            Dims::new(self.dims.as_slice()[..original].to_vec()).expect("prefix register is valid");
        let extra: usize = self.dims.as_slice()[original..].iter().product();
        let mut amps = vec![Complex::ZERO; dims.space_size()];
        let mut leaked = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            if i % extra == 0 {
                amps[i / extra] = *a;
            } else {
                leaked += a.norm_sqr();
            }
        }
        (StateVector { dims, amps }, leaked)
    }
}

impl fmt::Display for StateVector {
    /// Writes the state in ket notation, omitting (numerically) zero terms.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, a) in self.amps.iter().enumerate() {
            if a.is_zero(1e-12) {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            let digits = self.dims.digits_of(i);
            write!(f, "({a})|")?;
            for d in digits {
                write!(f, "{d}")?;
            }
            write!(f, "⟩")?;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_circuit::{Control, Gate};
    use proptest::prelude::*;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    #[test]
    fn ground_state_is_all_zero_ket() {
        let s = StateVector::ground(dims(&[3, 2]));
        assert!((s.probability(&[0, 0]) - 1.0).abs() < 1e-15);
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(dims(&[2]), &[Complex::real(3.0), Complex::real(4.0)])
            .unwrap();
        assert!((s.probability(&[0]) - 0.36).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_rejects_bad_input() {
        assert_eq!(
            StateVector::from_amplitudes(dims(&[2]), &[Complex::ONE]),
            Err(SimError::WrongLength {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            StateVector::from_amplitudes(dims(&[2]), &[Complex::ZERO, Complex::ZERO]),
            Err(SimError::ZeroNorm)
        );
    }

    #[test]
    fn qutrit_hadamard_gives_uniform_superposition() {
        // The paper's Example 2.
        let mut s = StateVector::ground(dims(&[3]));
        s.apply(&Instruction::local(0, Gate::fourier()));
        let a = 1.0 / 3.0_f64.sqrt();
        for k in 0..3 {
            assert!((s.probability(&[k]) - a * a).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_moves_basis_state() {
        let mut s = StateVector::ground(dims(&[4]));
        s.apply(&Instruction::local(0, Gate::shift(3)));
        assert!((s.probability(&[3]) - 1.0).abs() < 1e-12);
        s.apply(&Instruction::local(0, Gate::shift(1)));
        assert!((s.probability(&[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn control_fires_only_on_exact_level() {
        // Put the control qutrit in |1⟩, then in |2⟩; the controlled shift
        // on the qubit fires only at level 1.
        for (ctrl_state, expect_flip) in [(1usize, true), (2usize, false)] {
            let mut s = StateVector::ground(dims(&[3, 2]));
            s.apply(&Instruction::local(0, Gate::shift(ctrl_state as i64)));
            s.apply(&Instruction::controlled(
                1,
                Gate::shift(1),
                vec![Control::new(0, 1)],
            ));
            let expected = if expect_flip {
                [ctrl_state, 1]
            } else {
                [ctrl_state, 0]
            };
            assert!(
                (s.probability(&expected) - 1.0).abs() < 1e-12,
                "ctrl_state {ctrl_state}"
            );
        }
    }

    #[test]
    fn givens_fast_path_matches_matrix_path() {
        let d = dims(&[3, 4]);
        let amps: Vec<Complex> = (0..12)
            .map(|i| Complex::new((i + 1) as f64, (i % 5) as f64))
            .collect();
        let mut fast = StateVector::from_amplitudes(d.clone(), &amps).unwrap();
        let mut slow = fast.clone();
        let gate = Gate::givens(1, 3, 0.8, -0.4);
        fast.apply(&Instruction::controlled(
            1,
            gate.clone(),
            vec![Control::new(0, 2)],
        ));
        // Matrix path via an explicit Unitary gate.
        slow.apply(&Instruction::controlled(
            1,
            Gate::Unitary(gate.matrix(4)),
            vec![Control::new(0, 2)],
        ));
        assert!((fast.fidelity(&slow) - 1.0).abs() < 1e-12);
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn z_rotation_fast_path_matches_matrix_path() {
        let d = dims(&[5]);
        let amps: Vec<Complex> = (0..5).map(|i| Complex::new(1.0, i as f64)).collect();
        let mut fast = StateVector::from_amplitudes(d.clone(), &amps).unwrap();
        let mut slow = fast.clone();
        let gate = Gate::z_rotation(1, 4, 2.2);
        fast.apply(&Instruction::local(0, gate.clone()));
        slow.apply(&Instruction::local(0, Gate::Unitary(gate.matrix(5))));
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn phase_level_fast_path_matches_matrix_path() {
        let d = dims(&[3, 4]);
        let amps: Vec<Complex> = (0..12)
            .map(|i| Complex::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
            .collect();
        let mut fast = StateVector::from_amplitudes(d.clone(), &amps).unwrap();
        let mut slow = fast.clone();
        let gate = Gate::phase(2, 1.3);
        fast.apply(&Instruction::local(1, gate.clone()));
        slow.apply(&Instruction::local(1, Gate::Unitary(gate.matrix(4))));
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn controlled_diagonal_fast_paths_match_matrix_path() {
        // Controls on another qudit: the in-place scaling must only touch
        // amplitudes whose control digit matches.
        let d = dims(&[3, 4]);
        let amps: Vec<Complex> = (0..12)
            .map(|i| Complex::new((i + 1) as f64, -(i as f64) * 0.5))
            .collect();
        for gate in [Gate::phase(3, -0.7), Gate::z_rotation(0, 2, 1.9)] {
            let mut fast = StateVector::from_amplitudes(d.clone(), &amps).unwrap();
            let mut slow = fast.clone();
            fast.apply(&Instruction::controlled(
                1,
                gate.clone(),
                vec![Control::new(0, 2)],
            ));
            slow.apply(&Instruction::controlled(
                1,
                Gate::Unitary(gate.matrix(4)),
                vec![Control::new(0, 2)],
            ));
            for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-12), "gate {gate}");
            }
        }
    }

    #[test]
    fn ghz_circuit_of_figure_one() {
        let d = dims(&[3, 3]);
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(2),
            vec![Control::new(0, 2)],
        ))
        .unwrap();
        let mut s = StateVector::ground(d);
        s.apply_circuit(&c);
        for k in 0..3 {
            assert!((s.probability(&[k, k]) - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!(s.probability(&[0, 1]) < 1e-15);
    }

    #[test]
    fn adjoint_circuit_restores_ground_state() {
        let d = dims(&[3, 2, 4]);
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            2,
            Gate::givens(0, 3, 1.2, 0.5),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        c.push(Instruction::local(1, Gate::givens(0, 1, 0.7, -0.2)))
            .unwrap();
        c.push(Instruction::local(2, Gate::z_rotation(0, 2, 0.9)))
            .unwrap();
        let mut s = StateVector::ground(d);
        s.apply_circuit(&c);
        s.apply_circuit(&c.adjoint());
        assert!((s.probability(&[0, 0, 0]) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ancilla_round_trip() {
        let d = dims(&[3, 2]);
        let mut s = StateVector::ground(d);
        s.apply(&Instruction::local(0, Gate::fourier()));
        let extended = s.with_ancillas(&[2, 2]);
        assert_eq!(extended.dims().as_slice(), &[3, 2, 2, 2]);
        let (back, leaked) = extended.without_ancillas(2);
        assert!(leaked < 1e-15);
        assert!((back.fidelity(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_nonzero_kets() {
        let mut s = StateVector::ground(dims(&[2, 2]));
        s.apply(&Instruction::local(0, Gate::shift(1)));
        assert_eq!(s.to_string(), "(1)|10⟩");
    }

    #[test]
    fn marginal_of_ghz_is_uniform_over_min_levels() {
        let d = dims(&[3, 3]);
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(2),
            vec![Control::new(0, 2)],
        ))
        .unwrap();
        let mut s = StateVector::ground(d);
        s.apply_circuit(&c);
        for q in 0..2 {
            let m = s.marginal(q);
            for p in m {
                assert!((p - 1.0 / 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn measure_collapses_ghz_correlations() {
        // Measuring one half of a GHZ pair determines the other.
        let d = dims(&[3, 3]);
        let a = Complex::real(1.0 / 3.0_f64.sqrt());
        let mut amps = vec![Complex::ZERO; 9];
        for k in 0..3 {
            amps[d.index_of(&[k, k])] = a;
        }
        for (u, expected) in [(0.0, 0usize), (0.5, 1), (0.99, 2)] {
            let mut s = StateVector::from_amplitudes(d.clone(), &amps).unwrap();
            let outcome = s.measure(0, u);
            assert_eq!(outcome, expected);
            assert!((s.norm() - 1.0).abs() < 1e-12);
            assert!((s.probability(&[outcome, outcome]) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn measure_preserves_marginal_of_untouched_qudit() {
        let d = dims(&[2, 3]);
        let mut s = StateVector::ground(d);
        s.apply(&Instruction::local(1, Gate::fourier()));
        let before = s.marginal(1);
        let _ = s.measure(0, 0.3);
        let after = s.marginal(1);
        for (x, y) in before.iter().zip(after.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_returns_only_support_states() {
        let d = dims(&[3, 2]);
        let mut s = StateVector::ground(d);
        s.apply(&Instruction::local(0, Gate::fourier()));
        let mut seq = [0.0, 0.4, 0.99].into_iter();
        // All samples must have the qubit in |0⟩.
        for _ in 0..3 {
            let digits = s.sample(|| seq.next().unwrap_or(0.5));
            assert_eq!(digits[1], 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_gates_preserve_norm(
            theta in -6.0..6.0f64,
            phi in -6.0..6.0f64,
            seed in 0u64..1000,
        ) {
            let d = dims(&[3, 2, 4]);
            let n = d.space_size();
            let amps: Vec<Complex> = (0..n)
                .map(|i| {
                    let x = ((i as u64 + 1) * (seed + 7)) % 97;
                    Complex::new(x as f64 / 97.0 - 0.5, ((x * 31) % 89) as f64 / 89.0 - 0.5)
                })
                .collect();
            prop_assume!(mdq_num::norm(&amps) > 1e-6);
            let mut s = StateVector::from_amplitudes(d, &amps).unwrap();
            s.apply(&Instruction::local(2, Gate::givens(1, 3, theta, phi)));
            s.apply(&Instruction::controlled(
                0,
                Gate::z_rotation(0, 2, theta),
                vec![Control::new(1, 1)],
            ));
            s.apply(&Instruction::local(1, Gate::fourier()));
            prop_assert!((s.norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_apply_then_adjoint_is_identity(
            theta in -6.0..6.0f64,
            phi in -6.0..6.0f64,
            lo in 0usize..3,
        ) {
            let d = dims(&[4, 2]);
            let gate = Gate::givens(lo, 3, theta, phi);
            let mut s = StateVector::ground(d.clone());
            s.apply(&Instruction::local(0, Gate::fourier()));
            let before = s.clone();
            let instr = Instruction::controlled(0, gate, vec![Control::new(1, 0)]);
            s.apply(&instr);
            s.apply(&instr.adjoint());
            prop_assert!((s.fidelity(&before) - 1.0).abs() < 1e-9);
        }
    }
}
