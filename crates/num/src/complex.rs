//! A minimal complex-number type tailored to quantum amplitudes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The type is deliberately small and `Copy`; it implements the arithmetic
/// operators, polar-form helpers, and tolerance-based comparison needed by
/// the decision-diagram package and the simulator.
///
/// # Examples
///
/// ```
/// use mdq_num::Complex;
///
/// let h = Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!(h.approx_eq(Complex::new(0.0, 1.0), 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[must_use]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_num::Complex;
    /// let c = Complex::from_polar(2.0, std::f64::consts::PI);
    /// assert!(c.approx_eq(Complex::new(-2.0, 0.0), 1e-12));
    /// ```
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`; cheaper than [`Complex::abs`] and the
    /// quantity that defines measurement probabilities.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Polar decomposition `(r, θ)` with `z = r·e^{iθ}`.
    #[must_use]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns `Complex::ZERO` components as `inf`/`nan` if `z` is zero, like
    /// plain floating-point division; callers guard with [`Complex::is_zero`].
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Whether both components are within `tol` of zero in magnitude.
    #[must_use]
    pub fn is_zero(self, tol: f64) -> bool {
        self.abs() <= tol
    }

    /// Tolerance-based equality: `|self − other| ≤ tol`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_num::Complex;
    /// assert!(Complex::new(1.0, 0.0).approx_eq(Complex::new(1.0 + 1e-12, 0.0), 1e-9));
    /// ```
    #[must_use]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self - other).abs() <= tol
    }

    /// Whether both components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `e^{iθ}`, a unit phase.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Complex division *is* multiplication by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl DivAssign for Complex {
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.im < 0.0 {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constants_are_correct() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I, Complex::new(0.0, 1.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(-Complex::ONE, TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::new(-0.3, 0.7);
        let (r, t) = z.to_polar();
        assert!(Complex::from_polar(r, t).approx_eq(z, TOL));
    }

    #[test]
    fn division_by_self_is_one() {
        let z = Complex::new(2.5, -1.5);
        assert!((z / z).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn recip_matches_division() {
        let z = Complex::new(0.2, 0.9);
        assert!(z.recip().approx_eq(Complex::ONE / z, TOL));
    }

    #[test]
    fn conj_negates_imaginary_part() {
        assert_eq!(Complex::new(1.0, 2.0).conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn norm_sqr_matches_abs_squared() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z.abs() - 5.0).abs() < TOL);
    }

    #[test]
    fn display_formats_signs() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.5, 0.0).to_string(), "1.5");
    }

    #[test]
    fn sum_accumulates() {
        let s: Complex = [Complex::ONE, Complex::I, Complex::ONE].into_iter().sum();
        assert!(s.approx_eq(Complex::new(2.0, 1.0), TOL));
    }

    #[test]
    fn cis_is_unit_phase() {
        let c = Complex::cis(1.234);
        assert!((c.abs() - 1.0).abs() < TOL);
        assert!((c.arg() - 1.234).abs() < TOL);
    }

    #[test]
    fn is_zero_respects_tolerance() {
        assert!(Complex::new(1e-12, -1e-12).is_zero(1e-9));
        assert!(!Complex::new(1e-6, 0.0).is_zero(1e-9));
    }

    fn arb_complex() -> impl Strategy<Value = Complex> {
        (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| Complex::new(re, im))
    }

    proptest! {
        #[test]
        fn prop_addition_commutes(a in arb_complex(), b in arb_complex()) {
            prop_assert!((a + b).approx_eq(b + a, TOL));
        }

        #[test]
        fn prop_multiplication_commutes(a in arb_complex(), b in arb_complex()) {
            prop_assert!((a * b).approx_eq(b * a, 1e-9));
        }

        #[test]
        fn prop_distributivity(a in arb_complex(), b in arb_complex(), c in arb_complex()) {
            prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-8));
        }

        #[test]
        fn prop_conj_is_involution(a in arb_complex()) {
            prop_assert_eq!(a.conj().conj(), a);
        }

        #[test]
        fn prop_abs_is_multiplicative(a in arb_complex(), b in arb_complex()) {
            prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-8);
        }

        #[test]
        fn prop_polar_round_trip(a in arb_complex()) {
            let (r, t) = a.to_polar();
            prop_assert!(Complex::from_polar(r, t).approx_eq(a, 1e-9));
        }

        #[test]
        fn prop_division_inverts_multiplication(a in arb_complex(), b in arb_complex()) {
            prop_assume!(b.abs() > 1e-6);
            prop_assert!(((a * b) / b).approx_eq(a, 1e-7));
        }
    }
}
