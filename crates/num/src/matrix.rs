//! Small dense complex matrices for gate construction and verification.
//!
//! The circuit IR builds `d×d` unitaries for mixed-dimensional gates and the
//! test suites check unitarity and adjoint identities; a tiny dense matrix
//! type is all that is needed (qudit dimensions are single digits).

use std::fmt;
use std::ops::Mul;

use crate::Complex;

/// A square complex matrix in row-major storage.
///
/// # Examples
///
/// ```
/// use mdq_num::{matrix::CMatrix, Complex};
///
/// let x = CMatrix::from_rows(&[
///     &[Complex::ZERO, Complex::ONE],
///     &[Complex::ONE, Complex::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert!((&x * &x).approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// The `n×n` zero matrix.
    #[must_use]
    pub fn zero(n: usize) -> Self {
        CMatrix {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// The `n×n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zero(n);
        for i in 0..n {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all of length `rows.len()`.
    #[must_use]
    pub fn from_rows(rows: &[&[Complex]]) -> Self {
        let n = rows.len();
        let mut m = CMatrix::zero(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// The dimension `n` of the matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Complex {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: Complex) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] = value;
    }

    /// The conjugate transpose `M†`.
    #[must_use]
    pub fn adjoint(&self) -> CMatrix {
        let mut m = CMatrix::zero(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                m.set(j, i, self.get(i, j).conj());
            }
        }
        m
    }

    /// Matrix–vector product `M·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    #[must_use]
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.n, "vector length mismatch");
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.get(i, j) * v[j]).sum::<Complex>())
            .collect()
    }

    /// Entry-wise comparison within `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.n == other.n
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Whether `M†M = I` within `tol`.
    #[must_use]
    pub fn is_unitary(&self, tol: f64) -> bool {
        (&self.adjoint() * self).approx_eq(&CMatrix::identity(self.n), tol)
    }

    /// Kronecker product `self ⊗ other`.
    #[must_use]
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let n = self.n * other.n;
        let mut m = CMatrix::zero(n);
        for i1 in 0..self.n {
            for j1 in 0..self.n {
                let a = self.get(i1, j1);
                for i2 in 0..other.n {
                    for j2 in 0..other.n {
                        m.set(i1 * other.n + i2, j1 * other.n + j2, a * other.get(i2, j2));
                    }
                }
            }
        }
        m
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;

    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.n, rhs.n, "matrix dimension mismatch");
        let mut out = CMatrix::zero(self.n);
        for i in 0..self.n {
            for k in 0..self.n {
                let a = self.get(i, k);
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..self.n {
                    let v = out.get(i, j) + a * rhs.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            write!(f, "[")?;
            for j in 0..self.n {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[
            &[Complex::ZERO, Complex::ONE],
            &[Complex::ONE, Complex::ZERO],
        ])
    }

    #[test]
    fn identity_acts_trivially() {
        let id = CMatrix::identity(3);
        let v = vec![Complex::ONE, Complex::I, Complex::new(0.5, -0.5)];
        assert_eq!(id.mul_vec(&v), v);
    }

    #[test]
    fn x_squares_to_identity() {
        let x = pauli_x();
        assert!((&x * &x).approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn adjoint_of_phase_matrix() {
        let mut m = CMatrix::identity(2);
        m.set(1, 1, Complex::cis(0.7));
        let a = m.adjoint();
        assert!(a.get(1, 1).approx_eq(Complex::cis(-0.7), 1e-12));
    }

    #[test]
    fn unitarity_detects_non_unitary() {
        let mut m = CMatrix::identity(2);
        m.set(0, 0, Complex::real(2.0));
        assert!(!m.is_unitary(1e-9));
        assert!(pauli_x().is_unitary(1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        let k = x.kron(&id);
        assert_eq!(k.dim(), 4);
        assert_eq!(k.get(0, 2), Complex::ONE);
        assert_eq!(k.get(1, 3), Complex::ONE);
        assert_eq!(k.get(0, 1), Complex::ZERO);
        assert!(k.is_unitary(1e-12));
    }

    #[test]
    fn mul_vec_applies_x() {
        let x = pauli_x();
        let v = vec![Complex::ONE, Complex::ZERO];
        assert_eq!(x.mul_vec(&v), vec![Complex::ZERO, Complex::ONE]);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn mul_vec_rejects_wrong_length() {
        let _ = pauli_x().mul_vec(&[Complex::ONE]);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = CMatrix::from_rows(&[
            &[Complex::ONE, Complex::I],
            &[Complex::ZERO, Complex::real(2.0)],
        ]);
        assert_eq!(m.get(0, 1), Complex::I);
        assert_eq!(m.get(1, 1), Complex::real(2.0));
    }
}
