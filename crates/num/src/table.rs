//! A tolerance-bucketed canonical store for complex numbers.

use std::collections::HashMap;

use crate::{Complex, Tolerance};

/// Identifier of a canonical complex value inside a [`ComplexTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalId(u32);

impl CanonicalId {
    /// The raw index of the canonical entry.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rehydrates an id from its raw index — only for the sharded wrapper,
    /// which owns the global id space.
    pub(crate) fn from_raw(raw: u32) -> Self {
        CanonicalId(raw)
    }
}

/// Usage counters of a [`ComplexTable`] — the "weight-table pressure" a
/// hash-consing workload puts on the canonical store.
///
/// Counters are cumulative over the table's lifetime and survive
/// [`ComplexTable::clear`]/[`ComplexTable::reset`], so a worker that recycles
/// one table across many jobs reports its total traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComplexTableStats {
    /// Number of distinct canonical values currently stored (the "DistinctC"
    /// metric for the live diagram).
    pub len: usize,
    /// Total [`ComplexTable::insert`] calls served.
    pub lookups: u64,
    /// Lookups that allocated a new canonical entry (the rest were served
    /// from an existing representative).
    pub insertions: u64,
    /// Lookups answered by the exact-bit-pattern fast path without probing
    /// the tolerance buckets.
    pub exact_hits: u64,
}

/// A canonical store of complex values with tolerance-based lookup.
///
/// Quantum decision diagrams keep every edge weight in a unique table so that
/// numerically equal weights share one representative; the number of distinct
/// entries is the paper's "DistinctC" column. Lookup buckets each value onto a
/// grid of cell size `tolerance` and probes the 3×3 neighbourhood, so two
/// values within `tolerance` of each other (in each component) map to the
/// same canonical entry regardless of insertion order.
///
/// # Examples
///
/// ```
/// use mdq_num::{Complex, ComplexTable, Tolerance};
///
/// let mut table = ComplexTable::new(Tolerance::new(1e-9));
/// let a = table.insert(Complex::new(0.5, 0.0));
/// let b = table.insert(Complex::new(0.5 + 1e-12, 0.0));
/// assert_eq!(a, b);
/// assert_eq!(table.len(), 1);
/// assert_eq!(table.stats().lookups, 2);
/// assert_eq!(table.stats().insertions, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ComplexTable {
    tolerance: Tolerance,
    values: Vec<Complex>,
    buckets: HashMap<(i64, i64), Vec<u32>>,
    /// Exact-bit-pattern fast path: hash-consing workloads insert the same
    /// handful of weights (0, 1, 1/√d, …) millions of times, and an exact
    /// hit skips the 3×3 bucket probe entirely.
    exact: HashMap<(u64, u64), u32>,
    lookups: u64,
    insertions: u64,
    exact_hits: u64,
}

impl ComplexTable {
    /// Creates an empty table with the given tolerance.
    #[must_use]
    pub fn new(tolerance: Tolerance) -> Self {
        Self {
            tolerance,
            values: Vec::new(),
            buckets: HashMap::new(),
            exact: HashMap::new(),
            lookups: 0,
            insertions: 0,
            exact_hits: 0,
        }
    }

    /// Removes every canonical value while retaining the allocated capacity
    /// of the indices — the cheap way to recycle a table across jobs.
    ///
    /// The cumulative [`ComplexTableStats`] counters are *not* reset.
    pub fn clear(&mut self) {
        self.values.clear();
        self.buckets.clear();
        self.exact.clear();
    }

    /// [`ComplexTable::clear`] plus a tolerance change, for recycling a
    /// table into a job with different numerical settings.
    pub fn reset(&mut self, tolerance: Tolerance) {
        self.clear();
        self.tolerance = tolerance;
    }

    /// A snapshot of the table's usage counters.
    #[must_use]
    pub fn stats(&self) -> ComplexTableStats {
        ComplexTableStats {
            len: self.values.len(),
            lookups: self.lookups,
            insertions: self.insertions,
            exact_hits: self.exact_hits,
        }
    }

    /// The tolerance used for canonicalization.
    #[must_use]
    pub fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    /// Number of distinct canonical values — the "DistinctC" metric.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn cell(&self, v: Complex) -> (i64, i64) {
        let t = self.tolerance.value().max(f64::MIN_POSITIVE);
        // Cells twice the tolerance wide keep the probe neighbourhood small.
        let w = 2.0 * t;
        ((v.re / w).floor() as i64, (v.im / w).floor() as i64)
    }

    /// Inserts a value, returning the canonical id of an existing entry
    /// within tolerance if one exists.
    pub fn insert(&mut self, v: Complex) -> CanonicalId {
        self.lookups += 1;
        let bits = (v.re.to_bits(), v.im.to_bits());
        if let Some(&id) = self.exact.get(&bits) {
            self.exact_hits += 1;
            return CanonicalId(id);
        }
        let id = match self.lookup(v) {
            Some(id) => id,
            None => {
                let id = u32::try_from(self.values.len()).expect("complex table overflow");
                self.values.push(v);
                let cell = self.cell(v);
                self.buckets.entry(cell).or_default().push(id);
                self.insertions += 1;
                CanonicalId(id)
            }
        };
        // The cache is bounded proportionally to the canonical store:
        // long-running users (a circuit threading one table through many
        // instructions) see a stream of one-off bit patterns that all
        // canonicalize to a few representatives, and without the cap the
        // cache would grow with every pattern ever seen.
        if self.exact.len() >= 4 * self.values.len() + 1024 {
            self.exact.clear();
        }
        self.exact.insert(bits, id.0);
        id
    }

    /// Appends `v` as a new canonical entry without probing for an existing
    /// representative — the back end of
    /// [`ShardedComplexTable::insert`](crate::ShardedComplexTable), which has
    /// already probed every shard covering the value's neighbourhood.
    pub(crate) fn push_new(&mut self, v: Complex) -> CanonicalId {
        let id = u32::try_from(self.values.len()).expect("complex table overflow");
        self.values.push(v);
        let cell = self.cell(v);
        self.buckets.entry(cell).or_default().push(id);
        self.insertions += 1;
        CanonicalId(id)
    }

    /// Finds the canonical id for a value already in the table, if any.
    #[must_use]
    pub fn lookup(&self, v: Complex) -> Option<CanonicalId> {
        let (cx, cy) = self.cell(v);
        let tol = self.tolerance.value();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(ids) = self.buckets.get(&(cx + dx, cy + dy)) {
                    for &id in ids {
                        let w = self.values[id as usize];
                        if (w.re - v.re).abs() <= tol && (w.im - v.im).abs() <= tol {
                            return Some(CanonicalId(id));
                        }
                    }
                }
            }
        }
        None
    }

    /// The canonical representative for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this table.
    #[must_use]
    pub fn value(&self, id: CanonicalId) -> Complex {
        self.values[id.index()]
    }

    /// Canonicalizes a value: the representative that `insert` would return.
    pub fn canonicalize(&mut self, v: Complex) -> Complex {
        let id = self.insert(v);
        self.values[id.index()]
    }

    /// Iterates over the canonical values.
    pub fn iter(&self) -> impl Iterator<Item = Complex> + '_ {
        self.values.iter().copied()
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new(Tolerance::default())
    }
}

/// Counts the number of distinct complex values in `values` under the given
/// tolerance — a convenience wrapper matching the paper's "DistinctC" column.
///
/// # Examples
///
/// ```
/// use mdq_num::{distinct_complex_count, Complex, Tolerance};
///
/// let w = [Complex::ONE, Complex::ZERO, Complex::new(1.0 + 1e-12, 0.0)];
/// assert_eq!(distinct_complex_count(w.iter().copied(), Tolerance::default()), 2);
/// ```
#[must_use]
pub fn distinct_complex_count(
    values: impl IntoIterator<Item = Complex>,
    tolerance: Tolerance,
) -> usize {
    let mut table = ComplexTable::new(tolerance);
    for v in values {
        table.insert(v);
    }
    table.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table() {
        let table = ComplexTable::default();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.lookup(Complex::ONE), None);
    }

    #[test]
    fn insert_deduplicates_within_tolerance() {
        let mut t = ComplexTable::new(Tolerance::new(1e-6));
        let a = t.insert(Complex::new(1.0, 1.0));
        let b = t.insert(Complex::new(1.0 + 5e-7, 1.0 - 5e-7));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_distinguishes_beyond_tolerance() {
        let mut t = ComplexTable::new(Tolerance::new(1e-9));
        let a = t.insert(Complex::new(1.0, 0.0));
        let b = t.insert(Complex::new(1.0 + 1e-3, 0.0));
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn canonicalize_returns_first_representative() {
        let mut t = ComplexTable::new(Tolerance::new(1e-6));
        let first = Complex::new(0.25, -0.5);
        t.insert(first);
        let canon = t.canonicalize(Complex::new(0.25 + 1e-8, -0.5));
        assert_eq!(canon, first);
    }

    #[test]
    fn values_straddling_cell_boundaries_still_merge() {
        // Pick values just either side of a grid boundary.
        let tol = 1e-6;
        let mut t = ComplexTable::new(Tolerance::new(tol));
        let a = t.insert(Complex::new(2.0 * tol - 1e-9, 0.0));
        let b = t.insert(Complex::new(2.0 * tol + 1e-9, 0.0));
        assert_eq!(a, b);
    }

    #[test]
    fn negative_values_bucket_correctly() {
        let mut t = ComplexTable::new(Tolerance::new(1e-9));
        let a = t.insert(Complex::new(-0.5, -0.5));
        let b = t.insert(Complex::new(-0.5, -0.5));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_count_helper() {
        let vs = [
            Complex::ZERO,
            Complex::ONE,
            Complex::new(1.0 / 2.0_f64.sqrt(), 0.0),
            Complex::ZERO,
        ];
        assert_eq!(
            distinct_complex_count(vs.iter().copied(), Tolerance::default()),
            3
        );
    }

    #[test]
    fn value_round_trips() {
        let mut t = ComplexTable::default();
        let v = Complex::new(0.1, 0.9);
        let id = t.insert(v);
        assert_eq!(t.value(id), v);
    }

    #[test]
    fn many_inserts_stay_consistent() {
        let mut t = ComplexTable::new(Tolerance::new(1e-9));
        for i in 0..1000 {
            t.insert(Complex::new(f64::from(i) * 0.001, 0.0));
        }
        assert_eq!(t.len(), 1000);
        // Re-inserting everything changes nothing.
        for i in 0..1000 {
            t.insert(Complex::new(f64::from(i) * 0.001, 0.0));
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn stats_track_lookups_insertions_and_exact_hits() {
        let mut t = ComplexTable::new(Tolerance::new(1e-9));
        t.insert(Complex::ONE); // new entry
        t.insert(Complex::ONE); // exact-bit hit
        t.insert(Complex::new(1.0 + 1e-12, 0.0)); // bucket hit, then cached
        let s = t.stats();
        assert_eq!(s.len, 1);
        assert_eq!(s.lookups, 3);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.exact_hits, 1);
    }

    #[test]
    fn clear_empties_values_but_keeps_counters() {
        let mut t = ComplexTable::default();
        t.insert(Complex::ONE);
        t.insert(Complex::I);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup(Complex::ONE), None);
        let s = t.stats();
        assert_eq!(s.len, 0);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.insertions, 2);
        // Ids restart from zero after a clear.
        let id = t.insert(Complex::I);
        assert_eq!(id.index(), 0);
    }

    #[test]
    fn reset_changes_tolerance() {
        let mut t = ComplexTable::new(Tolerance::new(1e-9));
        let a = t.insert(Complex::new(1.0, 0.0));
        let b = t.insert(Complex::new(1.0 + 1e-6, 0.0));
        assert_ne!(a, b);
        t.reset(Tolerance::new(1e-3));
        assert_eq!(t.tolerance().value(), 1e-3);
        let a = t.insert(Complex::new(1.0, 0.0));
        let b = t.insert(Complex::new(1.0 + 1e-6, 0.0));
        assert_eq!(a, b);
    }

    #[test]
    fn iter_yields_all_canonical_values() {
        let mut t = ComplexTable::default();
        t.insert(Complex::ONE);
        t.insert(Complex::I);
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected, vec![Complex::ONE, Complex::I]);
    }
}
