//! A sharded canonical store for complex numbers.
//!
//! [`ShardedComplexTable`] fans a [`ComplexTable`] out over several
//! fingerprint-selected shards so that concurrent hash-consing workloads (the
//! parallel DD build in `mdq-dd`) don't serialize on one table. Routing is by
//! the value's *supercell* — a block of tolerance-grid cells much wider than
//! the 3×3 probe neighbourhood — so a lookup touches at most the four shards
//! whose supercells cover the neighbourhood, in a deterministic order.
//!
//! With one shard the wrapper is bit-for-bit the plain [`ComplexTable`]:
//! identical canonical ids, identical first-representative-wins behaviour.

use std::collections::HashMap;

use crate::table::{CanonicalId, ComplexTable, ComplexTableStats};
use crate::{Complex, Tolerance};

/// Tolerance-grid cells per supercell edge (`1 << SUPER_SHIFT`). Supercells
/// are 2⁶ = 64 cells wide, so the 3×3 cell probe neighbourhood spans at most
/// a 2×2 block of supercells.
const SUPER_SHIFT: u32 = 6;

/// Mixes one 64-bit word into an FNV-1a style fingerprint.
#[inline]
fn fnv_mix(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A [`ComplexTable`] fanned out over fingerprint-selected shards.
///
/// Canonical ids are global: `global = local * shards + shard`, so with one
/// shard the mapping is the identity and the wrapper behaves exactly like the
/// plain table. Counters ([`ComplexTableStats`]) are kept at the wrapper
/// level and survive [`clear`](Self::clear) / [`reset`](Self::reset) /
/// [`configure`](Self::configure), mirroring [`ComplexTable`]'s contract.
///
/// # Examples
///
/// ```
/// use mdq_num::{Complex, ShardedComplexTable, Tolerance};
///
/// let mut table = ShardedComplexTable::new(Tolerance::new(1e-9), 4);
/// let a = table.insert(Complex::new(0.5, 0.0));
/// let b = table.insert(Complex::new(0.5 + 1e-12, 0.0));
/// assert_eq!(a, b);
/// assert_eq!(table.len(), 1);
/// assert_eq!(table.shard_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedComplexTable {
    tolerance: Tolerance,
    shards: Vec<ComplexTable>,
    /// Per-home-shard exact-bit-pattern caches holding *global* ids. Kept at
    /// the wrapper level so the shard tables stay byte-identical to the
    /// sequential path regardless of probe order.
    exact: Vec<HashMap<(u64, u64), u32>>,
    mask: usize,
    lookups: u64,
    insertions: u64,
    exact_hits: u64,
}

impl ShardedComplexTable {
    /// Creates an empty table with the given tolerance, fanned out over
    /// `shards` shards (rounded up to a power of two, minimum 1).
    #[must_use]
    pub fn new(tolerance: Tolerance, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            tolerance,
            shards: (0..n).map(|_| ComplexTable::new(tolerance)).collect(),
            exact: (0..n).map(|_| HashMap::new()).collect(),
            mask: n - 1,
            lookups: 0,
            insertions: 0,
            exact_hits: 0,
        }
    }

    /// Number of shards (always a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tolerance used for canonicalization.
    #[must_use]
    pub fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    /// Number of distinct canonical values across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(ComplexTable::len).sum()
    }

    /// Whether the table holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(ComplexTable::is_empty)
    }

    /// Aggregated usage counters: `len` summed over shards, traffic counters
    /// from the wrapper (cumulative, surviving `clear`/`reset`/`configure`).
    #[must_use]
    pub fn stats(&self) -> ComplexTableStats {
        ComplexTableStats {
            len: self.len(),
            lookups: self.lookups,
            insertions: self.insertions,
            exact_hits: self.exact_hits,
        }
    }

    /// Removes every canonical value from every shard, keeping capacity and
    /// the cumulative counters.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        for cache in &mut self.exact {
            cache.clear();
        }
    }

    /// [`clear`](Self::clear) plus a tolerance change.
    pub fn reset(&mut self, tolerance: Tolerance) {
        self.tolerance = tolerance;
        for shard in &mut self.shards {
            shard.reset(tolerance);
        }
        for cache in &mut self.exact {
            cache.clear();
        }
    }

    /// Re-targets the table at a (possibly different) shard count and
    /// tolerance, clearing every value. When the shard count is unchanged
    /// this is [`reset`](Self::reset) and keeps allocated capacity;
    /// otherwise the shard vectors are rebuilt at the new width. Counters
    /// survive either way.
    pub fn configure(&mut self, tolerance: Tolerance, shards: usize) {
        let n = shards.max(1).next_power_of_two();
        if n == self.shards.len() {
            self.reset(tolerance);
            return;
        }
        self.tolerance = tolerance;
        self.shards = (0..n).map(|_| ComplexTable::new(tolerance)).collect();
        self.exact = (0..n).map(|_| HashMap::new()).collect();
        self.mask = n - 1;
    }

    fn cell(&self, v: Complex) -> (i64, i64) {
        // Must match `ComplexTable::cell` so shard-local buckets line up.
        let t = self.tolerance.value().max(f64::MIN_POSITIVE);
        let w = 2.0 * t;
        ((v.re / w).floor() as i64, (v.im / w).floor() as i64)
    }

    fn shard_of_supercell(&self, sx: i64, sy: i64) -> usize {
        let h = fnv_mix(fnv_mix(FNV_OFFSET, sx as u64), sy as u64);
        (h as usize) & self.mask
    }

    fn shard_of_cell(&self, cell: (i64, i64)) -> usize {
        self.shard_of_supercell(cell.0 >> SUPER_SHIFT, cell.1 >> SUPER_SHIFT)
    }

    fn global(&self, local: CanonicalId, shard: usize) -> CanonicalId {
        let n = self.shards.len() as u64;
        let gid = local.index() as u64 * n + shard as u64;
        CanonicalId::from_raw(u32::try_from(gid).expect("sharded complex table overflow"))
    }

    fn split(&self, id: CanonicalId) -> (usize, usize) {
        let n = self.shards.len();
        (id.index() / n, id.index() % n)
    }

    /// Probes the shards covering the 3×3 cell neighbourhood of `v`, in a
    /// deterministic row-major supercell order.
    fn probe(&self, v: Complex) -> Option<CanonicalId> {
        if self.mask == 0 {
            return self.shards[0].lookup(v).map(|id| self.global(id, 0));
        }
        let (cx, cy) = self.cell(v);
        let (sx0, sx1) = ((cx - 1) >> SUPER_SHIFT, (cx + 1) >> SUPER_SHIFT);
        let (sy0, sy1) = ((cy - 1) >> SUPER_SHIFT, (cy + 1) >> SUPER_SHIFT);
        let mut seen = [usize::MAX; 4];
        let mut n = 0;
        for sx in sx0..=sx1 {
            for sy in sy0..=sy1 {
                let s = self.shard_of_supercell(sx, sy);
                if seen[..n].contains(&s) {
                    continue;
                }
                seen[n] = s;
                n += 1;
                if let Some(local) = self.shards[s].lookup(v) {
                    return Some(self.global(local, s));
                }
            }
        }
        None
    }

    /// Inserts a value, returning the global canonical id of an existing
    /// entry within tolerance if one exists in any covering shard.
    pub fn insert(&mut self, v: Complex) -> CanonicalId {
        self.lookups += 1;
        let bits = (v.re.to_bits(), v.im.to_bits());
        let home = self.shard_of_cell(self.cell(v));
        if let Some(&gid) = self.exact[home].get(&bits) {
            self.exact_hits += 1;
            return CanonicalId::from_raw(gid);
        }
        let id = match self.probe(v) {
            Some(id) => id,
            None => {
                self.insertions += 1;
                let local = self.shards[home].push_new(v);
                self.global(local, home)
            }
        };
        // Same proportional bound as the plain table, per home shard.
        if self.exact[home].len() >= 4 * self.shards[home].len() + 1024 {
            self.exact[home].clear();
        }
        self.exact[home].insert(bits, u32::try_from(id.index()).expect("id overflow"));
        id
    }

    /// Finds the global canonical id for a value already in the table, if
    /// any, without inserting or counting.
    #[must_use]
    pub fn lookup(&self, v: Complex) -> Option<CanonicalId> {
        self.probe(v)
    }

    /// The canonical representative for a global id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this table.
    #[must_use]
    pub fn value(&self, id: CanonicalId) -> Complex {
        let (local, shard) = self.split(id);
        self.shards[shard].value(CanonicalId::from_raw(
            u32::try_from(local).expect("id overflow"),
        ))
    }

    /// Iterates over the canonical values of every shard, shard by shard.
    pub fn iter(&self) -> impl Iterator<Item = Complex> + '_ {
        self.shards.iter().flat_map(ComplexTable::iter)
    }
}

impl Default for ShardedComplexTable {
    fn default() -> Self {
        Self::new(Tolerance::default(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_matches_plain_table_ids() {
        let tol = Tolerance::new(1e-9);
        let mut plain = ComplexTable::new(tol);
        let mut sharded = ShardedComplexTable::new(tol, 1);
        let values = [
            Complex::ONE,
            Complex::ZERO,
            Complex::new(0.25, -0.75),
            Complex::new(0.25 + 1e-12, -0.75),
            Complex::I,
            Complex::new(0.25, -0.75),
        ];
        for v in values {
            let a = plain.insert(v);
            let b = sharded.insert(v);
            assert_eq!(a.index(), b.index());
        }
        assert_eq!(plain.len(), sharded.len());
        assert_eq!(plain.stats(), sharded.stats());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let t = ShardedComplexTable::new(Tolerance::default(), 3);
        assert_eq!(t.shard_count(), 4);
        let t = ShardedComplexTable::new(Tolerance::default(), 0);
        assert_eq!(t.shard_count(), 1);
    }

    #[test]
    fn deduplicates_within_tolerance_across_shards() {
        let mut t = ShardedComplexTable::new(Tolerance::new(1e-6), 8);
        let a = t.insert(Complex::new(1.0, 1.0));
        let b = t.insert(Complex::new(1.0 + 5e-7, 1.0 - 5e-7));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        let c = t.insert(Complex::new(1.0 + 1e-3, 1.0));
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn supercell_boundary_values_still_merge() {
        // Values either side of a supercell boundary land in different home
        // shards but must still canonicalize together via the probe.
        let tol = 1e-6;
        let boundary = 2.0 * tol * f64::from(1u32 << SUPER_SHIFT);
        let mut t = ShardedComplexTable::new(Tolerance::new(tol), 8);
        let a = t.insert(Complex::new(boundary - 1e-9, 0.0));
        let b = t.insert(Complex::new(boundary + 1e-9, 0.0));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn value_round_trips_at_any_shard_count() {
        for shards in [1, 2, 4, 8] {
            let mut t = ShardedComplexTable::new(Tolerance::new(1e-9), shards);
            let vs: Vec<Complex> = (0..64)
                .map(|i| Complex::new(f64::from(i) * 0.37, f64::from(i) * -0.11))
                .collect();
            let ids: Vec<CanonicalId> = vs.iter().map(|&v| t.insert(v)).collect();
            for (&v, &id) in vs.iter().zip(&ids) {
                assert_eq!(t.value(id), v);
                assert_eq!(t.lookup(v), Some(id));
            }
            assert_eq!(t.len(), vs.len());
        }
    }

    #[test]
    fn counters_survive_clear_reset_and_configure() {
        let mut t = ShardedComplexTable::new(Tolerance::new(1e-9), 4);
        t.insert(Complex::ONE);
        t.insert(Complex::ONE);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats().lookups, 2);
        assert_eq!(t.stats().insertions, 1);
        assert_eq!(t.stats().exact_hits, 1);
        t.reset(Tolerance::new(1e-6));
        t.insert(Complex::I);
        assert_eq!(t.stats().lookups, 3);
        t.configure(Tolerance::new(1e-9), 2);
        assert_eq!(t.shard_count(), 2);
        assert!(t.is_empty());
        assert_eq!(t.stats().lookups, 3);
        assert_eq!(t.stats().insertions, 2);
    }

    #[test]
    fn exact_cache_serves_repeats() {
        let mut t = ShardedComplexTable::new(Tolerance::new(1e-9), 4);
        let v = Complex::new(0.125, 0.5);
        let a = t.insert(v);
        let b = t.insert(v);
        assert_eq!(a, b);
        assert_eq!(t.stats().exact_hits, 1);
    }

    #[test]
    fn iter_covers_all_shards() {
        let mut t = ShardedComplexTable::new(Tolerance::new(1e-9), 4);
        let vs: Vec<Complex> = (0..32)
            .map(|i| Complex::new(f64::from(i) * 0.7, 0.3))
            .collect();
        for &v in &vs {
            t.insert(v);
        }
        let mut seen: Vec<Complex> = t.iter().collect();
        assert_eq!(seen.len(), vs.len());
        for v in vs {
            assert!(seen.contains(&v));
            seen.retain(|&w| w != v);
        }
    }
}
