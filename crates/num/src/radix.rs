//! Mixed-radix index arithmetic for mixed-dimensional Hilbert spaces.
//!
//! A register of `n` qudits with local dimensions `d_{n−1}, …, d_0`
//! (most-significant first, matching the paper's variable order
//! `q_{n−1}, …, q_0`) spans a Hilbert space of size `Π d_i`. Basis states
//! are mixed-radix digit strings; this module converts between flat indices
//! and digit vectors and provides the structural counts used by the
//! evaluation metrics.

use std::fmt;

/// Error produced when constructing [`Dims`] from invalid dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimsError {
    /// The register had no qudits.
    Empty,
    /// A qudit dimension was smaller than 2.
    DimensionTooSmall {
        /// Position of the offending qudit (0 = most significant).
        position: usize,
        /// The dimension found.
        dim: usize,
    },
}

impl fmt::Display for DimsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimsError::Empty => write!(f, "qudit register must not be empty"),
            DimsError::DimensionTooSmall { position, dim } => write!(
                f,
                "qudit at position {position} has dimension {dim}, but at least 2 is required"
            ),
        }
    }
}

impl std::error::Error for DimsError {}

/// The local dimensions of a mixed-dimensional qudit register.
///
/// Position 0 is the *most significant* qudit (the decision diagram's root
/// level, `q_{n−1}` in the paper); the last position is the least
/// significant (`q_0`).
///
/// # Examples
///
/// ```
/// use mdq_num::radix::Dims;
///
/// let dims = Dims::new(vec![3, 2]).unwrap(); // a qutrit–qubit system
/// assert_eq!(dims.space_size(), 6);
/// assert_eq!(dims.digits_of(4), vec![2, 0]); // |20⟩
/// assert_eq!(dims.index_of(&[2, 0]), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dims {
    dims: Vec<usize>,
}

impl Dims {
    /// Creates a register description from most-significant-first dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DimsError`] if the vector is empty or any dimension is < 2.
    pub fn new(dims: Vec<usize>) -> Result<Self, DimsError> {
        if dims.is_empty() {
            return Err(DimsError::Empty);
        }
        for (position, &dim) in dims.iter().enumerate() {
            if dim < 2 {
                return Err(DimsError::DimensionTooSmall { position, dim });
            }
        }
        Ok(Self { dims })
    }

    /// Convenience constructor for a uniform register of `n` qudits of
    /// dimension `d` (e.g. `Dims::uniform(2, 3)` is two qutrits).
    ///
    /// # Errors
    ///
    /// Returns [`DimsError`] if `n == 0` or `d < 2`.
    pub fn uniform(n: usize, d: usize) -> Result<Self, DimsError> {
        Self::new(vec![d; n])
    }

    /// Number of qudits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the register is empty (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The dimension of the qudit at `position` (0 = most significant).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds.
    #[must_use]
    pub fn dim(&self, position: usize) -> usize {
        self.dims[position]
    }

    /// The dimensions as a slice, most significant first.
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.dims
    }

    /// Total Hilbert-space size `Π d_i`.
    #[must_use]
    pub fn space_size(&self) -> usize {
        self.dims.iter().product()
    }

    /// The stride of each position: `stride[i] = Π_{j>i} d_j`, so that
    /// `index = Σ digit[i]·stride[i]`.
    #[must_use]
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a flat index into mixed-radix digits (most significant first).
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ space_size()`.
    #[must_use]
    pub fn digits_of(&self, index: usize) -> Vec<usize> {
        assert!(
            index < self.space_size(),
            "index {index} out of range for space of size {}",
            self.space_size()
        );
        let mut digits = vec![0; self.dims.len()];
        let mut rem = index;
        for (i, &d) in self.dims.iter().enumerate().rev() {
            digits[i] = rem % d;
            rem /= d;
        }
        digits
    }

    /// Converts mixed-radix digits (most significant first) into a flat index.
    ///
    /// # Panics
    ///
    /// Panics if the digit count differs from the register length or a digit
    /// exceeds its local dimension.
    #[must_use]
    pub fn index_of(&self, digits: &[usize]) -> usize {
        assert_eq!(
            digits.len(),
            self.dims.len(),
            "digit count {} does not match register length {}",
            digits.len(),
            self.dims.len()
        );
        let mut index = 0;
        for (i, (&digit, &dim)) in digits.iter().zip(self.dims.iter()).enumerate() {
            assert!(
                digit < dim,
                "digit {digit} at position {i} exceeds local dimension {dim}"
            );
            index = index * dim + digit;
        }
        index
    }

    /// Iterates over all basis states as digit vectors, in index order.
    pub fn iter_basis(&self) -> BasisIter<'_> {
        BasisIter {
            dims: self,
            next: Some(vec![0; self.dims.len()]),
        }
    }

    /// Edge count of the *unreduced* decision-diagram tree for this register,
    /// including the incoming root edge and zero-weight branches:
    /// `1 + Σ_{k=1..n} Π_{i=1..k} d_i`.
    ///
    /// This is exactly the paper's "Nodes" column for exact synthesis
    /// (58 for `[3,6,2]`, 1135 for `[9,5,6,3]`, …).
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_num::radix::Dims;
    /// let dims = Dims::new(vec![3, 6, 2]).unwrap();
    /// assert_eq!(dims.full_tree_edge_count(), 58);
    /// ```
    #[must_use]
    pub fn full_tree_edge_count(&self) -> usize {
        let mut total = 1; // incoming root edge
        let mut prefix = 1;
        for &d in &self.dims {
            prefix *= d;
            total += prefix;
        }
        total
    }

    /// Number of internal nodes of the unreduced tree:
    /// `Σ_{k=0..n−1} Π_{i<k} d_i` (one node per prefix).
    #[must_use]
    pub fn full_tree_node_count(&self) -> usize {
        let mut total = 0;
        let mut prefix = 1;
        for &d in &self.dims {
            total += prefix;
            prefix *= d;
        }
        total
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl AsRef<[usize]> for Dims {
    fn as_ref(&self) -> &[usize] {
        &self.dims
    }
}

/// Iterator over all basis states of a register; see [`Dims::iter_basis`].
#[derive(Debug)]
pub struct BasisIter<'a> {
    dims: &'a Dims,
    next: Option<Vec<usize>>,
}

impl Iterator for BasisIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        let mut pos = self.dims.len();
        loop {
            if pos == 0 {
                self.next = None;
                break;
            }
            pos -= 1;
            succ[pos] += 1;
            if succ[pos] < self.dims.dim(pos) {
                self.next = Some(succ);
                break;
            }
            succ[pos] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_register() {
        assert_eq!(Dims::new(vec![]), Err(DimsError::Empty));
    }

    #[test]
    fn rejects_dimension_below_two() {
        assert_eq!(
            Dims::new(vec![3, 1]),
            Err(DimsError::DimensionTooSmall {
                position: 1,
                dim: 1
            })
        );
    }

    #[test]
    fn uniform_builds_repeated_dims() {
        let dims = Dims::uniform(3, 4).unwrap();
        assert_eq!(dims.as_slice(), &[4, 4, 4]);
    }

    #[test]
    fn space_size_is_product() {
        let dims = Dims::new(vec![3, 6, 2]).unwrap();
        assert_eq!(dims.space_size(), 36);
    }

    #[test]
    fn strides_follow_least_significant_last() {
        let dims = Dims::new(vec![3, 6, 2]).unwrap();
        assert_eq!(dims.strides(), vec![12, 2, 1]);
    }

    #[test]
    fn digit_round_trip_qutrit_qubit() {
        let dims = Dims::new(vec![3, 2]).unwrap();
        let expected = [
            vec![0, 0],
            vec![0, 1],
            vec![1, 0],
            vec![1, 1],
            vec![2, 0],
            vec![2, 1],
        ];
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(&dims.digits_of(i), want);
            assert_eq!(dims.index_of(want), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digits_of_out_of_range_panics() {
        let dims = Dims::new(vec![2, 2]).unwrap();
        let _ = dims.digits_of(4);
    }

    #[test]
    #[should_panic(expected = "exceeds local dimension")]
    fn index_of_invalid_digit_panics() {
        let dims = Dims::new(vec![2, 2]).unwrap();
        let _ = dims.index_of(&[0, 2]);
    }

    #[test]
    fn basis_iteration_matches_index_order() {
        let dims = Dims::new(vec![2, 3]).unwrap();
        let all: Vec<_> = dims.iter_basis().collect();
        assert_eq!(all.len(), 6);
        for (i, digits) in all.iter().enumerate() {
            assert_eq!(dims.index_of(digits), i);
        }
    }

    #[test]
    fn full_tree_edge_counts_match_table_one() {
        // The five mixed-dimensional architectures of the paper's Table 1,
        // with the qudit orderings recovered from the "Nodes" column.
        let cases: [(&[usize], usize); 5] = [
            (&[3, 6, 2], 58),
            (&[9, 5, 6, 3], 1135),
            (&[4, 7, 4, 4, 3, 5], 8657),
            (&[6, 6, 5, 3, 3], 2383),
            (&[5, 4, 2, 5, 5, 2], 3266),
        ];
        for (dims, expected) in cases {
            let dims = Dims::new(dims.to_vec()).unwrap();
            assert_eq!(dims.full_tree_edge_count(), expected, "dims {dims}");
        }
    }

    #[test]
    fn full_tree_node_count_small() {
        // [3,2]: 1 root + 3 level-1 nodes = 4 internal nodes.
        let dims = Dims::new(vec![3, 2]).unwrap();
        assert_eq!(dims.full_tree_node_count(), 4);
    }

    #[test]
    fn display_formats_like_a_list() {
        let dims = Dims::new(vec![3, 6, 2]).unwrap();
        assert_eq!(dims.to_string(), "[3,6,2]");
    }

    fn arb_dims() -> impl Strategy<Value = Dims> {
        proptest::collection::vec(2usize..6, 1..5).prop_map(|v| Dims::new(v).unwrap())
    }

    proptest! {
        #[test]
        fn prop_index_digit_round_trip(dims in arb_dims(), seed in 0usize..10_000) {
            let idx = seed % dims.space_size();
            let digits = dims.digits_of(idx);
            prop_assert_eq!(dims.index_of(&digits), idx);
        }

        #[test]
        fn prop_basis_iter_covers_space(dims in arb_dims()) {
            prop_assert_eq!(dims.iter_basis().count(), dims.space_size());
        }

        #[test]
        fn prop_edge_count_exceeds_node_count(dims in arb_dims()) {
            // Every internal node has ≥2 out-edges plus the root in-edge.
            prop_assert!(dims.full_tree_edge_count() > dims.full_tree_node_count());
        }
    }
}
