//! Comparison thresholds shared across the workspace.

use std::fmt;

/// A non-negative tolerance used for approximate comparisons of amplitudes
/// and edge weights.
///
/// Decision-diagram packages for quantum computing traditionally compare
/// complex numbers against a small threshold so that numerically equal
/// values hash to the same canonical entry (cf. Zulehner et al., ICCAD 2019).
/// The same threshold decides when an edge weight counts as zero.
///
/// # Examples
///
/// ```
/// use mdq_num::Tolerance;
///
/// let tol = Tolerance::default();
/// assert!(tol.eq_f64(1.0, 1.0 + 1e-12));
/// assert!(!tol.eq_f64(1.0, 1.0 + 1e-3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Tolerance(f64);

impl Tolerance {
    /// The workspace-wide default (`1e-9`).
    pub const DEFAULT: Tolerance = Tolerance(1e-9);

    /// Creates a tolerance from a raw threshold.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "tolerance must be finite and non-negative, got {value}"
        );
        Tolerance(value)
    }

    /// The raw threshold.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether two floats are within the tolerance of each other.
    #[must_use]
    pub fn eq_f64(self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.0
    }

    /// Whether a float is within the tolerance of zero.
    #[must_use]
    pub fn is_zero(self, a: f64) -> bool {
        a.abs() <= self.0
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance::DEFAULT
    }
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:e}", self.0)
    }
}

impl From<Tolerance> for f64 {
    fn from(t: Tolerance) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_1e_minus_9() {
        assert_eq!(Tolerance::default().value(), 1e-9);
    }

    #[test]
    fn zero_tolerance_is_exact_comparison() {
        let t = Tolerance::new(0.0);
        assert!(t.eq_f64(1.0, 1.0));
        assert!(!t.eq_f64(1.0, 1.0 + f64::EPSILON));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_panics() {
        let _ = Tolerance::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_tolerance_panics() {
        let _ = Tolerance::new(f64::NAN);
    }

    #[test]
    fn is_zero_is_symmetric_around_zero() {
        let t = Tolerance::new(0.5);
        assert!(t.is_zero(0.4));
        assert!(t.is_zero(-0.4));
        assert!(!t.is_zero(0.6));
    }

    #[test]
    fn display_uses_scientific_notation() {
        assert_eq!(Tolerance::new(1e-9).to_string(), "1e-9");
    }
}
