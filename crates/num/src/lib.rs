//! Numeric substrate for mixed-dimensional qudit systems.
//!
//! This crate provides the numeric foundations used by the decision-diagram
//! package ([`mdq-dd`]), the circuit IR ([`mdq-circuit`]), and the simulator
//! ([`mdq-sim`]):
//!
//! * [`Complex`] — a small, dependency-free complex-number type with the
//!   operations required for quantum amplitudes (arithmetic, polar form,
//!   tolerance comparison).
//! * [`Tolerance`] — the comparison threshold threaded through every
//!   approximate equality in the workspace.
//! * [`ComplexTable`] — a tolerance-bucketed canonical store of complex
//!   values; its size is the "DistinctC" metric of the paper's Table 1.
//! * [`radix`] — mixed-radix index arithmetic for Hilbert spaces that are
//!   tensor products of different local dimensions, including the
//!   unreduced-tree edge-count formula behind the "Nodes" metric.
//!
//! # Examples
//!
//! ```
//! use mdq_num::{Complex, radix::Dims};
//!
//! let a = Complex::new(0.0, 1.0);
//! assert!((a * a).approx_eq(Complex::new(-1.0, 0.0), 1e-12));
//!
//! let dims = Dims::new(vec![3, 6, 2]).unwrap();
//! assert_eq!(dims.space_size(), 36);
//! assert_eq!(dims.full_tree_edge_count(), 58); // Table 1, "Nodes" (Exact)
//! ```
//!
//! [`mdq-dd`]: https://example.invalid/mdq
//! [`mdq-circuit`]: https://example.invalid/mdq
//! [`mdq-sim`]: https://example.invalid/mdq

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod sharded;
mod table;
mod tolerance;

pub mod matrix;
pub mod radix;

pub use complex::Complex;
pub use sharded::ShardedComplexTable;
pub use table::{distinct_complex_count, CanonicalId, ComplexTable, ComplexTableStats};
pub use tolerance::Tolerance;

// Compile-time Send/Sync audit: these types cross worker-thread boundaries
// in the batch-preparation engine, and none of them may silently grow a
// non-thread-safe field (Rc, RefCell, raw pointer) without breaking here.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Complex>();
    assert_send_sync::<Tolerance>();
    assert_send_sync::<ComplexTable>();
    assert_send_sync::<ShardedComplexTable>();
    assert_send_sync::<ComplexTableStats>();
    assert_send_sync::<radix::Dims>();
    assert_send_sync::<matrix::CMatrix>();
};

/// Euclidean norm of a slice of complex amplitudes.
///
/// # Examples
///
/// ```
/// use mdq_num::{norm, Complex};
/// let v = [Complex::new(3.0, 0.0), Complex::new(0.0, 4.0)];
/// assert!((norm(&v) - 5.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn norm(amplitudes: &[Complex]) -> f64 {
    amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
}

/// Inner product `⟨a|b⟩ = Σ conj(a_i) · b_i` of two amplitude slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use mdq_num::{inner_product, Complex};
/// let a = [Complex::ONE, Complex::ZERO];
/// let b = [Complex::ZERO, Complex::ONE];
/// assert_eq!(inner_product(&a, &b), Complex::ZERO);
/// ```
#[must_use]
pub fn inner_product(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "inner product of unequal lengths");
    a.iter()
        .zip(b.iter())
        .fold(Complex::ZERO, |acc, (x, y)| acc + x.conj() * *y)
}

/// Fidelity `|⟨a|b⟩|²` between two *normalized* amplitude slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn fidelity(a: &[Complex], b: &[Complex]) -> f64 {
    inner_product(a, b).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_empty_slice_is_zero() {
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let inv = 1.0 / 2.0_f64.sqrt();
        let v = [Complex::new(inv, 0.0), Complex::new(0.0, inv)];
        assert!((fidelity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = [Complex::ONE, Complex::ZERO];
        let b = [Complex::ZERO, Complex::ONE];
        assert!(fidelity(&a, &b) < 1e-15);
    }

    #[test]
    fn inner_product_conjugates_left_argument() {
        let a = [Complex::new(0.0, 1.0)];
        let b = [Complex::ONE];
        assert!(inner_product(&a, &b).approx_eq(Complex::new(0.0, -1.0), 1e-15));
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn inner_product_panics_on_length_mismatch() {
        let _ = inner_product(&[Complex::ONE], &[]);
    }
}
