//! Edge-case coverage for `mdq_num::radix::Dims`: rejected constructions,
//! exhaustive index/digit round-trips, and overflow behavior at the limits
//! of the index space.

use mdq_num::radix::{Dims, DimsError};

#[test]
fn empty_register_is_rejected() {
    assert_eq!(Dims::new(vec![]), Err(DimsError::Empty));
    assert_eq!(Dims::uniform(0, 3), Err(DimsError::Empty));
}

#[test]
fn zero_and_unit_dimensions_are_rejected() {
    assert_eq!(
        Dims::new(vec![0]),
        Err(DimsError::DimensionTooSmall {
            position: 0,
            dim: 0
        })
    );
    assert_eq!(
        Dims::new(vec![3, 0, 2]),
        Err(DimsError::DimensionTooSmall {
            position: 1,
            dim: 0
        })
    );
    assert_eq!(
        Dims::new(vec![2, 2, 1]),
        Err(DimsError::DimensionTooSmall {
            position: 2,
            dim: 1
        })
    );
    assert_eq!(
        Dims::uniform(4, 1),
        Err(DimsError::DimensionTooSmall {
            position: 0,
            dim: 1
        })
    );
}

#[test]
fn error_messages_name_the_offender() {
    let err = Dims::new(vec![3, 1]).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("position 1"), "message: {text}");
    assert!(text.contains("dimension 1"), "message: {text}");
    assert!(Dims::new(vec![]).unwrap_err().to_string().contains("empty"));
}

#[test]
fn round_trip_covers_full_index_range_for_3x2x4() {
    let dims = Dims::new(vec![3, 2, 4]).unwrap();
    assert_eq!(dims.space_size(), 24);
    for index in 0..24 {
        let digits = dims.digits_of(index);
        assert_eq!(digits.len(), 3);
        for (pos, &digit) in digits.iter().enumerate() {
            assert!(
                digit < dims.dim(pos),
                "digit {digit} at {pos} in |{digits:?}⟩"
            );
        }
        assert_eq!(dims.index_of(&digits), index);
    }
    // Digit vectors enumerate in lexicographic (most-significant-first) order.
    let all: Vec<_> = (0..24).map(|i| dims.digits_of(i)).collect();
    let mut sorted = all.clone();
    sorted.sort();
    assert_eq!(all, sorted);
}

#[test]
fn single_qudit_register_is_the_identity_map() {
    let dims = Dims::new(vec![7]).unwrap();
    for index in 0..7 {
        assert_eq!(dims.digits_of(index), vec![index]);
        assert_eq!(dims.index_of(&[index]), index);
    }
}

#[test]
fn large_qubit_register_does_not_overflow() {
    // 63 qubits: the space size is 2⁶³, the last valid index 2⁶³ − 1, and
    // the unreduced tree has 2⁶⁴ − 1 edges — every one of these sits right
    // at the edge of u64/usize without wrapping.
    let dims = Dims::uniform(63, 2).unwrap();
    assert_eq!(dims.space_size(), 1usize << 63);
    assert_eq!(dims.strides()[0], 1usize << 62);
    let top = (1usize << 63) - 1;
    let digits = dims.digits_of(top);
    assert!(digits.iter().all(|&d| d == 1));
    assert_eq!(dims.index_of(&digits), top);
    assert_eq!(dims.digits_of(0), vec![0; 63]);
    assert_eq!(dims.full_tree_edge_count(), usize::MAX);
    assert_eq!(dims.full_tree_node_count(), (1usize << 63) - 1);
}

#[test]
fn large_mixed_register_round_trips_at_extremes() {
    // 4^20 · 9 ≈ 9.9 × 10¹², far beyond dense simulation but fine for
    // index arithmetic.
    let mut v = vec![4; 20];
    v.push(9);
    let dims = Dims::new(v).unwrap();
    let size = dims.space_size();
    assert_eq!(size, 4usize.pow(20) * 9);
    for index in [0, 1, size / 2, size - 2, size - 1] {
        assert_eq!(
            dims.index_of(&dims.digits_of(index)),
            index,
            "index {index}"
        );
    }
}

#[test]
#[should_panic(expected = "out of range")]
fn digits_of_space_size_panics() {
    let dims = Dims::new(vec![3, 2, 4]).unwrap();
    let _ = dims.digits_of(24);
}

#[test]
#[should_panic(expected = "does not match register length")]
fn index_of_wrong_arity_panics() {
    let dims = Dims::new(vec![3, 2, 4]).unwrap();
    let _ = dims.index_of(&[0, 0]);
}

#[test]
#[should_panic(expected = "exceeds local dimension")]
fn index_of_out_of_range_digit_panics() {
    let dims = Dims::new(vec![3, 2, 4]).unwrap();
    let _ = dims.index_of(&[0, 2, 0]);
}
