//! State-preparation synthesis for mixed-dimensional qudit systems from
//! edge-weighted decision diagrams.
//!
//! This crate implements the primary contribution of *"Mixed-Dimensional
//! Qudit State Preparation Using Edge-Weighted Decision Diagrams"* (Mato,
//! Hillmich, Wille — DAC 2024):
//!
//! * [`synthesize`] — the DD-traversal synthesis of §4.2. Every node of the
//!   diagram yields `d − 1` multi-controlled Givens rotations (pairs of
//!   adjacent successor edges, processed from the back) plus one two-level
//!   phase rotation, controlled on the `(qudit, level)` pairs along the path
//!   from the root. The algorithm is linear in the number of diagram nodes.
//! * [`prepare`] — the full three-step pipeline of the paper's Figure 2:
//!   state vector → decision diagram → (optional) approximation →
//!   synthesized circuit, with a [`SynthesisReport`] carrying exactly the
//!   metrics of Table 1 (Nodes, DistinctC, Operations, #Controls, Time).
//! * [`Preparer`] — the reusable pipeline object behind the batch engine:
//!   it owns per-worker scratch (a resettable arena and compute cache)
//!   recycled across jobs, with [`prepare`] and friends as thin one-shot
//!   wrappers producing bit-identical circuits.
//! * [`baseline`] — a dense recursive disentangler that never builds a
//!   diagram, used to quantify what the DD representation buys.
//! * [`verify`] — synthesize-then-simulate helpers returning the reached
//!   fidelity.
//!
//! # Examples
//!
//! ```
//! use mdq_core::{prepare, PrepareOptions};
//! use mdq_num::radix::Dims;
//! use mdq_sim::StateVector;
//! use mdq_states::ghz;
//!
//! // The two-qutrit GHZ state of the paper's Figure 1.
//! let dims = Dims::new(vec![3, 3])?;
//! let target = ghz(&dims);
//! let result = prepare(&dims, &target, PrepareOptions::exact())?;
//!
//! let mut state = StateVector::ground(dims);
//! state.apply_circuit(&result.circuit);
//! assert!(state.fidelity_with_amplitudes(&target) > 1.0 - 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod pipeline;
mod synth;
pub mod verify;

pub use pipeline::{
    prepare, prepare_from_dd, prepare_sparse, PreparationResult, PrepareError, PrepareOptions,
    Preparer, SynthesisReport, VerificationPolicy, VerificationReport,
};
pub use synth::{synthesize, Direction, ProductRule, SynthesisOptions};

// Compile-time Send/Sync audit: preparers, options and results cross worker
// threads in the batch-preparation engine (`mdq-engine`).
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Preparer>();
    assert_send_sync::<PrepareOptions>();
    assert_send_sync::<PreparationResult>();
    assert_send_sync::<SynthesisReport>();
    assert_send_sync::<PrepareError>();
    assert_send_sync::<VerificationPolicy>();
    assert_send_sync::<VerificationReport>();
};
