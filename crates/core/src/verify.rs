//! Synthesize-then-simulate verification helpers.
//!
//! The paper's Table 1 reports the fidelity actually reached by the
//! synthesized circuits (1.00 exact, 0.99 approximated at the 0.98
//! threshold); these helpers measure that number with the dense simulator.

use mdq_circuit::Circuit;
use mdq_num::radix::Dims;
use mdq_num::Complex;
use mdq_sim::StateVector;

use crate::pipeline::{prepare, PreparationResult, PrepareError, PrepareOptions};

/// Applies `circuit` to `|0…0⟩` and returns the fidelity with `target`
/// (assumed normalized, in mixed-radix order over the circuit's register).
///
/// # Panics
///
/// Panics if `target` does not match the circuit's register size.
#[must_use]
pub fn prepared_fidelity(circuit: &Circuit, target: &[Complex]) -> f64 {
    let mut state = StateVector::ground(circuit.dims().clone());
    state.apply_circuit(circuit);
    state.fidelity_with_amplitudes(target)
}

/// Applies `circuit` to the diagram `|0…0⟩` by decision-diagram simulation
/// and returns the fidelity with `target` — usable on registers far beyond
/// dense-simulation reach, as long as the circuit's controls sit above
/// their targets (always true for synthesized circuits).
///
/// # Panics
///
/// Panics if the circuit contains below-target controls (use the dense
/// [`prepared_fidelity`] for such circuits) or registers mismatch.
///
/// # Examples
///
/// ```
/// use mdq_core::{prepare_sparse, verify::prepared_fidelity_dd, PrepareOptions};
/// use mdq_dd::{BuildOptions, StateDd};
/// use mdq_num::radix::Dims;
/// use mdq_states::sparse;
///
/// // 12 mixed qudits (≈1.3 million amplitudes): verified without ever
/// // materializing the dense vector.
/// let dims = Dims::new(vec![3, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2])?;
/// let entries = sparse::ghz(&dims);
/// let result = prepare_sparse(&dims, &entries, PrepareOptions::exact())?;
/// let target = StateDd::from_sparse(&dims, &entries, BuildOptions::default())?;
/// let fidelity = prepared_fidelity_dd(&result.circuit, &target);
/// assert!(fidelity > 1.0 - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn prepared_fidelity_dd(circuit: &Circuit, target: &mdq_dd::StateDd) -> f64 {
    let prepared = mdq_dd::StateDd::ground(circuit.dims())
        .apply_circuit(circuit)
        .expect("synthesized circuits have root-side controls");
    prepared.fidelity(target)
}

/// Runs [`prepare`] and measures the reached fidelity in one step.
///
/// Returns the preparation result together with the simulated fidelity
/// against the *original* target (not the approximated one), which is what
/// the paper's "Fidelity" column reports.
///
/// # Errors
///
/// Propagates any [`PrepareError`] from the pipeline.
///
/// # Examples
///
/// ```
/// use mdq_core::{verify::prepare_and_verify, PrepareOptions};
/// use mdq_num::radix::Dims;
/// use mdq_states::ghz;
///
/// let dims = Dims::new(vec![3, 6, 2])?;
/// let (result, fidelity) = prepare_and_verify(&dims, &ghz(&dims), PrepareOptions::exact())?;
/// assert!(fidelity > 1.0 - 1e-9);
/// assert_eq!(result.report.operations, 19);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn prepare_and_verify(
    dims: &Dims,
    target: &[Complex],
    opts: PrepareOptions,
) -> Result<(PreparationResult, f64), PrepareError> {
    let result = prepare(dims, target, opts)?;
    // Normalize the caller's target for a meaningful fidelity.
    let norm = mdq_num::norm(target);
    let normalized: Vec<Complex> = target.iter().map(|a| *a / norm).collect();
    let fidelity = prepared_fidelity(&result.circuit, &normalized);
    Ok((result, fidelity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_states::{embedded_w, ghz, random_state, w_state, RandomKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    #[test]
    fn exact_synthesis_reaches_unit_fidelity_on_all_benchmarks() {
        // The first three Table 1 registers × all four benchmark families.
        for v in [&[3usize, 6, 2][..], &[9, 5, 6, 3], &[6, 6, 5, 3, 3]] {
            let d = dims(v);
            let mut rng = StdRng::seed_from_u64(v.len() as u64);
            let states: Vec<Vec<Complex>> = vec![
                ghz(&d),
                w_state(&d),
                embedded_w(&d),
                random_state(&d, RandomKind::ReImUniform, &mut rng),
            ];
            for (i, s) in states.iter().enumerate() {
                let (_, f) = prepare_and_verify(&d, s, PrepareOptions::exact()).unwrap();
                assert!((f - 1.0).abs() < 1e-9, "dims {v:?} state {i}: fidelity {f}");
            }
        }
    }

    #[test]
    fn approximated_synthesis_respects_threshold() {
        let d = dims(&[3, 6, 2]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let s = random_state(&d, RandomKind::ReImUniform, &mut rng);
            let (result, f) =
                prepare_and_verify(&d, &s, PrepareOptions::approximated(0.98)).unwrap();
            assert!(f >= 0.98 - 1e-9, "fidelity {f}");
            assert!(f >= result.report.fidelity_bound - 1e-9);
        }
    }

    #[test]
    fn reduction_preserves_fidelity() {
        let d = dims(&[3, 4, 2]);
        let mut rng = StdRng::seed_from_u64(6);
        let s = random_state(&d, RandomKind::MagnitudePhase, &mut rng);
        let (_, f) = prepare_and_verify(&d, &s, PrepareOptions::exact().with_reduction()).unwrap();
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn dd_verification_agrees_with_dense_verification() {
        let d = dims(&[3, 6, 2]);
        let mut rng = StdRng::seed_from_u64(9);
        for target in [
            ghz(&d),
            w_state(&d),
            random_state(&d, RandomKind::ReImUniform, &mut rng),
        ] {
            let result = prepare(&d, &target, PrepareOptions::exact()).unwrap();
            let dense = prepared_fidelity(&result.circuit, &target);
            let target_dd =
                mdq_dd::StateDd::from_amplitudes(&d, &target, mdq_dd::BuildOptions::default())
                    .unwrap();
            let via_dd = prepared_fidelity_dd(&result.circuit, &target_dd);
            assert!((dense - via_dd).abs() < 1e-9, "{dense} vs {via_dd}");
            assert!((via_dd - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dd_verification_scales_past_dense_reach() {
        use mdq_states::sparse;
        // 18 qudits (~1.1e9 amplitudes): only the diagram path can verify.
        let pattern = [3usize, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2, 5, 3, 2, 3, 4, 2];
        let d = dims(&pattern);
        for entries in [sparse::ghz(&d), sparse::embedded_w(&d)] {
            let result = crate::prepare_sparse(&d, &entries, PrepareOptions::exact()).unwrap();
            let target =
                mdq_dd::StateDd::from_sparse(&d, &entries, mdq_dd::BuildOptions::default())
                    .unwrap();
            let f = prepared_fidelity_dd(&result.circuit, &target);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
        }
    }

    #[test]
    fn unnormalized_targets_are_handled() {
        let d = dims(&[2, 2]);
        let amps = [
            Complex::real(3.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(4.0),
        ];
        let (_, f) = prepare_and_verify(&d, &amps, PrepareOptions::exact()).unwrap();
        assert!((f - 1.0).abs() < 1e-9);
    }
}
