//! The decision-diagram traversal synthesis algorithm (paper §4.2).

use mdq_circuit::{Circuit, Control, Gate, Instruction};
use mdq_dd::{NodeId, NodeRef, StateDd};
use mdq_num::Complex;

/// When the tensor-product reduction of §4.3 may drop a qudit from the
/// control set of the operations synthesized below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProductRule {
    /// Never elide controls (plain tree traversal).
    Off,
    /// Elide when **all** nonzero edges of a node (at least two of them)
    /// point to the same shared child — the paper's tensor-product pattern.
    /// This is the default; it fires on shared diagrams, which arena-built
    /// ([canonical](StateDd::is_canonical)) diagrams are by construction.
    /// On the unreduced Table-1 trees it needs an explicit
    /// [`StateDd::reduce`] first, because only reduction makes identical
    /// subtrees shared there.
    #[default]
    SharedChild,
    /// Additionally elide single-successor nodes (one nonzero edge). Sound —
    /// the other successors carry zero amplitude when the child operations
    /// run — but not done by the paper's implementation, whose operation
    /// counts include the full |0…0⟩ chains; kept as an ablation option.
    SharedChildOrSingle,
}

/// Which circuit the synthesis returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// The preparation circuit `C` with `C|0…0⟩ = |ψ⟩` (up to global phase).
    #[default]
    Prepare,
    /// The disentangling circuit `D` with `D|ψ⟩ = w_root·|0…0⟩`; this is the
    /// order in which operations are derived from the diagram.
    Disentangle,
}

/// Options for [`synthesize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthesisOptions {
    /// Control-elision rule for tensor-product nodes.
    pub product_rule: ProductRule,
    /// Skip rotations that are numerically the identity (θ ≈ 0 Givens and
    /// α ≈ 0 phase corrections). The paper's operation counts include them,
    /// so the default is `false`; enabling this is a free post-optimization
    /// whose effect the ablation benchmark measures.
    pub skip_identities: bool,
    /// Which direction to emit. Defaults to the preparation circuit.
    pub direction: Direction,
}

impl SynthesisOptions {
    /// Options reproducing the paper's Table 1 operation counts exactly:
    /// no identity skipping, shared-child product rule, preparation order.
    #[must_use]
    pub fn paper() -> Self {
        SynthesisOptions::default()
    }
}

/// Synthesizes a circuit constructing the state represented by `dd`
/// (paper §4.2).
///
/// The diagram is traversed depth-first along nonzero edges. For every node
/// visited in a control context, the successor weights are collected into
/// level 0 by `d − 1` Givens rotations processed pairwise from the back
/// (`θ = 2·atan(|w_hi| / |w_lo|)`, `φ = arg w_hi − arg w_lo − π/2`),
/// followed by one two-level phase rotation on levels (0, 1) cancelling the
/// residual phase; each operation is controlled on the `(qudit, level)`
/// pairs along the path from the root, minus any product-elided ancestors.
/// The preparation circuit is the adjoint of this disentangling sequence.
///
/// Complexity is linear in the number of `(node, context)` pairs, which for
/// trees is the node count — the paper's linearity claim.
///
/// The prepared state equals the diagram's state up to the global phase of
/// the diagram's root weight (exactly 1 for states with a real positive
/// leading amplitude).
#[must_use]
pub fn synthesize(dd: &StateDd, opts: SynthesisOptions) -> Circuit {
    let mut disentangler: Vec<Instruction> = Vec::new();
    let tol = dd.tolerance().value();
    if let (_, NodeRef::Node(root)) = dd.root() {
        let mut path: Vec<Control> = Vec::new();
        emit_node(dd, root, &mut path, opts, tol, &mut disentangler);
    }

    let mut circuit = Circuit::new(dd.dims().clone());
    match opts.direction {
        Direction::Disentangle => {
            for instr in disentangler {
                circuit
                    .push(instr)
                    .expect("synthesized instruction is valid");
            }
        }
        Direction::Prepare => {
            for instr in disentangler.into_iter().rev() {
                circuit
                    .push(instr.adjoint())
                    .expect("synthesized instruction is valid");
            }
        }
    }
    circuit
}

/// Post-order emission: children first (so that, in disentangling order,
/// lower levels are cleaned before their parent collects its successors),
/// then the node's own cascade.
fn emit_node(
    dd: &StateDd,
    id: NodeId,
    path: &mut Vec<Control>,
    opts: SynthesisOptions,
    tol: f64,
    out: &mut Vec<Instruction>,
) {
    let node = dd.node(id);
    let qudit = node.level();

    // Tensor-product elision (paper §4.3): if every nonzero edge shares one
    // child, the child factorizes from this qudit and is emitted once,
    // without a control on this qudit.
    let elide = match opts.product_rule {
        ProductRule::Off => None,
        ProductRule::SharedChild => node
            .common_child(tol)
            .and_then(|(child, count)| (count >= 2).then_some(child)),
        ProductRule::SharedChildOrSingle => node.common_child(tol).map(|(child, _)| child),
    };

    if let Some(child) = elide {
        emit_node(dd, child, path, opts, tol, out);
    } else {
        for (k, edge) in node.nonzero_edges(tol) {
            if let NodeRef::Node(child) = edge.target {
                path.push(Control::new(qudit, k));
                emit_node(dd, child, path, opts, tol, out);
                path.pop();
            }
        }
    }

    emit_cascade(node.edges(), qudit, path, opts, out);
}

/// Emits the Givens cascade and phase correction for one node context.
fn emit_cascade(
    edges: &[mdq_dd::Edge],
    qudit: usize,
    path: &[Control],
    opts: SynthesisOptions,
    out: &mut Vec<Instruction>,
) {
    let d = edges.len();
    // Accumulate from the last successor downwards (paper: "beginning from
    // the end of the list, in pairs of two, following a decreasing order").
    let mut acc: Complex = edges[d - 1].weight;
    for k in (0..d - 1).rev() {
        let w = edges[k].weight;
        let theta = 2.0 * acc.abs().atan2(w.abs());
        let phi = acc.arg() - w.arg() - std::f64::consts::FRAC_PI_2;
        let gate = Gate::givens(k, k + 1, theta, phi);
        if !(opts.skip_identities && gate.is_identity(1e-12)) {
            out.push(Instruction::controlled(qudit, gate, path.to_vec()));
        }
        // The collected amplitude lands on level k with magnitude
        // hypot(|w|, |acc|) and the phase of w (for w = 0 the phase is 0).
        acc = Complex::from_polar(w.abs().hypot(acc.abs()), w.arg());
    }
    // Residual phase correction on levels (0, 1): Z(θ) multiplies level 0 by
    // e^{iθ/2}; θ = −2·arg(acc) leaves the branch at exact phase 0.
    let alpha = acc.arg();
    let gate = Gate::z_rotation(0, 1, -2.0 * alpha);
    if !(opts.skip_identities && gate.is_identity(1e-12)) {
        out.push(Instruction::controlled(qudit, gate, path.to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_dd::BuildOptions;
    use mdq_num::radix::Dims;
    use mdq_sim::StateVector;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn build(d: &Dims, amps: &[Complex]) -> StateDd {
        StateDd::from_amplitudes(d, amps, BuildOptions::default()).unwrap()
    }

    /// Synthesizes `amps` and returns the fidelity reached from |0…0⟩.
    fn prep_fidelity(d: &Dims, amps: &[Complex], opts: SynthesisOptions) -> f64 {
        let dd = build(d, amps);
        let circuit = synthesize(&dd, opts);
        let mut state = StateVector::ground(d.clone());
        state.apply_circuit(&circuit);
        state.fidelity_with_amplitudes(amps)
    }

    #[test]
    fn single_qutrit_uniform_superposition() {
        let d = dims(&[3]);
        let a = Complex::real(1.0 / 3.0_f64.sqrt());
        let f = prep_fidelity(&d, &[a, a, a], SynthesisOptions::paper());
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}");
    }

    #[test]
    fn single_qudit_with_phases() {
        let d = dims(&[4]);
        let amps = [
            Complex::from_polar(0.5, 0.3),
            Complex::from_polar(0.5, -1.2),
            Complex::from_polar(0.5, 2.2),
            Complex::from_polar(0.5, 0.9),
        ];
        let f = prep_fidelity(&d, &amps, SynthesisOptions::paper());
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}");
    }

    #[test]
    fn qutrit_qubit_fig3_state() {
        let d = dims(&[3, 2]);
        let a = 1.0 / 3.0_f64.sqrt();
        let mut amps = vec![Complex::ZERO; 6];
        amps[d.index_of(&[0, 0])] = Complex::real(a);
        amps[d.index_of(&[1, 1])] = Complex::real(-a);
        amps[d.index_of(&[2, 1])] = Complex::real(a);
        let f = prep_fidelity(&d, &amps, SynthesisOptions::paper());
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}");
    }

    #[test]
    fn ghz_operation_counts_match_table_one() {
        // Table 1, GHZ rows, "Operations" (Exact): 19, 51, 73.
        for (v, expected) in [
            (vec![3usize, 6, 2], 19usize),
            (vec![9, 5, 6, 3], 51),
            (vec![4, 7, 4, 4, 3, 5], 73),
        ] {
            let d = dims(&v);
            let k = v.iter().copied().min().unwrap();
            let amp = Complex::real(1.0 / (k as f64).sqrt());
            let mut amps = vec![Complex::ZERO; d.space_size()];
            for l in 0..k {
                amps[d.index_of(&vec![l; v.len()])] = amp;
            }
            let circuit = synthesize(&build(&d, &amps), SynthesisOptions::paper());
            assert_eq!(circuit.len(), expected, "dims {v:?}");
        }
    }

    #[test]
    fn random_operation_count_is_edge_count_minus_one() {
        // For dense states every tree node of every level is visited:
        // operations = Σ d_v = edges − 1 (Table 1 Random rows).
        let d = dims(&[3, 6, 2]);
        let amps: Vec<Complex> = (0..36)
            .map(|i| Complex::new(1.0 + (i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let dd = build(&d, &amps);
        let circuit = synthesize(&dd, SynthesisOptions::paper());
        assert_eq!(circuit.len(), 57);
        assert_eq!(circuit.len(), dd.edge_count() - 1);
    }

    #[test]
    fn controls_equal_path_depth() {
        let d = dims(&[3, 6, 2]);
        let amps: Vec<Complex> = (0..36).map(|i| Complex::real(1.0 + i as f64)).collect();
        let circuit = synthesize(&build(&d, &amps), SynthesisOptions::paper());
        let stats = circuit.stats();
        assert_eq!(stats.controls_max, 2); // depth n−1
                                           // Median over per-level op counts (3, 18, 36): level-2 ops dominate.
        assert_eq!(stats.controls_median, 2.0);
    }

    #[test]
    fn disentangle_direction_returns_to_ground() {
        let d = dims(&[3, 2, 4]);
        let amps: Vec<Complex> = (0..24)
            .map(|i| Complex::new((i as f64 * 0.7).sin() + 1.2, (i as f64 * 0.3).cos()))
            .collect();
        let norm = mdq_num::norm(&amps);
        let amps: Vec<Complex> = amps.into_iter().map(|a| a / norm).collect();
        let dd = build(&d, &amps);
        let dis = synthesize(
            &dd,
            SynthesisOptions {
                direction: Direction::Disentangle,
                ..SynthesisOptions::default()
            },
        );
        let mut state = StateVector::from_amplitudes(d.clone(), &amps).unwrap();
        state.apply_circuit(&dis);
        assert!(
            (state.probability(&[0, 0, 0]) - 1.0).abs() < 1e-10,
            "state {state}"
        );
    }

    #[test]
    fn prepare_is_adjoint_of_disentangle() {
        let d = dims(&[2, 3]);
        let amps: Vec<Complex> = (0..6).map(|i| Complex::real(i as f64 + 0.5)).collect();
        let dd = build(&d, &amps);
        let prep = synthesize(&dd, SynthesisOptions::paper());
        let dis = synthesize(
            &dd,
            SynthesisOptions {
                direction: Direction::Disentangle,
                ..SynthesisOptions::default()
            },
        );
        assert_eq!(prep, dis.adjoint());
    }

    #[test]
    fn skip_identities_reduces_ops_for_sparse_states() {
        let d = dims(&[3, 6, 2]);
        let mut amps = vec![Complex::ZERO; 36];
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        amps[d.index_of(&[0, 0, 0])] = a;
        amps[d.index_of(&[1, 1, 1])] = a;
        let dd = build(&d, &amps);
        let full = synthesize(&dd, SynthesisOptions::paper());
        let skipped = synthesize(
            &dd,
            SynthesisOptions {
                skip_identities: true,
                ..SynthesisOptions::default()
            },
        );
        assert_eq!(full.len(), 19);
        assert!(
            skipped.len() < full.len(),
            "{} vs {}",
            skipped.len(),
            full.len()
        );
        // Both prepare the state.
        let mut s = StateVector::ground(d.clone());
        s.apply_circuit(&skipped);
        assert!((s.fidelity_with_amplitudes(&dd.to_amplitudes()) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn product_rule_drops_controls_on_factorized_states() {
        // Uniform product state on [3,4,2]: after reduction, levels share
        // children, so no controls are needed at all.
        let d = dims(&[3, 4, 2]);
        let n = d.space_size();
        let amps = vec![Complex::real(1.0 / (n as f64).sqrt()); n];
        let reduced = build(&d, &amps).reduce();
        let circuit = synthesize(&reduced, SynthesisOptions::paper());
        assert_eq!(circuit.stats().controls_max, 0);
        // And exactly one context per level: Σ d = 3 + 4 + 2 ops.
        assert_eq!(circuit.len(), 9);
        let mut s = StateVector::ground(d);
        s.apply_circuit(&circuit);
        assert!((s.fidelity_with_amplitudes(&amps) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn product_rule_off_keeps_tree_contexts() {
        let d = dims(&[3, 4, 2]);
        let n = d.space_size();
        let amps = vec![Complex::real(1.0 / (n as f64).sqrt()); n];
        let reduced = build(&d, &amps).reduce();
        let circuit = synthesize(
            &reduced,
            SynthesisOptions {
                product_rule: ProductRule::Off,
                ..SynthesisOptions::default()
            },
        );
        // Tree contexts: 3 + 3·4 + 12·2 = 39 ops.
        assert_eq!(circuit.len(), 39);
    }

    #[test]
    fn single_successor_elision_shortens_w_chains() {
        let d = dims(&[3, 6, 2]);
        let amps = {
            // All-levels W state.
            let comps: usize = d.as_slice().iter().map(|x| x - 1).sum();
            let a = Complex::real(1.0 / (comps as f64).sqrt());
            let mut v = vec![Complex::ZERO; d.space_size()];
            for (q, &dd_) in d.as_slice().iter().enumerate() {
                for l in 1..dd_ {
                    let mut digits = vec![0; 3];
                    digits[q] = l;
                    v[d.index_of(&digits)] = a;
                }
            }
            v
        };
        let reduced = build(&d, &amps).reduce();
        let paper = synthesize(&reduced, SynthesisOptions::paper());
        let aggressive = synthesize(
            &reduced,
            SynthesisOptions {
                product_rule: ProductRule::SharedChildOrSingle,
                ..SynthesisOptions::default()
            },
        );
        // Single-successor elision drops *controls* (not operations): the
        // |0…0⟩ chains below excited branches no longer control on their
        // parents.
        assert_eq!(aggressive.len(), paper.len());
        let total = |c: &mdq_circuit::Circuit| c.iter().map(|i| i.control_count()).sum::<usize>();
        assert!(
            total(&aggressive) < total(&paper),
            "{} vs {}",
            total(&aggressive),
            total(&paper)
        );
        let mut s = StateVector::ground(d);
        s.apply_circuit(&aggressive);
        assert!((s.fidelity_with_amplitudes(&amps) - 1.0).abs() < 1e-10);
    }
}
