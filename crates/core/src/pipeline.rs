//! The three-step preparation pipeline of the paper's Figure 2:
//! state → decision diagram → (approximation) → circuit.
//!
//! The pipeline comes in two shapes:
//!
//! * the free functions [`prepare`], [`prepare_sparse`] and
//!   [`prepare_from_dd`] — one-shot entry points allocating fresh scratch
//!   state per call;
//! * the [`Preparer`] — a reusable pipeline object owning per-worker
//!   scratch (a resettable [`DdArena`] and a [`ComputeCache`]) that is
//!   recycled across jobs, the building block of the `mdq-engine` batch
//!   engine. The free functions are thin wrappers over a throwaway
//!   `Preparer`, so both shapes produce bit-identical circuits.

use std::fmt;
use std::time::{Duration, Instant};

use mdq_circuit::Circuit;
use mdq_dd::{
    ApplyError, ApproxError, BuildError, BuildOptions, ComputeCache, DdArena, ScratchPool, StateDd,
};
use mdq_num::radix::Dims;
use mdq_num::{Complex, ComplexTableStats, Tolerance};

use crate::synth::{synthesize, SynthesisOptions};

/// Errors produced by [`prepare`].
#[derive(Debug, Clone, PartialEq)]
pub enum PrepareError {
    /// Building the decision diagram failed.
    Build(BuildError),
    /// The approximation step failed.
    Approx(ApproxError),
    /// The fidelity threshold was not in `(0, 1]`.
    InvalidThreshold(f64),
    /// The verification policy's minimum fidelity was not in `(0, 1]`.
    InvalidVerification(f64),
    /// Replaying a synthesized circuit for verification failed.
    Replay(ApplyError),
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::Build(e) => write!(f, "building the decision diagram failed: {e}"),
            PrepareError::Approx(e) => write!(f, "approximation failed: {e}"),
            PrepareError::InvalidThreshold(t) => {
                write!(f, "fidelity threshold must be in (0, 1], got {t}")
            }
            PrepareError::InvalidVerification(t) => {
                write!(f, "verification fidelity must be in (0, 1], got {t}")
            }
            PrepareError::Replay(e) => write!(f, "verification replay failed: {e}"),
        }
    }
}

impl std::error::Error for PrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrepareError::Build(e) => Some(e),
            PrepareError::Approx(e) => Some(e),
            PrepareError::Replay(e) => Some(e),
            PrepareError::InvalidThreshold(_) | PrepareError::InvalidVerification(_) => None,
        }
    }
}

impl From<BuildError> for PrepareError {
    fn from(e: BuildError) -> Self {
        PrepareError::Build(e)
    }
}

impl From<ApproxError> for PrepareError {
    fn from(e: ApproxError) -> Self {
        PrepareError::Approx(e)
    }
}

/// Serving-time verification policy: whether a synthesized circuit must be
/// replayed by decision-diagram simulation ([`Preparer::replay`]) and
/// checked against the requested target before it is handed to the caller.
///
/// The pipeline itself never acts on this — [`prepare`] produces the same
/// circuit either way — but serving layers (the `mdq-engine` service) read
/// it to decide whether to run the replay check, and the cache layer uses
/// it to keep verified and unverified servings apart. The measured fidelity
/// is against the *original* target state, so for approximated synthesis it
/// reflects the approximation error too: a job prepared with
/// [`PrepareOptions::approximated`]`(0.98)` verifies at roughly the reached
/// fidelity (≈0.99 in the paper's Table 1), not at 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum VerificationPolicy {
    /// Serve circuits as synthesized, without replaying them (the default).
    #[default]
    Off,
    /// Replay the circuit on the ground-state diagram and require at least
    /// this fidelity against the requested target state.
    Replay {
        /// Minimum acceptable fidelity, in `(0, 1]`.
        min_fidelity: f64,
    },
}

impl VerificationPolicy {
    /// Replay verification at the given minimum fidelity.
    #[must_use]
    pub fn replay(min_fidelity: f64) -> Self {
        VerificationPolicy::Replay { min_fidelity }
    }

    /// The minimum fidelity demanded, or `None` when verification is off.
    #[must_use]
    pub fn min_fidelity(&self) -> Option<f64> {
        match self {
            VerificationPolicy::Off => None,
            VerificationPolicy::Replay { min_fidelity } => Some(*min_fidelity),
        }
    }

    /// Whether any verification is demanded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !matches!(self, VerificationPolicy::Off)
    }
}

/// The outcome of one replay verification ([`Preparer::verify_dense`] /
/// [`Preparer::verify_sparse`]): what was measured, how big the replayed
/// diagram was, and how long the check took.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// Fidelity between the state the circuit actually prepares (by DD
    /// replay from `|0…0⟩`) and the requested target state.
    pub fidelity: f64,
    /// Node count of the replayed diagram — the size of the verification
    /// witness.
    pub replay_nodes: usize,
    /// Wall-clock time of the replay + fidelity computation.
    pub duration: Duration,
}

/// Options for the [`prepare`] pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrepareOptions {
    /// Target state fidelity. `None` synthesizes exactly (Table 1 "Exact");
    /// `Some(0.98)` reproduces the "Approximated 98 %" columns.
    pub fidelity_threshold: Option<f64>,
    /// Numerical tolerance for zero tests and weight canonicalization.
    pub tolerance: Tolerance,
    /// Synthesis options (product rule, identity skipping, direction).
    pub synthesis: SynthesisOptions,
    /// Reduce the diagram (share identical subtrees) before synthesis; this
    /// is what allows the tensor-product control elision to fire.
    pub reduce: bool,
    /// Build the initial diagram as the paper's unreduced tree including
    /// zero branches, so that the reported initial "Nodes" metric matches
    /// the Exact column of Table 1 (e.g. 58 for `[3,6,2]` regardless of the
    /// state). Synthesis itself never descends zero branches, so this only
    /// affects metrics and memory, not the circuit.
    pub keep_zero_subtrees: bool,
    /// Serving-time verification demanded for this preparation. The
    /// pipeline ignores it (circuits are identical either way); serving
    /// layers replay-check the circuit when it is enabled.
    pub verification: VerificationPolicy,
}

impl PrepareOptions {
    /// Exact synthesis with paper-faithful metrics.
    #[must_use]
    pub fn exact() -> Self {
        PrepareOptions {
            fidelity_threshold: None,
            tolerance: Tolerance::default(),
            synthesis: SynthesisOptions::paper(),
            reduce: false,
            keep_zero_subtrees: true,
            verification: VerificationPolicy::Off,
        }
    }

    /// Approximated synthesis targeting the given fidelity (the paper's
    /// evaluation uses 0.98).
    #[must_use]
    pub fn approximated(fidelity_threshold: f64) -> Self {
        PrepareOptions {
            fidelity_threshold: Some(fidelity_threshold),
            ..PrepareOptions::exact()
        }
    }

    /// Enables diagram reduction (subtree sharing + tensor-product control
    /// elision) before synthesis.
    #[must_use]
    pub fn with_reduction(mut self) -> Self {
        self.reduce = true;
        self
    }

    /// Overrides the synthesis options.
    #[must_use]
    pub fn with_synthesis(mut self, synthesis: SynthesisOptions) -> Self {
        self.synthesis = synthesis;
        self
    }

    /// Disables the zero-branch tree (smaller memory, identical circuits;
    /// the initial "Nodes" metric then reports the zero-pruned tree).
    #[must_use]
    pub fn without_zero_subtrees(mut self) -> Self {
        self.keep_zero_subtrees = false;
        self
    }

    /// Demands serving-time verification under the given policy (builder
    /// style). The synthesized circuit is unchanged; serving layers replay
    /// it and fail the job below the policy's fidelity floor.
    #[must_use]
    pub fn with_verification(mut self, verification: VerificationPolicy) -> Self {
        self.verification = verification;
        self
    }

    /// Validates the thresholds of these options exactly as the pipeline
    /// itself will: the fidelity threshold and any demanded verification
    /// floor must lie in `(0, 1]`. Exposed so admission layers (the
    /// engine's submit path) can reject invalid options *before* queueing
    /// a job, with the identical error the worker would have produced.
    ///
    /// # Errors
    ///
    /// [`PrepareError::InvalidThreshold`] /
    /// [`PrepareError::InvalidVerification`], as [`prepare`] returns them.
    pub fn validate(&self) -> Result<(), PrepareError> {
        if let Some(t) = self.fidelity_threshold {
            if !(t > 0.0 && t <= 1.0) {
                return Err(PrepareError::InvalidThreshold(t));
            }
        }
        if let Some(t) = self.verification.min_fidelity() {
            if !(t > 0.0 && t <= 1.0) {
                return Err(PrepareError::InvalidVerification(t));
            }
        }
        Ok(())
    }
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions::exact()
    }
}

/// The metrics of one pipeline run — the columns of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// Edge count of the initial diagram ("Nodes", Exact column when
    /// `keep_zero_subtrees` is on).
    pub nodes_initial: usize,
    /// Edge count of the diagram actually synthesized ("Nodes",
    /// Approximated column).
    pub nodes_final: usize,
    /// Distinct complex weights of the initial diagram ("DistinctC").
    pub distinct_c_initial: usize,
    /// Distinct complex weights of the synthesized diagram.
    pub distinct_c_final: usize,
    /// Number of multi-controlled operations ("Operations").
    pub operations: usize,
    /// Median controls per operation ("#Controls").
    pub controls_median: f64,
    /// Mean controls per operation.
    pub controls_mean: f64,
    /// Maximum controls on any operation.
    pub controls_max: usize,
    /// Nodes removed by the approximation step.
    pub removed_nodes: usize,
    /// Probability mass pruned by the approximation step.
    pub pruned_mass: f64,
    /// Guaranteed lower bound on the prepared fidelity ("Fidelity"):
    /// 1 − pruned mass (exactly 1 for exact synthesis).
    pub fidelity_bound: f64,
    /// Wall-clock time of approximation + synthesis ("Time"), excluding the
    /// initial diagram construction (matching the paper's "elapsed time
    /// during the approximation and synthesis process").
    pub time: Duration,
    /// Wall-clock time including diagram construction.
    pub total_time: Duration,
}

/// Result of the [`prepare`] pipeline.
#[derive(Debug, Clone)]
pub struct PreparationResult {
    /// The synthesized preparation circuit (`C|0…0⟩ = |ψ⟩` up to the global
    /// phase of the diagram root weight).
    pub circuit: Circuit,
    /// The diagram that was synthesized (after approximation/reduction).
    pub dd: StateDd,
    /// The Table 1 metrics of this run.
    pub report: SynthesisReport,
}

/// Runs the full pipeline of the paper's Figure 2 on a dense state vector:
/// build the edge-weighted decision diagram, optionally approximate it to
/// the requested fidelity, optionally reduce it, and synthesize the
/// preparation circuit.
///
/// # Errors
///
/// Returns [`PrepareError`] if the amplitudes are invalid for `dims`, the
/// threshold is outside `(0, 1]`, or approximation fails.
///
/// # Examples
///
/// ```
/// use mdq_core::{prepare, PrepareOptions};
/// use mdq_num::radix::Dims;
/// use mdq_states::w_state;
///
/// let dims = Dims::new(vec![3, 6, 2])?;
/// let result = prepare(&dims, &w_state(&dims), PrepareOptions::exact())?;
/// // Table 1, W-state row for [3,6,2]: 58 tree edges, 37 operations.
/// assert_eq!(result.report.nodes_initial, 58);
/// assert_eq!(result.report.operations, 37);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn prepare(
    dims: &Dims,
    amplitudes: &[Complex],
    opts: PrepareOptions,
) -> Result<PreparationResult, PrepareError> {
    Preparer::new().prepare(dims, amplitudes, opts)
}

fn validate_threshold(opts: &PrepareOptions) -> Result<(), PrepareError> {
    opts.validate()
}

/// Runs approximation, reduction and synthesis on an already-built diagram —
/// the shared back half of [`prepare`] and [`prepare_sparse`], also usable
/// directly to reuse a diagram (and its arena) across pipeline stages.
///
/// Since diagrams are canonical by construction, the historical
/// build-then-reduce two-step only survives for the `keep_zero_subtrees`
/// Table-1 trees: on an arena-built diagram the reduce option is skipped
/// outright (it would be a structural no-op), so one pipeline run allocates
/// one arena.
///
/// # Errors
///
/// Returns [`PrepareError`] for an invalid threshold or a failing
/// approximation step.
pub fn prepare_from_dd(
    initial: StateDd,
    opts: PrepareOptions,
) -> Result<PreparationResult, PrepareError> {
    Preparer::new().prepare_from_dd(initial, opts)
}

/// Runs the preparation pipeline on a *sparse* `(digits, amplitude)` state
/// description, never materializing the dense vector.
///
/// This scales structured states (GHZ, W, basis, Dicke, …) to registers far
/// beyond dense reach: the cost is linear in the support size and the
/// diagram size, independent of the Hilbert-space size. The
/// `keep_zero_subtrees` option is ignored (the unreduced tree is
/// exponentially large by definition), so the reported initial "Nodes"
/// metric is the zero-pruned tree.
///
/// # Errors
///
/// Returns [`PrepareError`] as [`prepare`] does.
///
/// # Examples
///
/// ```
/// use mdq_core::{prepare_sparse, PrepareOptions};
/// use mdq_num::radix::Dims;
/// use mdq_states::sparse;
///
/// // GHZ over 16 qudits: ~43 million dense amplitudes, 2 sparse entries.
/// let dims = Dims::new(vec![3, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2, 5, 3, 2, 3])?;
/// let result = prepare_sparse(&dims, &sparse::ghz(&dims), PrepareOptions::exact())?;
/// assert!(result.report.operations < 100);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn prepare_sparse(
    dims: &Dims,
    entries: &[(Vec<usize>, Complex)],
    opts: PrepareOptions,
) -> Result<PreparationResult, PrepareError> {
    Preparer::new().prepare_sparse(dims, entries, opts)
}

/// A reusable preparation pipeline owning per-worker scratch state.
///
/// A `Preparer` holds a resettable [`DdArena`] and a [`ComputeCache`] that
/// are recycled across jobs: each [`Preparer::prepare`] call builds its
/// diagram into the reclaimed arena (retaining the grown node store and
/// canonicalization indices instead of reallocating them per request), and
/// [`Preparer::recycle`] takes the arena back out of a finished result.
/// This is the mechanism behind the throughput of persistent unique/compute
/// tables in mature DD packages, applied *across requests*: the batch
/// engine (`mdq-engine`) keeps one `Preparer` per worker thread.
///
/// Results are bit-identical to the one-shot free functions — [`prepare`]
/// and friends are in fact thin wrappers over a throwaway `Preparer`.
///
/// # Examples
///
/// ```
/// use mdq_core::{Preparer, PrepareOptions};
/// use mdq_num::radix::Dims;
/// use mdq_states::{ghz, w_state};
///
/// let dims = Dims::new(vec![3, 6, 2])?;
/// let mut preparer = Preparer::new();
/// // One worker, many jobs, one arena.
/// for state in [ghz(&dims), w_state(&dims)] {
///     let result = preparer.prepare(&dims, &state, PrepareOptions::exact())?;
///     let (circuit, _report) = preparer.recycle(result);
///     assert!(!circuit.is_empty());
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Preparer {
    /// The reclaimed arena of the previous job, if any.
    scratch: Option<DdArena>,
    /// The reclaimed arena of the previous *replay verification*, kept
    /// separately because a job's own arena is still holding its result
    /// while the replay runs.
    replay_scratch: Option<DdArena>,
    /// Memo tables for diagram replays ([`Preparer::replay`]).
    cache: ComputeCache,
    /// Resource cap applied to every build (service deployments).
    node_limit: Option<usize>,
    /// Worker threads the dense/sparse builders may fan out over
    /// (0 and 1 both mean the sequential path).
    build_threads: usize,
    /// Reusable thread-local scratch arenas for multi-threaded builds.
    par_scratch: ScratchPool,
}

impl Preparer {
    /// Creates a preparer with empty scratch state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps every diagram this preparer builds at `limit` nodes; jobs
    /// exceeding it fail with [`PrepareError::Build`] instead of exhausting
    /// memory — the per-worker resource cap for service deployments.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// The configured per-job node cap, if any.
    #[must_use]
    pub fn node_limit(&self) -> Option<usize> {
        self.node_limit
    }

    /// Fans every build this preparer runs out over `threads` worker
    /// threads (1 = today's exact sequential path). The result is
    /// bit-identical to the sequential build — see
    /// [`BuildOptions::build_threads`]. The value is honoured literally;
    /// clamping to the machine and to job size is the serving layer's
    /// policy (the engine grants threads per job at admission cost).
    #[must_use]
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.set_build_threads(threads);
        self
    }

    /// Re-targets the build thread count between jobs — the engine's
    /// per-job grant path.
    pub fn set_build_threads(&mut self, threads: usize) {
        self.build_threads = threads.max(1);
    }

    /// The configured build thread count (at least 1).
    #[must_use]
    pub fn build_threads(&self) -> usize {
        self.build_threads.max(1)
    }

    /// Whether this preparer currently holds a reclaimed scratch arena —
    /// i.e. whether the *next* pipeline run will start on warmed tables
    /// instead of allocating fresh ones. Long-lived service workers use
    /// this to report arena persistence across submissions.
    #[must_use]
    pub fn has_scratch(&self) -> bool {
        self.scratch.is_some()
    }

    /// Usage counters of the scratch arena's weight table (cumulative over
    /// the jobs whose arena this preparer has reclaimed), or `None` while no
    /// arena is held. Telemetry for engine statistics.
    #[must_use]
    pub fn weight_stats(&self) -> Option<ComplexTableStats> {
        self.scratch.as_ref().map(DdArena::weight_stats)
    }

    fn build_options(&self, opts: &PrepareOptions) -> BuildOptions {
        let mut build = BuildOptions::default()
            .tolerance(opts.tolerance)
            .build_threads(self.build_threads());
        if let Some(limit) = self.node_limit {
            build = build.node_limit(limit);
        }
        build
    }

    /// The scratch arena if one is held (reset happens inside the `_in`
    /// builders), or a fresh arena matching the build options.
    fn take_arena(&mut self, build: &BuildOptions) -> DdArena {
        self.scratch
            .take()
            .unwrap_or_else(|| match build.node_limit_value() {
                Some(limit) => DdArena::with_node_limit(build.tolerance_value(), limit),
                None => DdArena::new(build.tolerance_value()),
            })
    }

    /// [`prepare`] executed on this preparer's recycled scratch arena.
    ///
    /// Inputs are validated *before* the scratch arena is handed to the
    /// builder, so a malformed request fails without costing this preparer
    /// its warmed arena (only arena exhaustion mid-build can).
    ///
    /// # Errors
    ///
    /// Returns [`PrepareError`] as [`prepare`] does.
    pub fn prepare(
        &mut self,
        dims: &Dims,
        amplitudes: &[Complex],
        opts: PrepareOptions,
    ) -> Result<PreparationResult, PrepareError> {
        validate_threshold(&opts)?;
        let t0 = Instant::now();
        let build_opts = self
            .build_options(&opts)
            .keep_zero_subtrees(opts.keep_zero_subtrees);
        // The builder re-validates internally; the duplicated O(n) scan is
        // accepted — it is orders of magnitude below build + synthesis, and
        // keeping `from_amplitudes_in` fallible-by-value stays simpler than
        // threading the arena through error returns.
        StateDd::validate_amplitudes(dims, amplitudes, build_opts)?;
        let arena = self.take_arena(&build_opts);
        let initial = StateDd::from_amplitudes_in_pooled(
            dims,
            amplitudes,
            build_opts,
            arena,
            &mut self.par_scratch,
        )?;
        run_pipeline(initial, opts, t0)
    }

    /// [`prepare_sparse`] executed on this preparer's recycled scratch
    /// arena, with the same validate-before-seeding contract as
    /// [`Preparer::prepare`].
    ///
    /// # Errors
    ///
    /// Returns [`PrepareError`] as [`prepare_sparse`] does.
    pub fn prepare_sparse(
        &mut self,
        dims: &Dims,
        entries: &[(Vec<usize>, Complex)],
        opts: PrepareOptions,
    ) -> Result<PreparationResult, PrepareError> {
        validate_threshold(&opts)?;
        let t0 = Instant::now();
        let build_opts = self.build_options(&opts);
        StateDd::validate_sparse(dims, entries, build_opts)?;
        let arena = self.take_arena(&build_opts);
        let initial = StateDd::from_sparse_in_pooled(
            dims,
            entries,
            build_opts,
            arena,
            &mut self.par_scratch,
        )?;
        run_pipeline(initial, opts, t0)
    }

    /// [`prepare_from_dd`] on an already-built diagram (no arena seeding —
    /// the diagram brings its own).
    ///
    /// # Errors
    ///
    /// Returns [`PrepareError`] as [`prepare_from_dd`] does.
    pub fn prepare_from_dd(
        &mut self,
        initial: StateDd,
        opts: PrepareOptions,
    ) -> Result<PreparationResult, PrepareError> {
        validate_threshold(&opts)?;
        run_pipeline(initial, opts, Instant::now())
    }

    /// Takes a finished result apart, reclaiming its diagram's arena as this
    /// preparer's scratch (reset, capacity retained) and returning the parts
    /// a serving layer actually ships: the circuit and its metrics.
    pub fn recycle(&mut self, result: PreparationResult) -> (Circuit, SynthesisReport) {
        let mut arena = result.dd.into_arena();
        arena.reset();
        self.scratch = Some(arena);
        (result.circuit, result.report)
    }

    /// [`Preparer::prepare`] followed by [`Preparer::recycle`] in one call —
    /// the serving loop of a long-lived worker, which never keeps the
    /// diagram, only the circuit and its metrics, and always wants its
    /// arena back for the next job.
    ///
    /// # Errors
    ///
    /// Returns [`PrepareError`] as [`Preparer::prepare`] does; the scratch
    /// arena survives jobs that fail pre-validation.
    pub fn prepare_recycled(
        &mut self,
        dims: &Dims,
        amplitudes: &[Complex],
        opts: PrepareOptions,
    ) -> Result<(Circuit, SynthesisReport), PrepareError> {
        let result = self.prepare(dims, amplitudes, opts)?;
        Ok(self.recycle(result))
    }

    /// [`Preparer::prepare_sparse`] followed by [`Preparer::recycle`] in one
    /// call, the sparse twin of [`Preparer::prepare_recycled`].
    ///
    /// # Errors
    ///
    /// Returns [`PrepareError`] as [`Preparer::prepare_sparse`] does.
    pub fn prepare_sparse_recycled(
        &mut self,
        dims: &Dims,
        entries: &[(Vec<usize>, Complex)],
        opts: PrepareOptions,
    ) -> Result<(Circuit, SynthesisReport), PrepareError> {
        let result = self.prepare_sparse(dims, entries, opts)?;
        Ok(self.recycle(result))
    }

    /// Replays a preparation circuit on the ground-state diagram through
    /// this preparer's [`ComputeCache`] — the decision-diagram verification
    /// path, with the memo tables reused across replays.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] if an instruction cannot be applied to a
    /// diagram (e.g. below-target controls) or the arena overflows.
    pub fn replay(&mut self, circuit: &Circuit) -> Result<StateDd, ApplyError> {
        StateDd::ground(circuit.dims()).apply_circuit_with(circuit, &mut self.cache)
    }

    /// The verification-internal replay: like [`Preparer::replay`], but
    /// built into this preparer's reclaimed replay arena and left
    /// uncompacted (the caller evaluates it once, then hands the arena
    /// back through [`Preparer::recycle_replay`]).
    fn replay_recycled(&mut self, circuit: &Circuit) -> Result<StateDd, ApplyError> {
        let ground = match self.replay_scratch.take() {
            Some(arena) => StateDd::ground_in(circuit.dims(), arena),
            None => StateDd::ground(circuit.dims()),
        };
        ground.apply_circuit_consuming(circuit, &mut self.cache)
    }

    /// Reclaims a replayed diagram's arena for the next verification.
    fn recycle_replay(&mut self, replayed: StateDd) {
        let mut arena = replayed.into_arena();
        arena.reset();
        self.replay_scratch = Some(arena);
    }

    /// Replay-verifies a synthesized circuit against the *dense* target it
    /// was prepared from: applies the circuit to the ground-state diagram
    /// ([`Preparer::replay`], memo tables reused) and measures the fidelity
    /// with `target` — the serving-time correctness check advocated by
    /// DD-based simulation packages, without ever touching a dense
    /// simulator.
    ///
    /// `target` must be the amplitude vector of the circuit's register
    /// (length `circuit.dims().space_size()`); it does not have to be
    /// normalized.
    ///
    /// # Errors
    ///
    /// [`PrepareError::Replay`] when the circuit cannot be replayed on a
    /// diagram (below-target controls, arena overflow).
    pub fn verify_dense(
        &mut self,
        circuit: &Circuit,
        target: &[Complex],
    ) -> Result<VerificationReport, PrepareError> {
        let t0 = Instant::now();
        let replayed = self
            .replay_recycled(circuit)
            .map_err(PrepareError::Replay)?;
        let replay_nodes = replayed.live_node_count();
        let prepared = replayed.to_amplitudes();
        let norm = mdq_num::norm(target);
        let fidelity = if norm > 0.0 {
            let normalized: Vec<Complex> = target.iter().map(|a| *a / norm).collect();
            mdq_num::fidelity(&normalized, &prepared)
        } else {
            0.0
        };
        self.recycle_replay(replayed);
        Ok(VerificationReport {
            fidelity,
            replay_nodes,
            duration: t0.elapsed(),
        })
    }

    /// The sparse twin of [`Preparer::verify_dense`]: replay the circuit,
    /// then compute the fidelity against the `(digits, amplitude)` support
    /// list by evaluating the replayed diagram at each support point —
    /// `O(support × width)` on top of the replay, never materializing the
    /// dense vector, so it scales to the same registers the sparse pipeline
    /// does. Duplicate support entries are summed, near-zero ones dropped,
    /// exactly as the builder does under `tolerance`.
    ///
    /// # Errors
    ///
    /// [`PrepareError::Replay`] when the replay fails,
    /// [`PrepareError::Build`] when the support list is malformed for the
    /// circuit's register.
    pub fn verify_sparse(
        &mut self,
        circuit: &Circuit,
        target: &[(Vec<usize>, Complex)],
        tolerance: Tolerance,
    ) -> Result<VerificationReport, PrepareError> {
        let t0 = Instant::now();
        let dims = circuit.dims().clone();
        let support = StateDd::canonical_sparse_support(&dims, target, tolerance)?;
        let replayed = self
            .replay_recycled(circuit)
            .map_err(PrepareError::Replay)?;
        let replay_nodes = replayed.live_node_count();
        // ⟨target|replayed⟩ over the target's support; the replayed diagram
        // is normalized by construction (unitary circuit on |0…0⟩), so the
        // fidelity only needs the target's norm.
        let mut inner = Complex::ZERO;
        let mut norm_sq = 0.0;
        for (index, amplitude) in support {
            let digits = dims.digits_of(index);
            inner += amplitude.conj() * replayed.amplitude(&digits);
            norm_sq += amplitude.norm_sqr();
        }
        let fidelity = if norm_sq > 0.0 {
            inner.norm_sqr() / norm_sq
        } else {
            0.0
        };
        self.recycle_replay(replayed);
        Ok(VerificationReport {
            fidelity,
            replay_nodes,
            duration: t0.elapsed(),
        })
    }
}

fn run_pipeline(
    initial: StateDd,
    opts: PrepareOptions,
    t0: Instant,
) -> Result<PreparationResult, PrepareError> {
    let nodes_initial = initial.edge_count();
    let distinct_c_initial = initial.distinct_complex_count();

    let t1 = Instant::now();
    let (dd, removed_nodes, pruned_mass) = match opts.fidelity_threshold {
        Some(threshold) => {
            let approx = initial.approximate(1.0 - threshold)?;
            (approx.dd, approx.removed_nodes, approx.pruned_mass)
        }
        None => (initial, 0, 0.0),
    };
    // Arena-built diagrams are maximally shared already; an explicit
    // reduction pass is only meaningful on Table-1 trees.
    let dd = if opts.reduce && !dd.is_canonical() {
        dd.reduce()
    } else {
        dd
    };

    let circuit = synthesize(&dd, opts.synthesis);
    let time = t1.elapsed();
    let total_time = t0.elapsed();

    let stats = circuit.stats();
    let report = SynthesisReport {
        nodes_initial,
        nodes_final: dd.edge_count(),
        distinct_c_initial,
        distinct_c_final: dd.distinct_complex_count(),
        operations: stats.operations,
        controls_median: stats.controls_median,
        controls_mean: stats.controls_mean,
        controls_max: stats.controls_max,
        removed_nodes,
        pruned_mass,
        fidelity_bound: 1.0 - pruned_mass,
        time,
        total_time,
    };
    Ok(PreparationResult {
        circuit,
        dd,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_states::{embedded_w, ghz, random_state, w_state, RandomKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    /// The five Table 1 registers with the qudit orderings recovered from
    /// the structural "Nodes" column.
    const TABLE1_DIMS: [&[usize]; 5] = [
        &[3, 6, 2],
        &[9, 5, 6, 3],
        &[4, 7, 4, 4, 3, 5],
        &[6, 6, 5, 3, 3],
        &[5, 4, 2, 5, 5, 2],
    ];

    #[test]
    fn exact_nodes_metric_matches_table_one() {
        let expected = [58usize, 1135, 8657, 2383, 3266];
        for (v, want) in TABLE1_DIMS.iter().zip(expected) {
            let d = dims(v);
            let r = prepare(&d, &ghz(&d), PrepareOptions::exact()).unwrap();
            assert_eq!(r.report.nodes_initial, want, "dims {v:?}");
        }
    }

    #[test]
    fn ghz_rows_match_table_one() {
        // (dims, operations, approx nodes, distinctC)
        for (v, ops, approx_nodes) in [
            (&[3usize, 6, 2][..], 19usize, 20usize),
            (&[9, 5, 6, 3], 51, 52),
            (&[4, 7, 4, 4, 3, 5], 73, 74),
        ] {
            let d = dims(v);
            let exact = prepare(&d, &ghz(&d), PrepareOptions::exact()).unwrap();
            assert_eq!(exact.report.operations, ops, "dims {v:?}");
            assert_eq!(exact.report.distinct_c_initial, 3, "dims {v:?}");
            let approx = prepare(&d, &ghz(&d), PrepareOptions::approximated(0.98)).unwrap();
            assert_eq!(approx.report.nodes_final, approx_nodes, "dims {v:?}");
            assert_eq!(
                approx.report.operations, ops,
                "approximation must not change GHZ"
            );
            assert!((approx.report.fidelity_bound - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn w_state_rows_match_table_one() {
        for (v, ops, approx_nodes) in [
            (&[3usize, 6, 2][..], 37usize, 38usize),
            (&[9, 5, 6, 3], 186, 187),
            (&[4, 7, 4, 4, 3, 5], 262, 263),
        ] {
            let d = dims(v);
            let r = prepare(&d, &w_state(&d), PrepareOptions::approximated(0.98)).unwrap();
            assert_eq!(r.report.operations, ops, "dims {v:?}");
            assert_eq!(r.report.nodes_final, approx_nodes, "dims {v:?}");
        }
    }

    #[test]
    fn embedded_w_rows_match_table_one() {
        for (v, ops, approx_nodes) in [
            (&[3usize, 6, 2][..], 21usize, 22usize),
            (&[9, 5, 6, 3], 49, 50),
            (&[4, 7, 4, 4, 3, 5], 91, 92),
        ] {
            let d = dims(v);
            let r = prepare(&d, &embedded_w(&d), PrepareOptions::approximated(0.98)).unwrap();
            assert_eq!(r.report.operations, ops, "dims {v:?}");
            assert_eq!(r.report.nodes_final, approx_nodes, "dims {v:?}");
        }
    }

    #[test]
    fn w_state_distinct_c_small_register() {
        // {0, 1, √(6/8), √(1/8), √(1/6)} — Table 1 reports 5.
        let d = dims(&[3, 6, 2]);
        let r = prepare(&d, &w_state(&d), PrepareOptions::exact()).unwrap();
        assert_eq!(r.report.distinct_c_initial, 5);
    }

    #[test]
    fn embedded_w_distinct_c() {
        for (v, want) in [(&[3usize, 6, 2][..], 5usize), (&[9, 5, 6, 3], 7)] {
            let d = dims(v);
            let r = prepare(&d, &embedded_w(&d), PrepareOptions::exact()).unwrap();
            assert_eq!(r.report.distinct_c_initial, want, "dims {v:?}");
        }
    }

    #[test]
    fn random_exact_rows_match_table_one() {
        let expected_ops = [57usize, 1134, 8656, 2382, 3265];
        let mut rng = StdRng::seed_from_u64(40);
        for (v, ops) in TABLE1_DIMS.iter().zip(expected_ops) {
            let d = dims(v);
            let state = random_state(&d, RandomKind::ReImUniform, &mut rng);
            let r = prepare(&d, &state, PrepareOptions::exact()).unwrap();
            assert_eq!(r.report.operations, ops, "dims {v:?}");
            // Dense random states: every weight distinct ⇒ DistinctC equals
            // the edge count ("Nodes" column), as in Table 1.
            assert_eq!(r.report.distinct_c_initial, r.report.nodes_initial);
        }
    }

    #[test]
    fn random_controls_median_matches_table_one() {
        // Table 1 reports medians 2/2/5/4/5 for the five Random rows. Our
        // per-operation median (= depth of the level holding the median
        // operation) reproduces four of the five exactly; for [9,5,6,3] the
        // structural median is 3 where the paper reports 2 (see
        // EXPERIMENTS.md for the discussion of this metric).
        let expected_median = [2.0, 3.0, 5.0, 4.0, 5.0];
        let mut rng = StdRng::seed_from_u64(41);
        for (v, want) in TABLE1_DIMS.iter().zip(expected_median) {
            let d = dims(v);
            let state = random_state(&d, RandomKind::ReImUniform, &mut rng);
            let r = prepare(&d, &state, PrepareOptions::exact()).unwrap();
            assert_eq!(r.report.controls_median, want, "dims {v:?}");
            assert_eq!(r.report.controls_max, v.len() - 1, "dims {v:?}");
        }
    }

    #[test]
    fn approximated_random_state_reduces_diagram() {
        let d = dims(&[3, 6, 2]);
        let mut rng = StdRng::seed_from_u64(11);
        let state = random_state(&d, RandomKind::ReImUniform, &mut rng);
        let exact = prepare(&d, &state, PrepareOptions::exact()).unwrap();
        let approx = prepare(&d, &state, PrepareOptions::approximated(0.98)).unwrap();
        assert!(approx.report.nodes_final <= exact.report.nodes_initial);
        assert!(approx.report.operations <= exact.report.operations);
        assert!(approx.report.fidelity_bound >= 0.98);
        assert!(approx.report.pruned_mass <= 0.02 + 1e-12);
    }

    #[test]
    fn invalid_threshold_is_rejected() {
        let d = dims(&[2]);
        let amps = [Complex::ONE, Complex::ZERO];
        for t in [0.0, -0.5, 1.5] {
            assert_eq!(
                prepare(&d, &amps, PrepareOptions::approximated(t)).unwrap_err(),
                PrepareError::InvalidThreshold(t)
            );
        }
    }

    #[test]
    fn build_errors_propagate() {
        let d = dims(&[2, 2]);
        let err = prepare(&d, &[Complex::ONE], PrepareOptions::exact()).unwrap_err();
        assert!(matches!(
            err,
            PrepareError::Build(BuildError::WrongLength { .. })
        ));
    }

    #[test]
    fn reduction_option_shares_subtrees() {
        let d = dims(&[3, 4, 2]);
        let n = d.space_size();
        let amps = vec![Complex::real(1.0 / (n as f64).sqrt()); n];
        let plain = prepare(&d, &amps, PrepareOptions::exact()).unwrap();
        let reduced = prepare(&d, &amps, PrepareOptions::exact().with_reduction()).unwrap();
        assert!(reduced.report.nodes_final < plain.report.nodes_final);
        assert!(reduced.report.operations < plain.report.operations);
        assert_eq!(reduced.report.controls_max, 0); // fully factorized
    }

    #[test]
    fn timing_fields_are_populated() {
        let d = dims(&[3, 6, 2]);
        let r = prepare(&d, &ghz(&d), PrepareOptions::exact()).unwrap();
        assert!(r.report.total_time >= r.report.time);
    }

    #[test]
    fn sparse_pipeline_matches_dense_pipeline() {
        let d = dims(&[3, 6, 2]);
        let dense = prepare(
            &d,
            &w_state(&d),
            PrepareOptions::exact().without_zero_subtrees(),
        )
        .unwrap();
        let sparse = prepare_sparse(
            &d,
            &mdq_states::sparse::w_state(&d),
            PrepareOptions::exact(),
        )
        .unwrap();
        assert_eq!(sparse.report.operations, dense.report.operations);
        assert_eq!(sparse.report.nodes_initial, dense.report.nodes_initial);
        assert_eq!(sparse.circuit, dense.circuit);
    }

    #[test]
    fn sparse_pipeline_scales_to_large_registers() {
        // 18 qudits, ~1.1e9 dense amplitudes: only possible sparsely.
        let pattern = [3usize, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2, 5, 3, 2, 3, 4, 2];
        let d = dims(&pattern);
        let r = prepare_sparse(&d, &mdq_states::sparse::ghz(&d), PrepareOptions::exact()).unwrap();
        // GHZ: one context per zero-pruned tree node; 2 branches per level
        // below the root ⇒ ops = d_root + 2·Σ_{ℓ>0} d_ℓ.
        let expected: usize = pattern[0] + 2 * pattern[1..].iter().sum::<usize>();
        assert_eq!(r.report.operations, expected);
        assert_eq!(r.report.controls_max, pattern.len() - 1);
        // Amplitude check on the diagram itself (simulation is impossible).
        let a = 1.0 / 2.0_f64.sqrt();
        assert!((r.dd.amplitude(&[1; 18]).abs() - a).abs() < 1e-12);
    }

    #[test]
    fn prepare_from_dd_matches_prepare() {
        // Handing an already-built diagram into the pipeline (arena reuse
        // across stages) must produce the same circuit and metrics as the
        // end-to-end entry point.
        let d = dims(&[3, 6, 2]);
        let target = w_state(&d);
        let opts = PrepareOptions::exact().without_zero_subtrees();
        let end_to_end = prepare(&d, &target, opts).unwrap();
        let dd = mdq_dd::StateDd::from_amplitudes(
            &d,
            &target,
            BuildOptions::default().tolerance(opts.tolerance),
        )
        .unwrap();
        let staged = prepare_from_dd(dd, opts).unwrap();
        assert_eq!(staged.circuit, end_to_end.circuit);
        assert_eq!(staged.report.operations, end_to_end.report.operations);
        assert_eq!(staged.report.nodes_initial, end_to_end.report.nodes_initial);
    }

    #[test]
    fn prepare_from_dd_validates_threshold() {
        let d = dims(&[2]);
        let dd = mdq_dd::StateDd::ground(&d);
        assert_eq!(
            prepare_from_dd(dd, PrepareOptions::approximated(2.0)).unwrap_err(),
            PrepareError::InvalidThreshold(2.0)
        );
    }

    #[test]
    fn preparer_reuse_is_bit_identical_to_one_shot() {
        // One preparer, many jobs on a recycled arena: every circuit must be
        // bit-identical to the corresponding one-shot free-function run.
        let mut preparer = Preparer::new();
        let mut rng = StdRng::seed_from_u64(7);
        let d3 = dims(&[3, 6, 2]);
        let d2 = dims(&[4, 3]);
        let jobs: Vec<(Dims, Vec<Complex>, PrepareOptions)> = vec![
            (d3.clone(), ghz(&d3), PrepareOptions::exact()),
            (d3.clone(), w_state(&d3), PrepareOptions::approximated(0.98)),
            (
                d2.clone(),
                random_state(&d2, RandomKind::ReImUniform, &mut rng),
                PrepareOptions::exact().without_zero_subtrees(),
            ),
            (d3.clone(), embedded_w(&d3), PrepareOptions::exact()),
        ];
        for (dims, state, opts) in &jobs {
            let one_shot = prepare(dims, state, *opts).unwrap();
            let reused = preparer.prepare(dims, state, *opts).unwrap();
            assert_eq!(reused.circuit, one_shot.circuit);
            assert_eq!(reused.report.operations, one_shot.report.operations);
            assert_eq!(reused.report.nodes_initial, one_shot.report.nodes_initial);
            let (circuit, report) = preparer.recycle(reused);
            assert_eq!(circuit, one_shot.circuit);
            assert_eq!(report.nodes_final, one_shot.report.nodes_final);
        }
        // After recycling, the preparer holds a scratch arena with telemetry.
        let stats = preparer.weight_stats().expect("scratch arena reclaimed");
        assert!(stats.lookups > 0);
        assert_eq!(stats.len, 0, "reset scratch arena is empty");
    }

    #[test]
    fn preparer_recycled_hooks_match_free_functions() {
        let d = dims(&[3, 6, 2]);
        let mut preparer = Preparer::new();
        assert!(!preparer.has_scratch(), "fresh preparer holds no arena");
        let opts = PrepareOptions::exact().without_zero_subtrees();
        let (circuit, report) = preparer.prepare_recycled(&d, &ghz(&d), opts).unwrap();
        let one_shot = prepare(&d, &ghz(&d), opts).unwrap();
        assert_eq!(circuit, one_shot.circuit);
        assert_eq!(report.operations, one_shot.report.operations);
        assert!(preparer.has_scratch(), "arena reclaimed after the job");
        let entries = mdq_states::sparse::w_state(&d);
        let (circuit, _) = preparer
            .prepare_sparse_recycled(&d, &entries, PrepareOptions::exact())
            .unwrap();
        let one_shot = prepare_sparse(&d, &entries, PrepareOptions::exact()).unwrap();
        assert_eq!(circuit, one_shot.circuit);
        assert!(preparer.has_scratch());
        // A pre-validation failure keeps the warmed arena.
        preparer
            .prepare_recycled(&d, &[Complex::ONE], PrepareOptions::exact())
            .unwrap_err();
        assert!(preparer.has_scratch());
    }

    #[test]
    fn preparer_sparse_matches_free_function() {
        let d = dims(&[3, 6, 2]);
        let entries = mdq_states::sparse::w_state(&d);
        let mut preparer = Preparer::new();
        // Warm the arena with an unrelated dense job first.
        let warm = preparer
            .prepare(
                &d,
                &ghz(&d),
                PrepareOptions::exact().without_zero_subtrees(),
            )
            .unwrap();
        preparer.recycle(warm);
        let reused = preparer
            .prepare_sparse(&d, &entries, PrepareOptions::exact())
            .unwrap();
        let one_shot = prepare_sparse(&d, &entries, PrepareOptions::exact()).unwrap();
        assert_eq!(reused.circuit, one_shot.circuit);
        assert_eq!(reused.report.nodes_initial, one_shot.report.nodes_initial);
    }

    #[test]
    fn preparer_node_limit_caps_builds() {
        let d = dims(&[3, 6, 2]);
        let mut preparer = Preparer::new().with_node_limit(2);
        assert_eq!(preparer.node_limit(), Some(2));
        let err = preparer
            .prepare(
                &d,
                &w_state(&d),
                PrepareOptions::exact().without_zero_subtrees(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            PrepareError::Build(BuildError::ArenaOverflow { limit: 2 })
        ));
    }

    #[test]
    fn preparer_keeps_scratch_arena_across_failed_jobs() {
        let d = dims(&[3, 6, 2]);
        let mut preparer = Preparer::new();
        let warm = preparer
            .prepare(
                &d,
                &ghz(&d),
                PrepareOptions::exact().without_zero_subtrees(),
            )
            .unwrap();
        preparer.recycle(warm);
        let lookups_before = preparer.weight_stats().unwrap().lookups;
        // Malformed jobs (wrong length, bad digits) fail during
        // pre-validation and must not cost the preparer its warmed arena.
        let err = preparer
            .prepare(&d, &[Complex::ONE], PrepareOptions::exact())
            .unwrap_err();
        assert!(matches!(
            err,
            PrepareError::Build(BuildError::WrongLength { .. })
        ));
        let err = preparer
            .prepare_sparse(&d, &[(vec![0], Complex::ONE)], PrepareOptions::exact())
            .unwrap_err();
        assert!(matches!(
            err,
            PrepareError::Build(BuildError::WrongDigitCount { .. })
        ));
        let stats = preparer.weight_stats().expect("scratch arena survived");
        assert_eq!(stats.lookups, lookups_before, "arena untouched by failures");
        // The surviving arena still serves the next good job.
        let again = preparer
            .prepare(
                &d,
                &ghz(&d),
                PrepareOptions::exact().without_zero_subtrees(),
            )
            .unwrap();
        let one_shot = prepare(
            &d,
            &ghz(&d),
            PrepareOptions::exact().without_zero_subtrees(),
        )
        .unwrap();
        assert_eq!(again.circuit, one_shot.circuit);
    }

    #[test]
    fn preparer_replay_reaches_target_state() {
        let d = dims(&[3, 4, 2]);
        let target = mdq_states::sparse::ghz(&d);
        let mut preparer = Preparer::new();
        let result = preparer
            .prepare_sparse(&d, &target, PrepareOptions::exact())
            .unwrap();
        let replayed = preparer.replay(&result.circuit).unwrap();
        assert!((replayed.fidelity(&result.dd) - 1.0).abs() < 1e-9);
        // Second replay reuses the preparer's memo tables.
        let again = preparer.replay(&result.circuit).unwrap();
        assert!((again.fidelity(&result.dd) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_pipeline_validates_threshold() {
        let d = dims(&[2, 2]);
        let entries = vec![(vec![0, 0], Complex::ONE)];
        assert_eq!(
            prepare_sparse(&d, &entries, PrepareOptions::approximated(0.0)).unwrap_err(),
            PrepareError::InvalidThreshold(0.0)
        );
    }

    #[test]
    fn verification_policy_is_validated_and_inert() {
        let d = dims(&[3, 3]);
        // Out-of-range verification fidelity is rejected up front.
        for bad in [0.0, -1.0, 1.5] {
            let opts = PrepareOptions::exact().with_verification(VerificationPolicy::replay(bad));
            assert_eq!(
                prepare(&d, &ghz(&d), opts).unwrap_err(),
                PrepareError::InvalidVerification(bad)
            );
        }
        // A valid policy never changes the synthesized circuit.
        let plain = prepare(&d, &ghz(&d), PrepareOptions::exact()).unwrap();
        let policed = prepare(
            &d,
            &ghz(&d),
            PrepareOptions::exact().with_verification(VerificationPolicy::replay(0.99)),
        )
        .unwrap();
        assert_eq!(plain.circuit, policed.circuit);
        assert_eq!(VerificationPolicy::replay(0.99).min_fidelity(), Some(0.99));
        assert!(VerificationPolicy::replay(0.99).is_enabled());
        assert!(!VerificationPolicy::default().is_enabled());
    }

    #[test]
    fn verify_dense_measures_exact_circuits_at_unit_fidelity() {
        let d = dims(&[3, 6, 2]);
        let mut preparer = Preparer::new();
        for target in [ghz(&d), w_state(&d), embedded_w(&d)] {
            let result = preparer
                .prepare(&d, &target, PrepareOptions::exact())
                .unwrap();
            let report = preparer.verify_dense(&result.circuit, &target).unwrap();
            assert!(
                (report.fidelity - 1.0).abs() < 1e-9,
                "fidelity {}",
                report.fidelity
            );
            assert!(report.replay_nodes > 0);
            preparer.recycle(result);
        }
    }

    #[test]
    fn verify_dense_sees_the_approximation_error() {
        // Verification measures against the ORIGINAL target, so an
        // approximated circuit verifies at the reached fidelity (< 1), and
        // the measurement agrees with the dense simulator's.
        let d = dims(&[3, 6, 2]);
        let mut rng = StdRng::seed_from_u64(13);
        let target = random_state(&d, RandomKind::ReImUniform, &mut rng);
        let opts = PrepareOptions::approximated(0.9).without_zero_subtrees();
        let mut preparer = Preparer::new();
        let result = preparer.prepare(&d, &target, opts).unwrap();
        assert!(result.report.pruned_mass > 0.0, "budget 0.1 must prune");
        let report = preparer.verify_dense(&result.circuit, &target).unwrap();
        assert!(report.fidelity < 1.0 - 1e-9, "fidelity {}", report.fidelity);
        assert!(report.fidelity >= 0.9 - 1e-9);
        let simulated = crate::verify::prepared_fidelity(&result.circuit, &target);
        assert!(
            (report.fidelity - simulated).abs() < 1e-9,
            "replay {} vs dense {}",
            report.fidelity,
            simulated
        );
    }

    #[test]
    fn verify_sparse_scales_past_dense_reach() {
        // 16 qudits (~43M dense amplitudes): replay verification works on
        // the support list alone, duplicates summed like the builder does.
        let pattern = [3usize, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2, 5, 3, 2, 3];
        let d = dims(&pattern);
        let entries = mdq_states::sparse::ghz(&d);
        let mut preparer = Preparer::new();
        let result = preparer
            .prepare_sparse(&d, &entries, PrepareOptions::exact())
            .unwrap();
        let report = preparer
            .verify_sparse(&result.circuit, &entries, Tolerance::default())
            .unwrap();
        assert!(
            (report.fidelity - 1.0).abs() < 1e-9,
            "fidelity {}",
            report.fidelity
        );
        // Duplicate-split support verifies identically.
        let h = entries[0].1 * Complex::real(0.5);
        let mut split = vec![(entries[0].0.clone(), h), (entries[0].0.clone(), h)];
        split.extend(entries[1..].iter().cloned());
        let split_report = preparer
            .verify_sparse(&result.circuit, &split, Tolerance::default())
            .unwrap();
        assert!((split_report.fidelity - report.fidelity).abs() < 1e-12);
    }

    #[test]
    fn verify_sparse_rejects_malformed_support() {
        let d = dims(&[3, 3]);
        let mut preparer = Preparer::new();
        let result = preparer
            .prepare_sparse(&d, &mdq_states::sparse::ghz(&d), PrepareOptions::exact())
            .unwrap();
        let err = preparer
            .verify_sparse(
                &result.circuit,
                &[(vec![0, 9], Complex::ONE)],
                Tolerance::default(),
            )
            .unwrap_err();
        assert!(matches!(err, PrepareError::Build(_)));
    }
}
