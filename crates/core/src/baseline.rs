//! A dense recursive disentangler that never builds a decision diagram.
//!
//! The paper evaluates only the DD-based method; to quantify what the
//! diagram representation buys, this module implements the natural
//! comparison point: the same Givens-cascade disentangling applied directly
//! to the dense amplitude vector, visiting **every** prefix of the mixed-
//! radix tree (including all-zero branches). Its operation count is
//! therefore always `Σ_v d_v` over the *full* tree — equal to the DD method
//! on dense random states, but missing all the savings the diagram gets
//! from skipped zero branches, approximation, and tensor-product sharing
//! (e.g. 57 vs. 19 operations for GHZ on `[3,6,2]`).

use mdq_circuit::{Circuit, Control, Gate, Instruction};
use mdq_num::radix::Dims;
use mdq_num::Complex;

/// Synthesizes a preparation circuit for `amplitudes` by dense recursive
/// disentangling, with no decision diagram involved.
///
/// The circuit prepares the normalized state exactly (up to global phase),
/// with `Σ_v d_v` operations over the full mixed-radix tree regardless of
/// the state's structure.
///
/// # Panics
///
/// Panics if the amplitude count does not match `dims.space_size()` or the
/// norm is zero.
///
/// # Examples
///
/// ```
/// use mdq_core::baseline::synthesize_dense;
/// use mdq_num::radix::Dims;
/// use mdq_states::ghz;
///
/// let dims = Dims::new(vec![3, 6, 2])?;
/// let circuit = synthesize_dense(&dims, &ghz(&dims));
/// // Always the full-tree count: 57 for [3,6,2] (the DD method needs 19).
/// assert_eq!(circuit.len(), 57);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn synthesize_dense(dims: &Dims, amplitudes: &[Complex]) -> Circuit {
    assert_eq!(
        amplitudes.len(),
        dims.space_size(),
        "amplitude count must match the register"
    );
    let norm = mdq_num::norm(amplitudes);
    assert!(norm > 1e-12, "state must have nonzero norm");
    let normalized: Vec<Complex> = amplitudes.iter().map(|a| *a / norm).collect();

    let mut disentangler = Vec::new();
    let mut path = Vec::new();
    let _ = emit(dims, 0, &normalized, &mut path, &mut disentangler);

    let mut circuit = Circuit::new(dims.clone());
    for instr in disentangler.into_iter().rev() {
        circuit
            .push(instr.adjoint())
            .expect("baseline instruction is valid");
    }
    circuit
}

/// Recursively disentangles `slice` (the amplitudes under the current
/// prefix), returning the collected amplitude that remains on the all-zero
/// ket of the sub-register.
fn emit(
    dims: &Dims,
    level: usize,
    slice: &[Complex],
    path: &mut Vec<Control>,
    out: &mut Vec<Instruction>,
) -> Complex {
    let d = dims.dim(level);
    let chunk = slice.len() / d;
    let mut collected = Vec::with_capacity(d);
    for k in 0..d {
        let part = &slice[k * chunk..(k + 1) * chunk];
        if level + 1 == dims.len() {
            collected.push(part[0]);
        } else {
            path.push(Control::new(level, k));
            let c = emit(dims, level + 1, part, path, out);
            path.pop();
            collected.push(c);
        }
    }

    // Givens cascade from the back, exactly as in the DD synthesis.
    let mut acc = collected[d - 1];
    for k in (0..d - 1).rev() {
        let w = collected[k];
        let theta = 2.0 * acc.abs().atan2(w.abs());
        let phi = acc.arg() - w.arg() - std::f64::consts::FRAC_PI_2;
        out.push(Instruction::controlled(
            level,
            Gate::givens(k, k + 1, theta, phi),
            path.to_vec(),
        ));
        acc = Complex::from_polar(w.abs().hypot(acc.abs()), w.arg());
    }
    let alpha = acc.arg();
    out.push(Instruction::controlled(
        level,
        Gate::z_rotation(0, 1, -2.0 * alpha),
        path.to_vec(),
    ));
    Complex::real(acc.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_sim::StateVector;
    use mdq_states::{ghz, uniform, w_state};

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn fidelity_of(d: &Dims, amps: &[Complex]) -> f64 {
        let c = synthesize_dense(d, amps);
        let mut s = StateVector::ground(d.clone());
        s.apply_circuit(&c);
        s.fidelity_with_amplitudes(amps)
    }

    #[test]
    fn baseline_prepares_ghz_exactly() {
        let d = dims(&[3, 6, 2]);
        let f = fidelity_of(&d, &ghz(&d));
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}");
    }

    #[test]
    fn baseline_prepares_w_state_exactly() {
        let d = dims(&[3, 4, 2]);
        let f = fidelity_of(&d, &w_state(&d));
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}");
    }

    #[test]
    fn baseline_prepares_uniform_state_exactly() {
        let d = dims(&[2, 3, 2]);
        let f = fidelity_of(&d, &uniform(&d));
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}");
    }

    #[test]
    fn baseline_op_count_is_state_independent() {
        let d = dims(&[3, 6, 2]);
        let g = synthesize_dense(&d, &ghz(&d));
        let w = synthesize_dense(&d, &w_state(&d));
        assert_eq!(g.len(), 57);
        assert_eq!(w.len(), 57);
        assert_eq!(g.len(), d.full_tree_edge_count() - 1);
    }

    #[test]
    fn baseline_never_beats_dd_on_structured_states() {
        use crate::{prepare, PrepareOptions};
        let d = dims(&[3, 6, 2]);
        let dd_ops = prepare(&d, &ghz(&d), PrepareOptions::exact())
            .unwrap()
            .report
            .operations;
        let baseline_ops = synthesize_dense(&d, &ghz(&d)).len();
        assert!(dd_ops < baseline_ops, "{dd_ops} vs {baseline_ops}");
    }

    #[test]
    #[should_panic(expected = "must match the register")]
    fn baseline_rejects_wrong_length() {
        let d = dims(&[2, 2]);
        let _ = synthesize_dense(&d, &[Complex::ONE]);
    }
}
