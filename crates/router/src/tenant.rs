//! Tenants, quotas, and per-tenant accounting.
//!
//! The router is multi-tenant: every submission names a [`TenantId`], and
//! each tenant can be bounded by a [`TenantQuota`] so one flooding tenant
//! cannot monopolize the shard queues. Quotas are enforced *at the
//! router*, before any shard sees the request — a refused submission
//! hands the request back by value
//! ([`RouterError::TenantOverQuota`](crate::RouterError::TenantOverQuota)),
//! mirroring the engine's own
//! [`QueueFull`](mdq_engine::EngineError::QueueFull) admission idiom.
//!
//! Accounting is a strict ledger per tenant:
//! `completed + failed + rejected + dropped == submitted` once all
//! handles have resolved — pinned by the router stress scenario in
//! `tests/engine_stress.rs`.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A tenant identity. Plain `u64` newtype: the router does not
/// authenticate tenants, it accounts and bounds them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant {}", self.0)
    }
}

/// Bounds on one tenant's use of the router. The default is unlimited.
///
/// The effective in-flight limit is the tighter of the two bounds:
///
/// * [`max_in_flight`](TenantQuota::max_in_flight) — an absolute cap on
///   jobs submitted but not yet resolved;
/// * [`max_queue_share`](TenantQuota::max_queue_share) — a fraction of
///   the router's **total** queue capacity (the sum of every shard's
///   bounded queue depth), rounded up and never below 1. When any shard
///   has an unbounded queue there is no meaningful total, and the share
///   bound is inert.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantQuota {
    /// Absolute cap on in-flight jobs; `None` for unlimited.
    pub max_in_flight: Option<usize>,
    /// Cap as a fraction of total shard queue capacity, in `(0, 1]`;
    /// `None` for unlimited.
    pub max_queue_share: Option<f64>,
}

impl TenantQuota {
    /// No bounds (the default for tenants never given a quota).
    #[must_use]
    pub fn unlimited() -> Self {
        TenantQuota::default()
    }

    /// Caps in-flight jobs at `limit`.
    #[must_use]
    pub fn with_max_in_flight(mut self, limit: usize) -> Self {
        self.max_in_flight = Some(limit);
        self
    }

    /// Caps in-flight jobs at `share` of the router's total queue
    /// capacity.
    ///
    /// # Panics
    ///
    /// If `share` is not in `(0, 1]`.
    #[must_use]
    pub fn with_max_queue_share(mut self, share: f64) -> Self {
        assert!(
            share > 0.0 && share <= 1.0,
            "queue share must be in (0, 1], got {share}"
        );
        self.max_queue_share = Some(share);
        self
    }

    /// The effective in-flight limit given the router's total bounded
    /// queue capacity (`None` when any shard is unbounded).
    pub(crate) fn effective_limit(&self, total_queue_depth: Option<usize>) -> Option<usize> {
        let from_share = match (self.max_queue_share, total_queue_depth) {
            (Some(share), Some(total)) => {
                // Ceil of share × total, but never starve a tenant to 0.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let slots = (share * total as f64).ceil() as usize;
                Some(slots.max(1))
            }
            _ => None,
        };
        match (self.max_in_flight, from_share) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }
}

/// Shared per-tenant state: the quota and the live ledger. Handles hold
/// an `Arc` to it so completions are recorded even after topology
/// changes.
#[derive(Debug, Default)]
pub(crate) struct TenantState {
    pub(crate) quota: Mutex<TenantQuota>,
    /// Jobs submitted but not yet resolved (the quota gauge).
    pub(crate) in_flight: AtomicUsize,
    /// Every submission attempt, accepted or not.
    pub(crate) submitted: AtomicU64,
    /// Jobs that resolved successfully.
    pub(crate) completed: AtomicU64,
    /// Jobs that resolved with an [`EngineError`](mdq_engine::EngineError).
    pub(crate) failed: AtomicU64,
    /// Submissions refused by quota or by a shard (handed back by value).
    pub(crate) rejected: AtomicU64,
    /// Accepted jobs whose handle was dropped before its result was
    /// observed (the job still ran; its outcome is unknown to the ledger).
    pub(crate) dropped: AtomicU64,
}

impl TenantState {
    /// Tries to reserve one in-flight slot under `limit`; on success the
    /// gauge is already incremented. Lock-free (CAS loop).
    pub(crate) fn try_reserve(&self, limit: Option<usize>) -> Result<(), usize> {
        match limit {
            None => {
                self.in_flight.fetch_add(1, Ordering::AcqRel);
                Ok(())
            }
            Some(limit) => self
                .in_flight
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < limit).then_some(n + 1)
                })
                .map(|_| ()),
        }
    }

    /// Releases a reserved slot.
    pub(crate) fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn stats(&self, tenant: TenantId) -> TenantStats {
        TenantStats {
            tenant,
            in_flight: self.in_flight.load(Ordering::Acquire),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time ledger for one tenant
/// ([`RouterStats::tenants`](crate::RouterStats::tenants)).
///
/// Once every handle has resolved,
/// `completed + failed + rejected + dropped == submitted`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Jobs currently submitted but unresolved.
    pub in_flight: usize,
    /// Every submission attempt, accepted or refused.
    pub submitted: u64,
    /// Jobs that resolved successfully.
    pub completed: u64,
    /// Jobs that resolved with an engine error.
    pub failed: u64,
    /// Submissions refused (over quota, no shards, or shard queue full).
    pub rejected: u64,
    /// Accepted jobs whose handle was dropped unobserved.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_limit_combines_both_bounds() {
        let unlimited = TenantQuota::unlimited();
        assert_eq!(unlimited.effective_limit(Some(100)), None);
        assert_eq!(unlimited.effective_limit(None), None);

        let absolute = TenantQuota::unlimited().with_max_in_flight(5);
        assert_eq!(absolute.effective_limit(Some(100)), Some(5));
        assert_eq!(absolute.effective_limit(None), Some(5));

        let share = TenantQuota::unlimited().with_max_queue_share(0.25);
        assert_eq!(share.effective_limit(Some(100)), Some(25));
        assert_eq!(share.effective_limit(Some(10)), Some(3)); // ceil(2.5)
        assert_eq!(share.effective_limit(Some(1)), Some(1)); // floor of 1
        assert_eq!(share.effective_limit(None), None); // inert when unbounded

        let both = TenantQuota::unlimited()
            .with_max_in_flight(5)
            .with_max_queue_share(0.5);
        assert_eq!(both.effective_limit(Some(4)), Some(2)); // share tighter
        assert_eq!(both.effective_limit(Some(100)), Some(5)); // absolute tighter
    }

    #[test]
    #[should_panic(expected = "queue share must be in (0, 1]")]
    fn zero_share_is_refused() {
        let _ = TenantQuota::unlimited().with_max_queue_share(0.0);
    }

    #[test]
    fn reserve_is_a_hard_gate() {
        let state = TenantState::default();
        assert!(state.try_reserve(Some(2)).is_ok());
        assert!(state.try_reserve(Some(2)).is_ok());
        assert_eq!(state.try_reserve(Some(2)), Err(2));
        state.release();
        assert!(state.try_reserve(Some(2)).is_ok());
        // Unlimited never refuses.
        for _ in 0..100 {
            assert!(state.try_reserve(None).is_ok());
        }
    }
}
