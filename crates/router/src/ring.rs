//! Consistent-hash ring over shard ids.
//!
//! The router keys every request by its cache fingerprint
//! ([`mdq_engine::fingerprint_of`]) and must send *equal fingerprints to
//! the same shard* — that is what makes each shard's prepared-circuit
//! cache accumulate its own stable slice of the key space. A plain
//! `fp % n_shards` would satisfy that until the first resize, when almost
//! every key would change shard and every cache would go cold at once.
//!
//! Consistent hashing (Karger et al.) keeps resizes incremental: each
//! shard is hashed to `replicas` pseudo-random *points* on a `u64` ring,
//! and a fingerprint routes to the shard owning the first point at or
//! after it (wrapping around). Adding a shard only claims the arcs
//! immediately before its own points — roughly `1/(n+1)` of the key
//! space, taken evenly from everyone — and removing one only releases its
//! own arcs to the next point's owners. Keys never move between two
//! *surviving* shards, so a resize costs exactly the moved fraction and
//! nothing else; `ring` unit tests pin both the exact-membership property
//! and the moved-fraction bound.

/// FNV-1a offset basis (the same constants as the engine's fingerprint
/// hash; the ring only needs *a* stable 64-bit mix, and reusing the
/// workspace's one keeps placement reproducible across runs and builds).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(words: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// Salt separating ring point hashes from the fingerprint domain they
/// route (a fingerprint is itself an FNV-1a value; without a salt a shard
/// point could collide with "its own" keys more often than chance).
const POINT_SALT: u64 = 0x6d64_715f_7269_6e67; // "mdq_ring"

/// A consistent-hash ring mapping `u64` fingerprints to shard ids.
///
/// Deterministic: the same shard set and replica count always produce the
/// same placement, on every platform and across restarts — a router can
/// be rebuilt after a crash and route every fingerprint exactly as
/// before.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: usize,
    /// `(point, shard)` sorted by point (then shard, for the vanishingly
    /// rare equal-point tie — the ordering must not depend on insertion
    /// order or rebuilds would not be deterministic).
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Default virtual nodes per shard: enough to keep the max/min key
    /// spread across shards within a small factor without making resizes
    /// expensive.
    pub const DEFAULT_REPLICAS: usize = 64;

    /// An empty ring placing `replicas` virtual points per shard.
    /// `replicas` is clamped to at least 1.
    #[must_use]
    pub fn new(replicas: usize) -> Self {
        HashRing {
            replicas: replicas.max(1),
            points: Vec::new(),
        }
    }

    /// Adds a shard's points. Returns `false` (ring unchanged) if the
    /// shard is already present.
    pub fn add(&mut self, shard: usize) -> bool {
        if self.contains(shard) {
            return false;
        }
        for replica in 0..self.replicas {
            let point = fnv1a(&[POINT_SALT, shard as u64, replica as u64]);
            self.points.push((point, shard));
        }
        self.points.sort_unstable();
        true
    }

    /// Removes a shard's points. Returns `false` if it was not present.
    pub fn remove(&mut self, shard: usize) -> bool {
        let before = self.points.len();
        self.points.retain(|&(_, s)| s != shard);
        before != self.points.len()
    }

    /// Whether the shard is on the ring.
    #[must_use]
    pub fn contains(&self, shard: usize) -> bool {
        self.points.iter().any(|&(_, s)| s == shard)
    }

    /// The shard owning this fingerprint: the first ring point at or
    /// after it, wrapping around. `None` only when the ring is empty.
    #[must_use]
    pub fn route(&self, fingerprint: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let successor = self
            .points
            .partition_point(|&(point, _)| point < fingerprint);
        let (_, shard) = self.points[successor % self.points.len()];
        Some(shard)
    }

    /// The shard ids currently on the ring, ascending.
    #[must_use]
    pub fn shards(&self) -> Vec<usize> {
        let mut shards: Vec<usize> = self.points.iter().map(|&(_, s)| s).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Number of shards on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards().len()
    }

    /// Whether the ring has no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl Default for HashRing {
    fn default() -> Self {
        HashRing::new(Self::DEFAULT_REPLICAS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic spread of fingerprints covering the whole `u64`
    /// range (golden-ratio stride, no RNG needed).
    fn fingerprints(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect()
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::default();
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.route(42), None);
    }

    #[test]
    fn placement_is_deterministic_and_membership_exact() {
        let mut a = HashRing::default();
        let mut b = HashRing::default();
        // Different insertion orders, same shard set.
        for s in [0, 1, 2, 3] {
            assert!(a.add(s));
        }
        for s in [3, 1, 0, 2] {
            assert!(b.add(s));
        }
        assert!(!a.add(2), "duplicate add must be refused");
        assert_eq!(a.shards(), vec![0, 1, 2, 3]);
        assert_eq!(a.len(), 4);
        for fp in fingerprints(10_000) {
            assert_eq!(a.route(fp), b.route(fp));
        }
        assert!(a.contains(3));
        assert!(!a.contains(4));
    }

    #[test]
    fn join_moves_keys_only_to_the_joiner() {
        let mut ring = HashRing::default();
        for s in 0..4 {
            ring.add(s);
        }
        let fps = fingerprints(20_000);
        let before: Vec<usize> = fps.iter().map(|&fp| ring.route(fp).unwrap()).collect();
        ring.add(4);
        let mut moved = 0usize;
        for (&fp, &old) in fps.iter().zip(&before) {
            let new = ring.route(fp).unwrap();
            if new != old {
                assert_eq!(new, 4, "a moved key may only move to the joining shard");
                moved += 1;
            }
        }
        // Expected moved fraction is 1/5; allow a generous factor for
        // placement variance at 64 replicas.
        let fraction = moved as f64 / fps.len() as f64;
        assert!(
            fraction > 0.05 && fraction < 0.45,
            "moved fraction {fraction} far from 1/5"
        );
    }

    #[test]
    fn leave_moves_only_the_leavers_keys() {
        let mut ring = HashRing::default();
        for s in 0..5 {
            ring.add(s);
        }
        let fps = fingerprints(20_000);
        let before: Vec<usize> = fps.iter().map(|&fp| ring.route(fp).unwrap()).collect();
        assert!(ring.remove(2));
        assert!(!ring.remove(2), "double remove must be refused");
        for (&fp, &old) in fps.iter().zip(&before) {
            let new = ring.route(fp).unwrap();
            if old != 2 {
                assert_eq!(new, old, "keys on surviving shards must not move");
            } else {
                assert_ne!(new, 2);
            }
        }
    }

    #[test]
    fn leave_then_rejoin_restores_the_original_placement() {
        let mut ring = HashRing::default();
        for s in 0..4 {
            ring.add(s);
        }
        let fps = fingerprints(5_000);
        let before: Vec<usize> = fps.iter().map(|&fp| ring.route(fp).unwrap()).collect();
        ring.remove(1);
        ring.add(1);
        for (&fp, &old) in fps.iter().zip(&before) {
            assert_eq!(ring.route(fp).unwrap(), old);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let mut ring = HashRing::new(1);
        ring.add(7);
        for fp in [0, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(ring.route(fp), Some(7));
        }
    }
}
