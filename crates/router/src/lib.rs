//! Sharded multi-tenant serving front-end over [`mdq-engine`] instances.
//!
//! A single [`EngineService`] scales to one process's worth of workers and
//! one prepared-circuit cache. A serving deployment wants *N* of them —
//! each with its own worker pool, cache shard, and warm-start snapshot —
//! behind one submission surface. This crate is that surface:
//!
//! ```text
//!                          ┌─────────────────────── Router ───────────────────────┐
//!  submit(tenant, req) ──▶ │ quota gate ─▶ consistent-hash ring ─▶ shard 0 Engine │
//!    ─▶ RouterHandle       │ (per-tenant    (fingerprint-keyed)  ─▶ shard 1 Engine │
//!  submit(tenant, req) ──▶ │  in-flight /                        ─▶ shard 2 Engine │
//!    ─▶ RouterHandle       │  queue-share)                           …             │
//!                          └──────────────────────────────────────────────────────┘
//! ```
//!
//! * **Cache-affine routing** — requests are keyed by the engine's own
//!   content fingerprint ([`mdq_engine::canonical_key`]): identical
//!   requests always land on the same shard, so each shard's cache and
//!   warm-start snapshot accumulate a stable slice of the key space. The
//!   [`ring`] is a consistent-hash ring: resizing from *n* to *n±1*
//!   shards moves only ~1/n of the keys and never moves a key between
//!   two surviving shards.
//! * **Per-tenant quotas** — every submission names a [`TenantId`]; a
//!   [`TenantQuota`] bounds the tenant's in-flight jobs absolutely and/or
//!   as a share of total shard queue capacity. A tenant at its quota is
//!   refused with [`RouterError::TenantOverQuota`] — the request handed
//!   back by value, other tenants unaffected.
//! * **Warm shards** — with [`RouterConfig::with_snapshot_dir`], each
//!   shard loads `shard-<id>.mdqsnap` at construction and writes it back
//!   on graceful removal, so a shard re-joining the ring starts with the
//!   cache slice it owned before.
//! * **Bit-exact serving** — routing adds nothing to the result: every
//!   circuit is bit-identical to a sequential
//!   [`prepare`](mdq_core::prepare) of the same request, whatever the
//!   shard count, quota pressure, or resize history (pinned by the
//!   routing proptests and the router stress scenario).
//! * **Strict accounting** — [`RouterStats`] reports, per tenant,
//!   `completed + failed + rejected + dropped == submitted` once all
//!   handles resolve, plus per-shard [`EngineStats`] snapshots (taken via
//!   the lock-free [`EngineService::stats_snapshot`]) and cache hit
//!   rates.
//!
//! # Example
//!
//! ```
//! use mdq_core::PrepareOptions;
//! use mdq_engine::{EngineConfig, PrepareRequest};
//! use mdq_num::radix::Dims;
//! use mdq_router::{Router, RouterConfig, TenantId, TenantQuota};
//! use mdq_states::ghz;
//!
//! let router = Router::new(
//!     RouterConfig::default().with_engine_config(EngineConfig::default().with_workers(1)),
//! );
//! for shard in 0..3 {
//!     assert!(router.add_shard(shard));
//! }
//! router.set_quota(TenantId(1), TenantQuota::unlimited().with_max_in_flight(8));
//!
//! let dims = Dims::new(vec![2, 3])?;
//! let request = PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact());
//! let report = router.submit(TenantId(1), request)?.wait()?;
//! assert!(!report.circuit.is_empty());
//! router.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`mdq-engine`]: mdq_engine

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
mod tenant;

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use mdq_engine::{
    canonical_key, AdmissionError, EngineConfig, EngineError, EngineService, EngineStats,
    JobHandle, PrepareReport, PrepareRequest,
};

pub use ring::HashRing;
pub use tenant::{TenantId, TenantQuota, TenantStats};

use tenant::TenantState;

/// Configuration for a [`Router`].
#[derive(Debug, Clone, Default)]
pub struct RouterConfig {
    /// Template for every shard's engine (workers, cache, queue bound…).
    /// Per-shard warm-start paths are derived from
    /// [`snapshot_dir`](RouterConfig::snapshot_dir) and override any
    /// template path.
    pub engine: EngineConfig,
    /// Virtual ring points per shard (`0` means
    /// [`HashRing::DEFAULT_REPLICAS`]).
    pub replicas: usize,
    /// Directory for per-shard warm-start snapshots
    /// (`shard-<id>.mdqsnap`); `None` disables warm shards.
    pub snapshot_dir: Option<PathBuf>,
}

impl RouterConfig {
    /// Sets the engine template every shard is built from.
    #[must_use]
    pub fn with_engine_config(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the virtual ring points per shard.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Enables per-shard warm-start snapshots under `dir`.
    #[must_use]
    pub fn with_snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    fn ring(&self) -> HashRing {
        if self.replicas == 0 {
            HashRing::default()
        } else {
            HashRing::new(self.replicas)
        }
    }
}

/// Why the router refused a submission. Every variant hands the request
/// back by value, mirroring the engine's [`AdmissionError`] idiom: a
/// refused request can be retried, re-routed, or shed without a copy.
#[derive(Debug)]
pub enum RouterError {
    /// The tenant is at its in-flight quota; other tenants are
    /// unaffected.
    TenantOverQuota {
        /// The refused tenant.
        tenant: TenantId,
        /// The request, handed back untouched.
        request: PrepareRequest,
        /// The tenant's in-flight jobs at refusal.
        in_flight: usize,
        /// The effective limit that was hit.
        limit: usize,
    },
    /// The ring is empty — no shard to route to.
    NoShards {
        /// The request, handed back untouched.
        request: PrepareRequest,
    },
    /// The routed shard refused admission (bounded queue full or
    /// closed).
    ShardRefused {
        /// The shard that refused.
        shard: usize,
        /// The request, handed back untouched.
        request: PrepareRequest,
        /// The shard's refusal.
        error: EngineError,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::TenantOverQuota {
                tenant,
                in_flight,
                limit,
                ..
            } => write!(
                f,
                "{tenant} is over quota ({in_flight} in flight, limit {limit})"
            ),
            RouterError::NoShards { .. } => write!(f, "router has no shards"),
            RouterError::ShardRefused { shard, error, .. } => {
                write!(f, "shard {shard} refused the job: {error}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

/// One shard: a stable id on the ring plus the engine serving its slice.
#[derive(Debug)]
struct ShardEntry {
    id: usize,
    service: EngineService,
}

/// The resizable part of the router, guarded by one `RwLock`:
/// submissions take it for read (shared), resizes for write.
#[derive(Debug)]
struct Topology {
    shards: Vec<ShardEntry>,
    ring: HashRing,
    /// Sum of every shard's bounded queue depth; `None` as soon as any
    /// shard is unbounded (queue-share quotas are inert then).
    total_queue_depth: Option<usize>,
}

impl Topology {
    fn recompute_depth(&mut self) {
        let mut total = Some(0usize);
        for entry in &self.shards {
            total = match (total, entry.service.config().queue_depth) {
                (Some(t), Some(d)) => Some(t + d),
                _ => None,
            };
        }
        self.total_queue_depth = if self.shards.is_empty() { None } else { total };
    }
}

/// A sharded, multi-tenant front-end over N [`EngineService`] shards.
///
/// All methods take `&self`; the router is shared across submitting
/// threads directly (it is `Sync`), no `Arc` required unless callers
/// need one.
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    topology: RwLock<Topology>,
    tenants: Mutex<HashMap<TenantId, Arc<TenantState>>>,
}

impl Router {
    /// A router with no shards yet; add them with [`Router::add_shard`].
    #[must_use]
    pub fn new(config: RouterConfig) -> Self {
        let ring = config.ring();
        Router {
            config,
            topology: RwLock::new(Topology {
                shards: Vec::new(),
                ring,
                total_queue_depth: None,
            }),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration the router (and every shard) was built from.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Adds a shard with the given stable id, building its engine from
    /// the config template. With a snapshot directory configured the new
    /// shard warm-starts from `shard-<id>.mdqsnap` when present — a
    /// shard that left gracefully re-joins with the cache slice it owned
    /// before.
    ///
    /// Joining moves only the keys the consistent-hash ring assigns to
    /// the joiner (~1/(n+1) of the space); keys on surviving shards stay
    /// put. Returns `false` (and builds nothing lasting) if the id is
    /// already on the ring.
    pub fn add_shard(&self, id: usize) -> bool {
        if self
            .topology
            .read()
            .expect("router topology poisoned")
            .ring
            .contains(id)
        {
            return false;
        }
        // Build the engine outside the write lock: construction spawns a
        // worker pool and may load a snapshot, and submissions should
        // keep flowing to existing shards meanwhile.
        let mut engine = self.config.engine.clone();
        if let Some(dir) = &self.config.snapshot_dir {
            engine = engine.with_warm_start(dir.join(format!("shard-{id}.mdqsnap")));
        }
        let service = EngineService::new(engine);
        let mut topology = self.topology.write().expect("router topology poisoned");
        if !topology.ring.add(id) {
            // Lost a race with a concurrent add of the same id.
            drop(topology);
            service.shutdown_now();
            return false;
        }
        topology.shards.push(ShardEntry { id, service });
        topology.recompute_depth();
        true
    }

    /// Removes a shard from the ring and gracefully drains it: jobs
    /// already accepted by the shard still complete (their
    /// [`RouterHandle`]s resolve normally), and with a snapshot
    /// directory configured the shard's cache is written back to its
    /// `shard-<id>.mdqsnap` so a later [`Router::add_shard`] of the same
    /// id re-joins warm. Only the leaver's keys move. Returns `false` if
    /// the id is not on the ring.
    pub fn remove_shard(&self, id: usize) -> bool {
        let entry = {
            let mut topology = self.topology.write().expect("router topology poisoned");
            let Some(position) = topology.shards.iter().position(|e| e.id == id) else {
                return false;
            };
            topology.ring.remove(id);
            let entry = topology.shards.remove(position);
            topology.recompute_depth();
            entry
        };
        // Drain outside the lock: new submissions already route around
        // the leaver while it finishes its accepted jobs.
        entry.service.shutdown();
        true
    }

    /// The shard ids currently on the ring, ascending.
    #[must_use]
    pub fn shards(&self) -> Vec<usize> {
        self.topology
            .read()
            .expect("router topology poisoned")
            .ring
            .shards()
    }

    /// Where a fingerprint would route right now (`None` with no
    /// shards). Exposed for balance instrumentation — the serving path
    /// is [`Router::submit`].
    #[must_use]
    pub fn route_fingerprint(&self, fingerprint: u64) -> Option<usize> {
        self.topology
            .read()
            .expect("router topology poisoned")
            .ring
            .route(fingerprint)
    }

    /// Sets (or replaces) a tenant's quota. Takes effect on the next
    /// submission; jobs already in flight are unaffected.
    pub fn set_quota(&self, tenant: TenantId, quota: TenantQuota) {
        let state = self.tenant_state(tenant);
        *state.quota.lock().expect("tenant quota poisoned") = quota;
    }

    fn tenant_state(&self, tenant: TenantId) -> Arc<TenantState> {
        let mut tenants = self.tenants.lock().expect("router tenants poisoned");
        Arc::clone(tenants.entry(tenant).or_default())
    }

    /// Routes and submits one request for `tenant`.
    ///
    /// The request is fingerprinted with the engine's own
    /// [`canonical_key`], routed to the owning shard, and admitted
    /// non-blockingly. A request the engine cannot fingerprint (it would
    /// fail validation anyway) routes deterministically under a zero
    /// fingerprint, so the owning shard reports the same
    /// [`EngineError::Prepare`] a direct submission would.
    ///
    /// # Errors
    ///
    /// Refusals hand the request back by value: over-quota tenants get
    /// [`RouterError::TenantOverQuota`] (no shard ever sees the
    /// request), an empty ring [`RouterError::NoShards`], a full or
    /// closed shard queue [`RouterError::ShardRefused`].
    #[allow(clippy::result_large_err)] // hands the request back by value
    pub fn submit(
        &self,
        tenant: TenantId,
        request: PrepareRequest,
    ) -> Result<RouterHandle, RouterError> {
        let state = self.tenant_state(tenant);
        state.submitted.fetch_add(1, Ordering::Relaxed);
        let topology = self.topology.read().expect("router topology poisoned");
        if topology.shards.is_empty() {
            state.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(RouterError::NoShards { request });
        }
        let limit = state
            .quota
            .lock()
            .expect("tenant quota poisoned")
            .effective_limit(topology.total_queue_depth);
        if let Err(in_flight) = state.try_reserve(limit) {
            state.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(RouterError::TenantOverQuota {
                tenant,
                request,
                in_flight,
                limit: limit.unwrap_or(usize::MAX),
            });
        }
        let fingerprint = canonical_key(&request).map_or(0, |(fp, _)| fp);
        let shard = topology
            .ring
            .route(fingerprint)
            .expect("non-empty ring routes every fingerprint");
        let entry = topology
            .shards
            .iter()
            .find(|e| e.id == shard)
            .expect("routed shard is on the ring");
        match entry.service.try_submit(request) {
            Ok(handle) => Ok(RouterHandle {
                handle: Some(handle),
                completion: Some(state),
                shard,
                tenant,
            }),
            Err(AdmissionError { request, error }) => {
                state.release();
                state.rejected.fetch_add(1, Ordering::Relaxed);
                Err(RouterError::ShardRefused {
                    shard,
                    request,
                    error,
                })
            }
        }
    }

    /// A point-in-time [`RouterStats`]: per-tenant ledgers plus a
    /// lock-free [`EngineStats`] snapshot and cache hit rate per shard.
    /// Never contends with serving.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        let shards: Vec<ShardStats> = {
            let topology = self.topology.read().expect("router topology poisoned");
            topology
                .shards
                .iter()
                .map(|entry| {
                    let engine = entry.service.stats_snapshot();
                    let probes = engine.cache.hits + engine.cache.misses;
                    #[allow(clippy::cast_precision_loss)]
                    let hit_rate = if probes == 0 {
                        0.0
                    } else {
                        engine.cache.hits as f64 / probes as f64
                    };
                    let warm_loaded = entry
                        .service
                        .warm_start_load()
                        .and_then(|result| result.as_ref().ok())
                        .map(|load| load.loaded);
                    ShardStats {
                        shard: entry.id,
                        engine,
                        hit_rate,
                        warm_loaded,
                    }
                })
                .collect()
        };
        let mut tenants: Vec<TenantStats> = {
            let map = self.tenants.lock().expect("router tenants poisoned");
            map.iter().map(|(id, state)| state.stats(*id)).collect()
        };
        tenants.sort_by_key(|t| t.tenant);
        let mut stats = RouterStats {
            submitted: 0,
            completed: 0,
            failed: 0,
            rejected: 0,
            dropped: 0,
            tenants,
            shards,
        };
        for t in &stats.tenants {
            stats.submitted += t.submitted;
            stats.completed += t.completed;
            stats.failed += t.failed;
            stats.rejected += t.rejected;
            stats.dropped += t.dropped;
        }
        stats
    }

    /// Gracefully shuts every shard down: accepted jobs drain, warm
    /// snapshots are written (when configured), worker pools are joined.
    pub fn shutdown(self) {
        let topology = self
            .topology
            .into_inner()
            .expect("router topology poisoned");
        for entry in topology.shards {
            entry.service.shutdown();
        }
    }
}

/// The caller's side of one routed submission. Wraps the shard's
/// [`JobHandle`] and keeps the tenant ledger exact: the first observed
/// outcome is recorded as completed/failed and releases the tenant's
/// in-flight slot; dropping the handle unobserved records it as dropped
/// (the job itself still runs).
#[derive(Debug)]
pub struct RouterHandle {
    handle: Option<JobHandle>,
    completion: Option<Arc<TenantState>>,
    shard: usize,
    tenant: TenantId,
}

impl RouterHandle {
    /// The shard the job was routed to.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The submitting tenant.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    fn record(&mut self, ok: bool) {
        if let Some(state) = self.completion.take() {
            state.release();
            if ok {
                state.completed.fetch_add(1, Ordering::Relaxed);
            } else {
                state.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn inner(&mut self) -> &mut JobHandle {
        self.handle.as_mut().expect("handle taken only by wait()")
    }

    /// Non-blocking poll; repeatable once resolved (see
    /// [`JobHandle::try_wait`]).
    pub fn try_wait(&mut self) -> Option<&Result<PrepareReport, EngineError>> {
        let outcome = self.inner().try_wait().map(Result::is_ok);
        if let Some(ok) = outcome {
            self.record(ok);
        }
        self.inner().try_wait()
    }

    /// Blocks at most `timeout`; `None` on timeout, repeatable once
    /// resolved.
    pub fn wait_timeout(
        &mut self,
        timeout: Duration,
    ) -> Option<&Result<PrepareReport, EngineError>> {
        let outcome = self.inner().wait_timeout(timeout).map(Result::is_ok);
        if let Some(ok) = outcome {
            self.record(ok);
        }
        self.inner().try_wait()
    }

    /// Blocks until the job resolves and returns the result by value.
    ///
    /// # Errors
    ///
    /// The shard's [`EngineError`], exactly as a direct
    /// [`EngineService::submit`] would report it.
    pub fn wait(mut self) -> Result<PrepareReport, EngineError> {
        let result = self
            .handle
            .take()
            .expect("handle taken only by wait()")
            .wait();
        self.record(result.is_ok());
        result
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        if let Some(state) = self.completion.take() {
            state.release();
            state.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Point-in-time router telemetry: global totals, per-tenant ledgers,
/// per-shard engine snapshots.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Every submission attempt across all tenants.
    pub submitted: u64,
    /// Jobs that resolved successfully.
    pub completed: u64,
    /// Jobs that resolved with an engine error.
    pub failed: u64,
    /// Submissions refused (quota, no shards, or shard queue).
    pub rejected: u64,
    /// Accepted jobs whose handle was dropped unobserved.
    pub dropped: u64,
    /// Per-tenant ledgers, ascending by tenant id.
    pub tenants: Vec<TenantStats>,
    /// Per-shard snapshots, in ring-join order.
    pub shards: Vec<ShardStats>,
}

/// One shard's slice of [`RouterStats`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard's stable ring id.
    pub shard: usize,
    /// The shard engine's own stats (taken via the lock-free
    /// [`EngineService::stats_snapshot`]).
    pub engine: EngineStats,
    /// Cache hits over probes, `0.0` before the first probe.
    pub hit_rate: f64,
    /// Records loaded from the shard's warm-start snapshot, when one was
    /// configured and loaded cleanly.
    pub warm_loaded: Option<usize>,
}

// Compile-time Send/Sync audit, mirroring `mdq-engine`: the router is
// shared by reference across submitting threads, handles move to
// whichever thread awaits them.
const fn assert_send_sync<T: Send + Sync>() {}
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send_sync::<Router>();
    assert_send_sync::<RouterConfig>();
    assert_send_sync::<RouterError>();
    assert_send_sync::<RouterStats>();
    assert_send_sync::<ShardStats>();
    assert_send_sync::<HashRing>();
    assert_send_sync::<TenantId>();
    assert_send_sync::<TenantQuota>();
    assert_send_sync::<TenantStats>();
    // A RouterHandle wraps the shard's single-consumer JobHandle.
    assert_send::<RouterHandle>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;
    use mdq_num::Complex;
    use mdq_states::{ghz, w_state};

    fn dims() -> Dims {
        Dims::new(vec![2, 3]).unwrap()
    }

    fn request(seed: usize) -> PrepareRequest {
        let dims = dims();
        let mut amplitudes = ghz(&dims);
        // Distinct fingerprints per seed.
        let slot = seed % amplitudes.len();
        amplitudes[slot] = Complex::new(0.5, 0.25 + seed as f64 * 1e-3);
        let norm: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut amplitudes {
            *a = Complex::new(a.re / norm, a.im / norm);
        }
        PrepareRequest::dense(dims, amplitudes, PrepareOptions::exact())
    }

    fn small_router(shards: usize) -> Router {
        let router = Router::new(
            RouterConfig::default().with_engine_config(EngineConfig::default().with_workers(1)),
        );
        for id in 0..shards {
            assert!(router.add_shard(id));
        }
        router
    }

    #[test]
    fn routed_results_match_sequential_preparation() {
        let router = small_router(3);
        let tenant = TenantId(0);
        for seed in 0..6 {
            let req = request(seed);
            let direct = req.clone().prepare_sequential().unwrap();
            let routed = router.submit(tenant, req).unwrap().wait().unwrap();
            assert_eq!(routed.circuit, direct.circuit);
        }
        let stats = router.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.rejected, 0);
        router.shutdown();
    }

    #[test]
    fn equal_requests_route_to_the_same_shard_and_hit_its_cache() {
        let router = small_router(4);
        let tenant = TenantId(3);
        let req = request(1);
        let first = router.submit(tenant, req.clone()).unwrap();
        let shard = first.shard();
        let fresh = first.wait().unwrap();
        assert!(!fresh.from_cache);
        let second = router.submit(tenant, req).unwrap();
        assert_eq!(second.shard(), shard, "equal fingerprints must co-locate");
        let cached = second.wait().unwrap();
        assert!(cached.from_cache, "the owning shard's cache must serve it");
        assert_eq!(cached.circuit, fresh.circuit);
        let stats = router.stats();
        let owning = stats.shards.iter().find(|s| s.shard == shard).unwrap();
        assert!(owning.hit_rate > 0.0);
        router.shutdown();
    }

    #[test]
    fn over_quota_tenant_is_refused_with_the_request_handed_back() {
        let router = small_router(2);
        let bounded = TenantId(1);
        let free = TenantId(2);
        router.set_quota(bounded, TenantQuota::unlimited().with_max_in_flight(2));

        let h1 = router.submit(bounded, request(0)).unwrap();
        let h2 = router.submit(bounded, request(1)).unwrap();
        let refused = request(2);
        match router.submit(bounded, refused.clone()) {
            Err(RouterError::TenantOverQuota {
                tenant,
                request,
                in_flight,
                limit,
            }) => {
                assert_eq!(tenant, bounded);
                assert_eq!(request, refused, "request must come back untouched");
                assert_eq!((in_flight, limit), (2, 2));
            }
            other => panic!("expected TenantOverQuota, got {other:?}"),
        }
        // Another tenant is unaffected by the bounded tenant's quota.
        let other = router.submit(free, request(3)).unwrap();
        assert!(other.wait().is_ok());
        // Draining the bounded tenant frees its slots.
        h1.wait().unwrap();
        h2.wait().unwrap();
        assert!(router.submit(bounded, refused).is_ok());

        let stats = router.stats();
        let t = stats.tenants.iter().find(|t| t.tenant == bounded).unwrap();
        assert_eq!(t.rejected, 1);
        assert_eq!(t.submitted, 4);
        router.shutdown();
    }

    #[test]
    fn empty_router_refuses_with_no_shards() {
        let router = Router::new(RouterConfig::default());
        let req = request(0);
        match router.submit(TenantId(0), req.clone()) {
            Err(RouterError::NoShards { request }) => assert_eq!(request, req),
            other => panic!("expected NoShards, got {other:?}"),
        }
        assert_eq!(router.stats().rejected, 1);
        router.shutdown();
    }

    #[test]
    fn duplicate_shard_ids_are_refused() {
        let router = small_router(2);
        assert!(!router.add_shard(1));
        assert_eq!(router.shards(), vec![0, 1]);
        assert!(router.remove_shard(1));
        assert!(!router.remove_shard(1));
        assert_eq!(router.shards(), vec![0]);
        router.shutdown();
    }

    #[test]
    fn malformed_requests_fail_exactly_as_direct_submission() {
        let router = small_router(2);
        // Not normalized and wrong length: no canonical key; routes at
        // fingerprint 0 and fails in the shard's pipeline.
        let bad = PrepareRequest::dense(dims(), vec![Complex::ONE; 2], PrepareOptions::exact());
        let direct = bad.clone().prepare_sequential().unwrap_err();
        let routed = router.submit(TenantId(0), bad).unwrap().wait().unwrap_err();
        assert_eq!(routed, EngineError::Prepare(direct));
        let stats = router.stats();
        assert_eq!(stats.failed, 1);
        router.shutdown();
    }

    #[test]
    fn dropped_handles_release_slots_and_are_ledgered() {
        let router = small_router(1);
        let tenant = TenantId(9);
        router.set_quota(tenant, TenantQuota::unlimited().with_max_in_flight(1));
        drop(router.submit(tenant, request(0)).unwrap());
        // The dropped handle released its slot: the next submission fits.
        let h = router.submit(tenant, request(1)).unwrap();
        h.wait().unwrap();
        let stats = router.stats();
        let t = stats.tenants.iter().find(|t| t.tenant == tenant).unwrap();
        assert_eq!(t.dropped, 1);
        assert_eq!(t.completed, 1);
        assert_eq!(t.completed + t.failed + t.rejected + t.dropped, t.submitted);
        router.shutdown();
    }

    #[test]
    fn queue_share_quota_tracks_total_shard_capacity() {
        let router = Router::new(
            RouterConfig::default()
                .with_engine_config(EngineConfig::default().with_workers(1).with_queue_depth(4)),
        );
        router.add_shard(0);
        router.add_shard(1);
        let tenant = TenantId(5);
        // 25% of 8 total slots = 2 in flight.
        router.set_quota(tenant, TenantQuota::unlimited().with_max_queue_share(0.25));
        let h1 = router.submit(tenant, request(0)).unwrap();
        let h2 = router.submit(tenant, request(1)).unwrap();
        match router.submit(tenant, request(2)) {
            Err(RouterError::TenantOverQuota { limit, .. }) => assert_eq!(limit, 2),
            other => panic!("expected TenantOverQuota, got {other:?}"),
        }
        h1.wait().unwrap();
        h2.wait().unwrap();
        router.shutdown();
    }

    #[test]
    fn removed_shard_drains_and_rejoins_warm_from_its_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "mdq-router-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let router = Router::new(
            RouterConfig::default()
                .with_engine_config(EngineConfig::default().with_workers(1))
                .with_snapshot_dir(&dir),
        );
        for id in 0..2 {
            router.add_shard(id);
        }
        let tenant = TenantId(0);
        // Fill shard caches, remembering which shard served which seed.
        let mut by_shard: Vec<(usize, PrepareRequest)> = Vec::new();
        for seed in 0..8 {
            let req = request(seed);
            let handle = router.submit(tenant, req.clone()).unwrap();
            by_shard.push((handle.shard(), req));
            handle.wait().unwrap();
        }
        let victim = by_shard[0].0;
        assert!(router.remove_shard(victim));
        assert!(dir.join(format!("shard-{victim}.mdqsnap")).exists());
        assert!(router.add_shard(victim));
        let stats = router.stats();
        let rejoined = stats.shards.iter().find(|s| s.shard == victim).unwrap();
        let warm = rejoined.warm_loaded.unwrap();
        assert!(warm > 0, "re-joined shard must load its snapshot");
        // A request the victim served before re-routes to it (same ring)
        // and is a cache hit without recomputation.
        let (_, req) = by_shard.iter().find(|(s, _)| *s == victim).unwrap();
        let report = router.submit(tenant, req.clone()).unwrap().wait().unwrap();
        assert!(report.from_cache);
        router.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn w_state_round_trips_through_the_router() {
        let router = small_router(2);
        let d = Dims::new(vec![3, 6, 2]).unwrap();
        let req = PrepareRequest::dense(d.clone(), w_state(&d), PrepareOptions::exact());
        let direct = req.clone().prepare_sequential().unwrap();
        let routed = router.submit(TenantId(0), req).unwrap().wait().unwrap();
        assert_eq!(routed.circuit, direct.circuit);
        router.shutdown();
    }
}
