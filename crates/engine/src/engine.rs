//! The batch engine: a configurable worker pool draining a request queue.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use mdq_core::{PrepareError, Preparer};

use crate::cache::{canonical_key, CacheStats, CachedPreparation, CircuitCache};
use crate::request::{PrepareReport, PrepareRequest, StatePayload};

/// Configuration of a [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads per batch (minimum 1; capped at the batch size).
    pub workers: usize,
    /// Per-job node cap forwarded to every worker's
    /// [`Preparer`](mdq_core::Preparer) — the resource guard for service
    /// deployments.
    pub node_limit: Option<usize>,
    /// Shard count of the prepared-circuit cache (rounded up to a power of
    /// two).
    pub cache_shards: usize,
    /// Whether to consult and fill the prepared-circuit cache at all.
    pub use_cache: bool,
}

impl Default for EngineConfig {
    /// One worker per available core (1 when parallelism is unknown), a
    /// 16-shard cache, caching enabled, no node cap.
    fn default() -> Self {
        EngineConfig {
            workers: thread::available_parallelism().map_or(1, usize::from),
            node_limit: None,
            cache_shards: 16,
            use_cache: true,
        }
    }
}

impl EngineConfig {
    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Caps every job's diagram at `limit` nodes.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Overrides the cache shard count.
    #[must_use]
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Disables the prepared-circuit cache (every job runs the pipeline).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }
}

/// Aggregate counters of a [`BatchEngine`], cumulative over every batch it
/// has run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Successfully served jobs (computed or cached).
    pub jobs: u64,
    /// Jobs that returned a [`PrepareError`].
    pub failures: u64,
    /// Prepared-circuit cache counters.
    pub cache: CacheStats,
    /// Total weight-table lookups performed by the per-worker arenas whose
    /// scratch survived to the end of a batch (weight-table pressure; see
    /// [`ComplexTableStats`](mdq_num::ComplexTableStats)).
    pub weight_lookups: u64,
    /// Weight-table insertions, same scope as
    /// [`EngineStats::weight_lookups`].
    pub weight_insertions: u64,
}

/// A parallel batch-preparation engine; see the
/// [crate documentation](crate) for the architecture.
///
/// The engine is long-lived: the prepared-circuit cache and the aggregate
/// counters persist across [`BatchEngine::run`] calls, so a warm engine
/// serves repeated requests without re-running the pipeline.
#[derive(Debug)]
pub struct BatchEngine {
    config: EngineConfig,
    cache: CircuitCache,
    jobs: AtomicU64,
    failures: AtomicU64,
    weight_lookups: AtomicU64,
    weight_insertions: AtomicU64,
}

impl BatchEngine {
    /// Creates an engine from a configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let cache = CircuitCache::new(config.cache_shards);
        BatchEngine {
            config,
            cache,
            jobs: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            weight_lookups: AtomicU64::new(0),
            weight_insertions: AtomicU64::new(0),
        }
    }

    /// Creates an engine with the default configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The prepared-circuit cache (e.g. to pre-warm or clear it).
    #[must_use]
    pub fn cache(&self) -> &CircuitCache {
        &self.cache
    }

    /// Aggregate counters, cumulative over every batch run so far.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            jobs: self.jobs.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            weight_lookups: self.weight_lookups.load(Ordering::Relaxed),
            weight_insertions: self.weight_insertions.load(Ordering::Relaxed),
        }
    }

    /// Executes a batch of requests on the worker pool and returns one
    /// result per request, **in request order** — the output is independent
    /// of worker count and scheduling.
    ///
    /// Each worker owns a [`Preparer`](mdq_core::Preparer), so its diagram
    /// arena and canonicalization tables are recycled across all jobs the
    /// worker drains from the queue; the prepared-circuit cache is shared
    /// between workers and across batches.
    pub fn run(&self, requests: &[PrepareRequest]) -> Vec<Result<PrepareReport, PrepareError>> {
        let total = requests.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.config.workers.clamp(1, total);
        let next = AtomicUsize::new(0);

        let mut harvested: Vec<Vec<(usize, Result<PrepareReport, PrepareError>)>> =
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut preparer = match self.config.node_limit {
                                Some(limit) => Preparer::new().with_node_limit(limit),
                                None => Preparer::new(),
                            };
                            let mut local = Vec::new();
                            loop {
                                let index = next.fetch_add(1, Ordering::Relaxed);
                                if index >= total {
                                    break;
                                }
                                let started = Instant::now();
                                let mut outcome = self.serve(&mut preparer, &requests[index]);
                                if let Ok(report) = &mut outcome {
                                    report.elapsed = started.elapsed();
                                }
                                local.push((index, outcome));
                            }
                            if let Some(stats) = preparer.weight_stats() {
                                self.weight_lookups
                                    .fetch_add(stats.lookups, Ordering::Relaxed);
                                self.weight_insertions
                                    .fetch_add(stats.insertions, Ordering::Relaxed);
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            });

        let mut results: Vec<Option<Result<PrepareReport, PrepareError>>> =
            (0..total).map(|_| None).collect();
        for (index, outcome) in harvested.drain(..).flatten() {
            results[index] = Some(outcome);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every request index was served"))
            .collect()
    }

    /// Serves one job on one worker: cache probe, pipeline run on miss,
    /// cache fill, arena recycling.
    fn serve(
        &self,
        preparer: &mut Preparer,
        request: &PrepareRequest,
    ) -> Result<PrepareReport, PrepareError> {
        let key = if self.config.use_cache {
            canonical_key(request)
        } else {
            None
        };
        if let Some((fingerprint, key)) = &key {
            if let Some(cached) = self.cache.get(*fingerprint, key) {
                self.jobs.fetch_add(1, Ordering::Relaxed);
                return Ok(PrepareReport {
                    circuit: cached.circuit.clone(),
                    report: cached.report.clone(),
                    from_cache: true,
                    elapsed: Default::default(),
                });
            }
        }

        let outcome = match &request.payload {
            StatePayload::Dense(amplitudes) => {
                preparer.prepare(&request.dims, amplitudes, request.options)
            }
            StatePayload::Sparse(entries) => {
                preparer.prepare_sparse(&request.dims, entries, request.options)
            }
        };
        match outcome {
            Ok(result) => {
                let (circuit, report) = preparer.recycle(result);
                if let Some((fingerprint, key)) = key {
                    self.cache.insert(
                        fingerprint,
                        key,
                        Arc::new(CachedPreparation {
                            circuit: circuit.clone(),
                            report: report.clone(),
                        }),
                    );
                }
                self.jobs.fetch_add(1, Ordering::Relaxed);
                Ok(PrepareReport {
                    circuit,
                    report,
                    from_cache: false,
                    elapsed: Default::default(),
                })
            }
            Err(error) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(error)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;
    use mdq_num::Complex;
    use mdq_states::{ghz, w_state};

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn mixed_batch() -> Vec<PrepareRequest> {
        let d3 = dims(&[3, 6, 2]);
        let d2 = dims(&[4, 3]);
        let mut batch = vec![
            PrepareRequest::dense(d3.clone(), ghz(&d3), PrepareOptions::exact()),
            PrepareRequest::dense(d3.clone(), w_state(&d3), PrepareOptions::approximated(0.98)),
            PrepareRequest::sparse(
                d3.clone(),
                mdq_states::sparse::w_state(&d3),
                PrepareOptions::exact(),
            ),
            PrepareRequest::dense(
                d2.clone(),
                ghz(&d2),
                PrepareOptions::exact().without_zero_subtrees(),
            ),
        ];
        // A bit-identical duplicate of the first request (cache-hit probe).
        batch.push(batch[0].clone());
        batch
    }

    fn sequential(requests: &[PrepareRequest]) -> Vec<mdq_circuit::Circuit> {
        requests
            .iter()
            .map(|r| r.prepare_sequential().unwrap().circuit)
            .collect()
    }

    #[test]
    fn batch_matches_sequential_for_every_worker_count() {
        let requests = mixed_batch();
        let expected = sequential(&requests);
        for workers in [1, 2, 4] {
            let engine = BatchEngine::new(EngineConfig::default().with_workers(workers));
            let results = engine.run(&requests);
            assert_eq!(results.len(), requests.len());
            for (i, (result, want)) in results.iter().zip(&expected).enumerate() {
                let report = result.as_ref().expect("job succeeds");
                assert_eq!(&report.circuit, want, "request {i} at {workers} workers");
            }
        }
    }

    #[test]
    fn duplicate_requests_hit_the_cache() {
        let requests = mixed_batch();
        let engine = BatchEngine::new(EngineConfig::default().with_workers(1));
        let cold = engine.run(&requests);
        // Request 4 duplicates request 0, so even the cold batch hits once.
        assert!(cold[4].as_ref().unwrap().from_cache);
        assert_eq!(
            cold[0].as_ref().unwrap().circuit,
            cold[4].as_ref().unwrap().circuit
        );
        let warm = engine.run(&requests);
        for (cold_r, warm_r) in cold.iter().zip(&warm) {
            let warm_r = warm_r.as_ref().unwrap();
            assert!(warm_r.from_cache, "warm batch is served from cache");
            assert_eq!(cold_r.as_ref().unwrap().circuit, warm_r.circuit);
        }
        let stats = engine.stats();
        assert_eq!(stats.jobs, 2 * requests.len() as u64);
        assert!(stats.cache.hits >= requests.len() as u64);
        assert_eq!(stats.cache.entries, 4, "four distinct keys stored");
        assert!(stats.weight_lookups > 0, "arena telemetry aggregated");
    }

    #[test]
    fn cache_can_be_disabled() {
        let requests = mixed_batch();
        let engine = BatchEngine::new(EngineConfig::default().with_workers(2).without_cache());
        let first = engine.run(&requests);
        let second = engine.run(&requests);
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert!(!a.from_cache && !b.from_cache);
            assert_eq!(a.circuit, b.circuit);
        }
        assert_eq!(engine.stats().cache, CacheStats::default());
    }

    #[test]
    fn failures_surface_at_the_right_index() {
        let d = dims(&[2, 2]);
        let ok = PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact());
        let bad = PrepareRequest::dense(d.clone(), vec![Complex::ONE], PrepareOptions::exact());
        let engine = BatchEngine::new(EngineConfig::default().with_workers(2));
        let results = engine.run(&[ok.clone(), bad, ok]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(PrepareError::Build(_))));
        assert!(results[2].is_ok());
        let stats = engine.stats();
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn node_limit_is_enforced_per_job() {
        let d = dims(&[3, 6, 2]);
        let engine = BatchEngine::new(EngineConfig::default().with_workers(1).with_node_limit(2));
        let results = engine.run(&[PrepareRequest::dense(
            d.clone(),
            w_state(&d),
            PrepareOptions::exact().without_zero_subtrees(),
        )]);
        assert!(matches!(results[0], Err(PrepareError::Build(_))));
    }

    #[test]
    fn tree_metric_reports_do_not_alias_sparse_cache_entries() {
        // `prepare` honors keep_zero_subtrees (nodes_initial = full tree),
        // `prepare_sparse` ignores it; a sparse job must not fill a cache
        // entry that a dense tree-metric request would then be served.
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5f64.sqrt());
        let mut amps = vec![Complex::ZERO; 4];
        amps[d.index_of(&[0, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let sparse = PrepareRequest::sparse(
            d.clone(),
            vec![(vec![0, 0], a), (vec![1, 1], a)],
            PrepareOptions::exact(),
        );
        let dense = PrepareRequest::dense(d, amps, PrepareOptions::exact());
        let expected = dense.prepare_sequential().unwrap();
        // One worker guarantees the sparse job lands in the cache first.
        let engine = BatchEngine::new(EngineConfig::default().with_workers(1));
        let results = engine.run(&[sparse, dense]);
        let served = results[1].as_ref().unwrap();
        assert!(!served.from_cache, "tree-metric request must not alias");
        assert_eq!(served.report.nodes_initial, expected.report.nodes_initial);
        assert_eq!(served.circuit, expected.circuit);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = BatchEngine::with_defaults();
        assert!(engine.run(&[]).is_empty());
        assert_eq!(engine.stats().jobs, 0);
    }

    #[test]
    fn worker_count_exceeding_batch_size_is_fine() {
        let d = dims(&[3, 3]);
        let engine = BatchEngine::new(EngineConfig::default().with_workers(64));
        let results = engine.run(&[PrepareRequest::dense(
            d.clone(),
            ghz(&d),
            PrepareOptions::exact(),
        )]);
        assert!(results[0].is_ok());
    }
}
