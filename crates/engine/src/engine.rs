//! Engine configuration, aggregate statistics, and the batch-mode
//! compatibility wrapper over the persistent [`EngineService`].

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::cache::{CacheStats, CircuitCache, HotTier};
use crate::request::{PrepareReport, PrepareRequest};
use crate::scheduler::{Aging, SchedulingPolicy};
use crate::service::{EngineError, EngineService};

/// Configuration of an [`EngineService`] (and of the [`BatchEngine`]
/// wrapper over it).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads of the persistent pool (minimum 1).
    pub workers: usize,
    /// Per-job node cap forwarded to every worker's
    /// [`Preparer`](mdq_core::Preparer) — the resource guard for service
    /// deployments.
    pub node_limit: Option<usize>,
    /// Shard count of the prepared-circuit cache (rounded up to a power of
    /// two).
    pub cache_shards: usize,
    /// Whether to consult and fill the prepared-circuit cache at all.
    pub use_cache: bool,
    /// Entry bound of the prepared-circuit cache (`None` is unbounded);
    /// full shards evict their least-recently-used entry. The bound is
    /// enforced per shard (split evenly, rounded up), so the effective
    /// total can exceed this by up to one entry per shard — see
    /// [`CircuitCache::with_capacity`].
    pub cache_capacity: Option<usize>,
    /// Queue discipline of the scheduler (size-aware by default; FIFO is
    /// the pre-service baseline).
    pub scheduling: SchedulingPolicy,
    /// Wait-time aging of the size-aware scheduler — the starvation guard
    /// (on by default at [`Aging::DEFAULT_EPOCH`]): every epoch of queue
    /// wait halves a job's effective cost, and long waits eventually
    /// promote it across [`Priority`](crate::Priority) classes, so no
    /// accepted job can be deferred indefinitely by a stream of smaller or
    /// higher-priority work. Ignored under [`SchedulingPolicy::Fifo`],
    /// which is starvation-free by construction. See
    /// [`Aging`](crate::Aging) for the tuning trade-off.
    pub aging: Aging,
    /// Admission bound on the scheduler queue (`None` is unbounded, the
    /// default): with at most this many jobs queued,
    /// [`EngineService::try_submit`](crate::EngineService::try_submit)
    /// rejects further submissions with
    /// [`EngineError::QueueFull`](crate::EngineError) and
    /// [`EngineService::submit`](crate::EngineService::submit) parks until
    /// space frees. Clamped to a minimum of 1.
    pub queue_depth: Option<usize>,
    /// Maximum age of a cache entry (`None`, the default, never expires):
    /// entries older than this stop being served and are swept lazily —
    /// see [`CircuitCache::with_ttl`] and [`CircuitCache::expire`].
    pub cache_ttl: Option<Duration>,
    /// Warm-start snapshot path. At construction,
    /// [`EngineService::new`] loads this snapshot into the cache if the
    /// file exists (a missing file is a silent cold start, so first boot
    /// and warm restart share one configuration); at graceful
    /// [`EngineService::shutdown`](crate::EngineService::shutdown), the
    /// cache is snapshotted back to the same path, best-effort. See the
    /// [`snapshot`](crate::snapshot) module for the format and its
    /// bit-exactness guarantees.
    pub warm_start: Option<PathBuf>,
    /// Shared read-mostly hot tier consulted on per-shard cache miss —
    /// how multiple services in one process exchange hot entries without
    /// write contention. Build one with [`CircuitCache::freeze`] or
    /// [`snapshot::load_hot_tier`](crate::snapshot::load_hot_tier).
    pub hot_tier: Option<Arc<HotTier>>,
    /// Upper bound on the *intra-job* build threads a single job may fan
    /// out over (1, the default, disables within-job parallelism — today's
    /// exact code path). Extra threads are granted per job at dispatch
    /// time, only to jobs whose [cost
    /// estimate](crate::PrepareRequest::cost_estimate) reaches
    /// [`EngineConfig::intra_job_cost_threshold`], and only from the cores
    /// the machine has left over beyond the worker pool
    /// (`available_parallelism() − workers`) — so small-job throughput and
    /// a saturated pool are never oversubscribed. See
    /// [`EngineConfig::with_intra_job_threads`].
    pub intra_job_threads: usize,
    /// Minimum [cost estimate](crate::PrepareRequest::cost_estimate) a job
    /// needs before the dispatcher considers granting it intra-job build
    /// threads; cheaper jobs always build sequentially.
    pub intra_job_cost_threshold: u64,
}

impl Default for EngineConfig {
    /// One worker per available core (1 when parallelism is unknown), a
    /// 16-shard unbounded cache, caching enabled, no node cap, size-aware
    /// scheduling.
    fn default() -> Self {
        EngineConfig {
            workers: thread::available_parallelism().map_or(1, usize::from),
            node_limit: None,
            cache_shards: 16,
            use_cache: true,
            cache_capacity: None,
            scheduling: SchedulingPolicy::SizeAware,
            aging: Aging::default(),
            queue_depth: None,
            cache_ttl: None,
            warm_start: None,
            hot_tier: None,
            intra_job_threads: 1,
            intra_job_cost_threshold: 0,
        }
    }
}

impl EngineConfig {
    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Caps every job's diagram at `limit` nodes.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Overrides the cache shard count.
    #[must_use]
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Disables the prepared-circuit cache (every job runs the pipeline).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }

    /// Bounds the prepared-circuit cache at `capacity` total entries with
    /// per-shard LRU eviction.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Overrides the scheduler's queue discipline.
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: SchedulingPolicy) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Overrides the size-aware scheduler's wait-time aging — the
    /// starvation guard. [`Aging::Off`] restores the raw (frozen) sort key
    /// as a baseline for fairness measurements; a smaller
    /// [`Aging::HalveEvery`] epoch bounds queue waits tighter at the cost
    /// of the small-job latency win. See [`EngineConfig::aging`].
    #[must_use]
    pub fn with_aging(mut self, aging: Aging) -> Self {
        self.aging = aging;
        self
    }

    /// Bounds the scheduler queue at `depth` jobs (minimum 1) — the
    /// admission-control switch. See [`EngineConfig::queue_depth`].
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth);
        self
    }

    /// Bounds the age of cache entries at `ttl` — the staleness guard for
    /// long-lived services. See [`EngineConfig::cache_ttl`].
    #[must_use]
    pub fn with_cache_ttl(mut self, ttl: Duration) -> Self {
        self.cache_ttl = Some(ttl);
        self
    }

    /// Warm-starts the service from (and snapshots back to) `path` — load
    /// on construction if the file exists, save on graceful shutdown. See
    /// [`EngineConfig::warm_start`].
    #[must_use]
    pub fn with_warm_start(mut self, path: impl Into<PathBuf>) -> Self {
        self.warm_start = Some(path.into());
        self
    }

    /// Attaches a shared read-mostly hot tier, consulted when a per-shard
    /// cache lookup misses. See [`EngineConfig::hot_tier`].
    #[must_use]
    pub fn with_hot_tier(mut self, tier: Arc<HotTier>) -> Self {
        self.hot_tier = Some(tier);
        self
    }

    /// Lets jobs whose [cost
    /// estimate](crate::PrepareRequest::cost_estimate) reaches
    /// `cost_threshold` build their diagram on up to `threads` threads —
    /// intra-job parallelism for the large jobs whose tail latency is
    /// otherwise bounded by single-thread speed.
    ///
    /// The grant is clamped at dispatch time: never beyond
    /// `available_parallelism()`, never beyond the cores left over once
    /// the worker pool is accounted for, and always 1 for jobs below the
    /// threshold — so enabling this cannot oversubscribe the machine or
    /// slow the small-job stream. Results stay bit-identical to the
    /// sequential build (see
    /// [`BuildOptions::build_threads`](mdq_dd::BuildOptions::build_threads)).
    ///
    /// Pair this with a narrower pool ([`EngineConfig::with_workers`]):
    /// with the default one-worker-per-core pool there are no spare cores
    /// and no job is ever granted extra threads.
    #[must_use]
    pub fn with_intra_job_threads(mut self, cost_threshold: u64, threads: usize) -> Self {
        self.intra_job_cost_threshold = cost_threshold;
        self.intra_job_threads = threads.max(1);
        self
    }
}

/// Aggregate counters of a service/engine, cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Successfully served jobs (computed or cached).
    pub jobs: u64,
    /// Jobs that returned a [`PrepareError`](mdq_core::PrepareError).
    pub failures: u64,
    /// Submissions refused by admission control
    /// ([`EngineError::QueueFull`](crate::EngineError) from
    /// [`EngineService::try_submit`](crate::EngineService::try_submit)).
    pub rejected: u64,
    /// Jobs served with a passing verification attached (fresh replay or
    /// verified cache entry).
    pub verified: u64,
    /// Jobs that failed their demanded verification
    /// ([`EngineError::VerificationFailed`](crate::EngineError)).
    pub verification_failures: u64,
    /// Deepest the scheduler queue has ever been — sizing signal for
    /// [`EngineConfig::with_queue_depth`].
    pub high_watermark: usize,
    /// Prepared-circuit cache counters.
    pub cache: CacheStats,
    /// Total weight-table lookups across the persistent worker arenas
    /// (weight-table pressure; see
    /// [`ComplexTableStats`](mdq_num::ComplexTableStats)).
    pub weight_lookups: u64,
    /// Weight-table insertions, same scope as
    /// [`EngineStats::weight_lookups`].
    pub weight_insertions: u64,
    /// Pipeline runs that started on a worker's retained (warmed) scratch
    /// arena — the observable of worker persistence across submissions.
    pub arena_reuses: u64,
    /// Jobs currently waiting in the scheduler queue.
    pub queued: usize,
    /// Freshly computed (non-cache) jobs that ran their diagram build on
    /// more than one thread — the observable of
    /// [`EngineConfig::with_intra_job_threads`]. Stays 0 when the machine
    /// has no cores to spare beyond the worker pool.
    pub parallel_builds: u64,
    /// Blocking submitters currently **parked on the admission ticket
    /// queue** of a bounded scheduler
    /// ([`EngineConfig::with_queue_depth`]), waiting for freed slots that
    /// are handed out strictly in arrival order. A sustained nonzero value
    /// means submitters outpace the pool — the backpressure gauge of
    /// FIFO-fair admission.
    pub parked: usize,
}

/// The batch-mode compatibility wrapper over [`EngineService`]: submit a
/// whole batch, block until every job resolves, return results **in
/// request order**.
///
/// Since PR 4 this is a thin shim — the worker pool, the scheduler and the
/// cache all live in the wrapped service and persist across
/// [`BatchEngine::run`] calls, so a warm engine serves repeated requests
/// without re-running the pipeline *and* without respawning threads.
#[derive(Debug)]
pub struct BatchEngine {
    service: EngineService,
}

impl BatchEngine {
    /// Creates an engine from a configuration (spawning the persistent
    /// worker pool once, up front).
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        BatchEngine {
            service: EngineService::new(config),
        }
    }

    /// Creates an engine with the default configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        self.service.config()
    }

    /// The prepared-circuit cache (e.g. to pre-warm or clear it).
    #[must_use]
    pub fn cache(&self) -> &CircuitCache {
        self.service.cache()
    }

    /// Aggregate counters, cumulative over every batch run so far.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.service.stats()
    }

    /// The wrapped persistent service, for callers migrating from batch
    /// mode to streaming submission.
    #[must_use]
    pub fn service(&self) -> &EngineService {
        &self.service
    }

    /// Consumes the wrapper, handing out the service itself.
    #[must_use]
    pub fn into_service(self) -> EngineService {
        self.service
    }

    /// Submits the batch to the persistent pool and blocks until every job
    /// resolves, returning one result per request, **in request order** —
    /// the output is independent of worker count and scheduling.
    ///
    /// The batch API clones each request into the queue (the persistent
    /// workers need owned jobs); callers that already own their requests
    /// can stream them into [`EngineService::submit_batch`] by value
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if the worker pool died mid-batch (a worker panicked) — the
    /// failure surfaces here rather than hanging the caller.
    pub fn run(&self, requests: &[PrepareRequest]) -> Vec<Result<PrepareReport, EngineError>> {
        let handles = self.service.submit_batch(requests.iter().cloned());
        handles
            .into_iter()
            .map(|handle| match handle.wait() {
                Ok(report) => Ok(report),
                Err(error @ (EngineError::Prepare(_) | EngineError::VerificationFailed { .. })) => {
                    Err(error)
                }
                // We hold the service, so nobody can have shut it down;
                // seeing Shutdown/QueueClosed here means the pool died.
                Err(other) => panic!("engine worker pool stopped mid-batch: {other}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::{PrepareError, PrepareOptions};
    use mdq_num::radix::Dims;
    use mdq_num::Complex;
    use mdq_states::{ghz, w_state};

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn mixed_batch() -> Vec<PrepareRequest> {
        let d3 = dims(&[3, 6, 2]);
        let d2 = dims(&[4, 3]);
        let mut batch = vec![
            PrepareRequest::dense(d3.clone(), ghz(&d3), PrepareOptions::exact()),
            PrepareRequest::dense(d3.clone(), w_state(&d3), PrepareOptions::approximated(0.98)),
            PrepareRequest::sparse(
                d3.clone(),
                mdq_states::sparse::w_state(&d3),
                PrepareOptions::exact(),
            ),
            PrepareRequest::dense(
                d2.clone(),
                ghz(&d2),
                PrepareOptions::exact().without_zero_subtrees(),
            ),
        ];
        // A bit-identical duplicate of the first request (cache-hit probe).
        batch.push(batch[0].clone());
        batch
    }

    fn sequential(requests: &[PrepareRequest]) -> Vec<mdq_circuit::Circuit> {
        requests
            .iter()
            .map(|r| r.prepare_sequential().unwrap().circuit)
            .collect()
    }

    #[test]
    fn batch_matches_sequential_for_every_worker_count() {
        let requests = mixed_batch();
        let expected = sequential(&requests);
        for workers in [1, 2, 4] {
            let engine = BatchEngine::new(EngineConfig::default().with_workers(workers));
            let results = engine.run(&requests);
            assert_eq!(results.len(), requests.len());
            for (i, (result, want)) in results.iter().zip(&expected).enumerate() {
                let report = result.as_ref().expect("job succeeds");
                assert_eq!(&report.circuit, want, "request {i} at {workers} workers");
            }
        }
    }

    #[test]
    fn duplicate_requests_hit_the_cache() {
        let requests = mixed_batch();
        let engine = BatchEngine::new(EngineConfig::default().with_workers(1));
        let cold = engine.run(&requests);
        // Request 4 duplicates request 0, so even the cold batch hits once.
        assert!(cold[4].as_ref().unwrap().from_cache);
        assert_eq!(
            cold[0].as_ref().unwrap().circuit,
            cold[4].as_ref().unwrap().circuit
        );
        let warm = engine.run(&requests);
        for (cold_r, warm_r) in cold.iter().zip(&warm) {
            let warm_r = warm_r.as_ref().unwrap();
            assert!(warm_r.from_cache, "warm batch is served from cache");
            assert_eq!(cold_r.as_ref().unwrap().circuit, warm_r.circuit);
        }
        let stats = engine.stats();
        assert_eq!(stats.jobs, 2 * requests.len() as u64);
        assert!(stats.cache.hits >= requests.len() as u64);
        assert_eq!(stats.cache.entries, 4, "four distinct keys stored");
        assert!(stats.weight_lookups > 0, "arena telemetry aggregated");
        assert!(stats.arena_reuses > 0, "worker arenas persisted");
    }

    #[test]
    fn cache_can_be_disabled() {
        let requests = mixed_batch();
        let engine = BatchEngine::new(EngineConfig::default().with_workers(2).without_cache());
        let first = engine.run(&requests);
        let second = engine.run(&requests);
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert!(!a.from_cache && !b.from_cache);
            assert_eq!(a.circuit, b.circuit);
        }
        assert_eq!(engine.stats().cache, CacheStats::default());
    }

    #[test]
    fn failures_surface_at_the_right_index() {
        let d = dims(&[2, 2]);
        let ok = PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact());
        let bad = PrepareRequest::dense(d.clone(), vec![Complex::ONE], PrepareOptions::exact());
        let engine = BatchEngine::new(EngineConfig::default().with_workers(2));
        let results = engine.run(&[ok.clone(), bad, ok]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(EngineError::Prepare(PrepareError::Build(_)))
        ));
        assert!(results[2].is_ok());
        let stats = engine.stats();
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn node_limit_is_enforced_per_job() {
        let d = dims(&[3, 6, 2]);
        let engine = BatchEngine::new(EngineConfig::default().with_workers(1).with_node_limit(2));
        let results = engine.run(&[PrepareRequest::dense(
            d.clone(),
            w_state(&d),
            PrepareOptions::exact().without_zero_subtrees(),
        )]);
        assert!(matches!(
            results[0],
            Err(EngineError::Prepare(PrepareError::Build(_)))
        ));
    }

    #[test]
    fn tree_metric_reports_do_not_alias_sparse_cache_entries() {
        // `prepare` honors keep_zero_subtrees (nodes_initial = full tree),
        // `prepare_sparse` ignores it; a sparse job must not fill a cache
        // entry that a dense tree-metric request would then be served.
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5f64.sqrt());
        let mut amps = vec![Complex::ZERO; 4];
        amps[d.index_of(&[0, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let sparse = PrepareRequest::sparse(
            d.clone(),
            vec![(vec![0, 0], a), (vec![1, 1], a)],
            PrepareOptions::exact(),
        );
        let dense = PrepareRequest::dense(d, amps, PrepareOptions::exact());
        let expected = dense.prepare_sequential().unwrap();
        // One worker: the sparse job is submitted (and popped) first, so it
        // lands in the cache before the dense job probes.
        let engine = BatchEngine::new(EngineConfig::default().with_workers(1));
        let results = engine.run(&[sparse, dense]);
        let served = results[1].as_ref().unwrap();
        assert!(!served.from_cache, "tree-metric request must not alias");
        assert_eq!(served.report.nodes_initial, expected.report.nodes_initial);
        assert_eq!(served.circuit, expected.circuit);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = BatchEngine::with_defaults();
        assert!(engine.run(&[]).is_empty());
        assert_eq!(engine.stats().jobs, 0);
    }

    #[test]
    fn worker_count_exceeding_batch_size_is_fine() {
        let d = dims(&[3, 3]);
        let engine = BatchEngine::new(EngineConfig::default().with_workers(16));
        let results = engine.run(&[PrepareRequest::dense(
            d.clone(),
            ghz(&d),
            PrepareOptions::exact(),
        )]);
        assert!(results[0].is_ok());
    }

    #[test]
    fn queue_wait_is_reported() {
        let requests = mixed_batch();
        let engine = BatchEngine::new(EngineConfig::default().with_workers(1).without_cache());
        let results = engine.run(&requests);
        // With one worker, later jobs necessarily queued behind earlier
        // ones; at least one must have observed a nonzero wait.
        let waits: Vec<_> = results
            .iter()
            .map(|r| r.as_ref().unwrap().queue_wait)
            .collect();
        assert!(waits.iter().any(|w| !w.is_zero()), "waits: {waits:?}");
    }
}
