//! Persistent preparation service for mixed-dimensional qudit states.
//!
//! The per-call pipeline of [`mdq-core`] (state → edge-weighted decision
//! diagram → approximation → circuit) is fast, but a serving deployment
//! sees *streams* of preparation requests. Mature decision-diagram packages
//! (Wille/Hillmich/Burgholzer, *Decision Diagrams for Quantum Computing*)
//! get their throughput from persistent unique and compute tables reused
//! across operations; this crate applies the same idea **across requests**,
//! behind a non-blocking submission front-end:
//!
//! ```text
//!                   ┌───────────────────────── EngineService ─────────────────────────┐
//!  submit(req) ───▶ │ scheduler ─▶ worker 0 ─ Preparer { DdArena ♻, ComputeCache ♻ }  │
//!   ─▶ JobHandle    │ (priority/ ─▶ worker 1 ─ Preparer { DdArena ♻, ComputeCache ♻ } │
//!  submit(req) ───▶ │  size/FIFO)─▶ worker n ─ …                                      │
//!   ─▶ JobHandle    │                    │ probe / fill                               │
//!       …           │        CircuitCache (sharded, fingerprint-keyed, LRU-bounded)   │
//!                   └──────────────────────────────────────────────────────────────────┘
//!     handle.wait() / try_wait() / wait_timeout() ◀── per-job result channel
//! ```
//!
//! * **Persistent worker pool** — [`EngineService::new`] spawns the pool
//!   once; each worker owns a [`Preparer`](mdq_core::Preparer) whose
//!   diagram arena and canonicalization/memo tables stay warm across *all*
//!   submissions for the lifetime of the service (observable through
//!   [`EngineStats::arena_reuses`]).
//! * **Non-blocking submission** — [`EngineService::submit`] enqueues and
//!   returns a [`JobHandle`] immediately; the handle resolves through a
//!   per-job channel with blocking, polling, and timeout waits. No
//!   external async runtime — std mpsc + condvar only.
//! * **Size-aware scheduling with wait-time aging** — the default
//!   [`SchedulingPolicy::SizeAware`] orders by caller [`Priority`], then
//!   by estimated job cost, so large Table-1 jobs stop head-of-line
//!   blocking small ones; wait-time [`Aging`] (on by default) halves a
//!   queued job's effective cost every epoch and eventually promotes it
//!   across priority classes, so no accepted job starves under a
//!   sustained small-job flood ([`scheduler`] module docs); `Fifo` is the
//!   baseline. Scheduling never changes results, only queue waits
//!   ([`PrepareReport::queue_wait`]).
//! * **Prepared-circuit cache** — requests are fingerprinted by a content
//!   hash of the register, the tolerance-quantized target amplitudes, and
//!   the pipeline options ([`cache`] module); identical requests are
//!   served the stored circuit. Optionally bounded with per-shard LRU
//!   eviction ([`EngineConfig::with_cache_capacity`]) and a TTL age bound
//!   ([`EngineConfig::with_cache_ttl`]).
//! * **Warm-start persistence** — [`EngineConfig::with_warm_start`] loads
//!   a [`snapshot`] of the prepared-circuit cache at construction (loads
//!   re-derive every fingerprint and only admit records that round-trip
//!   bit-exactly) and snapshots back on graceful shutdown, so a restart
//!   replays the previous process's work instead of starting cold;
//!   [`EngineService::snapshot_to`] saves on demand. A frozen read-mostly
//!   [`HotTier`] ([`CircuitCache::freeze`] /
//!   [`snapshot::load_hot_tier`]) can be shared by several services in
//!   one process ([`EngineConfig::with_hot_tier`]), exchanging hot
//!   entries without write contention.
//! * **FIFO-fair admission control** — [`EngineConfig::with_queue_depth`]
//!   bounds the scheduler queue: [`EngineService::try_submit`] refuses
//!   overflow with [`EngineError::QueueFull`] (the request handed back by
//!   value in an [`AdmissionError`]), while the blocking
//!   [`EngineService::submit`] parks on a **ticketed waiter queue** —
//!   freed slots go to parked submitters strictly in arrival order, and a
//!   non-blocking flood is refused rather than allowed to steal an owed
//!   slot. Shed load, the queue's high-watermark, parked submitters
//!   ([`EngineStats::parked`]) and per-job admission waits
//!   ([`PrepareReport::admission_wait`]) are all observable.
//! * **Verification mode** — [`PrepareRequest::with_verification`] makes
//!   the worker replay the synthesized circuit by decision-diagram
//!   simulation ([`Preparer::replay`](mdq_core::Preparer::replay)) and
//!   compare the fidelity against the requested target; a
//!   [`VerificationReport`] rides on the [`PrepareReport`], jobs below the
//!   floor fail with [`EngineError::VerificationFailed`], and cache
//!   entries record whether they were verified — a verified request never
//!   silently reuses an unverified entry.
//! * **Wire protocol & public fingerprinting** — the [`wire`] module
//!   carries full [`PrepareRequest`] / [`PrepareReport`] / error frames in
//!   a versioned, line-oriented raw-f64-bit text form (bit-exact round
//!   trip, typed parse errors), and [`canonical_key`] /
//!   [`fingerprint_of`] expose the cache's stable content fingerprint —
//!   together the substrate of the `mdq-router` sharded front-end, which
//!   routes each request to the shard whose cache already holds it.
//! * **Deterministic by construction** — every circuit is bit-identical
//!   to what a sequential [`prepare`](mdq_core::prepare) loop would
//!   produce, regardless of worker count, scheduling order, priorities, or
//!   cache state (cache entries are only served on *exact* key matches).
//! * **Clean teardown** — [`EngineService::shutdown`] drains,
//!   [`EngineService::shutdown_now`] / `Drop` abort (queued jobs resolve
//!   to [`EngineError::Shutdown`]); either way the pool is joined.
//!
//! [`BatchEngine`] remains as a blocking compatibility wrapper: it submits
//! a whole batch to the wrapped service and waits, returning results in
//! request order exactly as before.
//!
//! # Examples
//!
//! ```
//! use mdq_engine::{EngineService, EngineConfig, PrepareRequest, Priority};
//! use mdq_core::PrepareOptions;
//! use mdq_num::radix::Dims;
//! use mdq_states::{ghz, w_state};
//!
//! let dims = Dims::new(vec![3, 6, 2])?;
//! let service = EngineService::new(EngineConfig::default().with_workers(2));
//!
//! // Stream requests in; submission never blocks on the pipeline.
//! let big = service.submit(PrepareRequest::dense(
//!     dims.clone(), w_state(&dims), PrepareOptions::exact(),
//! ));
//! let urgent = service.submit(
//!     PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact())
//!         .with_priority(Priority::High),
//! );
//!
//! // Await each job individually.
//! let urgent = urgent.wait()?;
//! let big = big.wait()?;
//! assert!(!urgent.circuit.is_empty() && !big.circuit.is_empty());
//!
//! service.shutdown(); // drain + join
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`mdq-core`]: mdq_core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod engine;
mod request;
pub mod scheduler;
mod service;
pub mod snapshot;
pub mod wire;

pub use cache::{canonical_key, fingerprint_of, CacheStats, CanonicalKey, CircuitCache, HotTier};
pub use engine::{BatchEngine, EngineConfig, EngineStats};
pub use request::{PrepareReport, PrepareRequest, StatePayload};
pub use scheduler::{Aging, Priority, SchedulingPolicy};
pub use service::{AdmissionError, EngineError, EngineService, JobHandle};
pub use snapshot::{SnapshotError, SnapshotLoad, SnapshotStats};
pub use wire::{ErrorFrame, Frame, ReportFrame, RequestFrame, WireError};

// Re-exported for convenience: the verification vocabulary lives in
// `mdq-core` (the replay hook is on `Preparer`), but it is configured and
// consumed through the engine's request/report types.
pub use mdq_core::{VerificationPolicy, VerificationReport};

// Compile-time Send/Sync audit: every type that crosses the engine's worker
// threads (requests in, reports out, the shared cache and service state)
// must stay thread-safe; a non-thread-safe field added anywhere below
// breaks this build, not a production deployment.
const fn assert_send_sync<T: Send + Sync>() {}
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send_sync::<BatchEngine>();
    assert_send_sync::<EngineService>();
    assert_send_sync::<EngineConfig>();
    assert_send_sync::<EngineStats>();
    assert_send_sync::<EngineError>();
    assert_send_sync::<CircuitCache>();
    assert_send_sync::<CacheStats>();
    assert_send_sync::<HotTier>();
    assert_send_sync::<SnapshotError>();
    assert_send_sync::<SnapshotLoad>();
    assert_send_sync::<SnapshotStats>();
    assert_send_sync::<PrepareRequest>();
    assert_send_sync::<PrepareReport>();
    assert_send_sync::<StatePayload>();
    assert_send_sync::<Priority>();
    assert_send_sync::<SchedulingPolicy>();
    assert_send_sync::<Aging>();
    assert_send_sync::<AdmissionError>();
    assert_send_sync::<VerificationPolicy>();
    assert_send_sync::<VerificationReport>();
    assert_send_sync::<CanonicalKey>();
    assert_send_sync::<Frame>();
    assert_send_sync::<RequestFrame>();
    assert_send_sync::<ReportFrame>();
    assert_send_sync::<ErrorFrame>();
    assert_send_sync::<WireError>();
    // A JobHandle wraps an mpsc receiver: movable across threads, but
    // deliberately single-consumer (not Sync).
    assert_send::<JobHandle>();
};
