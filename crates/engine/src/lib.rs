//! Parallel batch-preparation engine for mixed-dimensional qudit states.
//!
//! The per-call pipeline of [`mdq-core`] (state → edge-weighted decision
//! diagram → approximation → circuit) is fast, but a serving deployment
//! sees *streams* of preparation requests. Mature decision-diagram packages
//! (Wille/Hillmich/Burgholzer, *Decision Diagrams for Quantum Computing*)
//! get their throughput from persistent unique and compute tables reused
//! across operations; this crate applies the same idea **across requests**:
//!
//! ```text
//!                    ┌──────────────────────── BatchEngine ────────────────────────┐
//!  PrepareRequest ─▶ │  queue ─▶ worker 0 ─ Preparer { DdArena ♻, ComputeCache ♻ } │
//!  PrepareRequest ─▶ │        ─▶ worker 1 ─ Preparer { DdArena ♻, ComputeCache ♻ } │ ─▶ PrepareReport
//!       …            │        ─▶ worker n ─ …                                      │     (request order)
//!                    │                 │ probe / fill                              │
//!                    │        CircuitCache (sharded, fingerprint-keyed)            │
//!                    └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Worker pool** — [`BatchEngine::run`] drains a batch of
//!   [`PrepareRequest`]s on a configurable number of `std::thread` workers.
//!   Each worker owns a [`Preparer`](mdq_core::Preparer), so one diagram
//!   arena and one set of canonicalization/memo tables are recycled across
//!   every job the worker serves instead of being reallocated per request.
//! * **Prepared-circuit cache** — requests are fingerprinted by a content
//!   hash of the register, the tolerance-quantized target amplitudes, and
//!   the pipeline options ([`cache`] module); identical requests are served
//!   the stored circuit, with hit/miss counters exposed through
//!   [`BatchEngine::stats`].
//! * **Deterministic by construction** — results come back in request
//!   order and every circuit is bit-identical to what a sequential
//!   [`prepare`](mdq_core::prepare) loop would produce, regardless of
//!   worker count, scheduling order, or cache state (cache entries are only
//!   served on *exact* key matches).
//!
//! # Examples
//!
//! ```
//! use mdq_engine::{BatchEngine, EngineConfig, PrepareRequest};
//! use mdq_core::PrepareOptions;
//! use mdq_num::radix::Dims;
//! use mdq_states::ghz;
//!
//! let dims = Dims::new(vec![3, 6, 2])?;
//! let engine = BatchEngine::new(EngineConfig::default().with_workers(2));
//! let batch = vec![
//!     PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact()),
//!     PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact()),
//! ];
//! let reports = engine.run(&batch);
//! let first = reports[0].as_ref().unwrap();
//! let second = reports[1].as_ref().unwrap();
//! assert_eq!(first.circuit, second.circuit); // bit-identical
//! assert!(engine.stats().cache.hits + engine.stats().cache.misses >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`mdq-core`]: mdq_core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod engine;
mod request;

pub use cache::{CacheStats, CircuitCache};
pub use engine::{BatchEngine, EngineConfig, EngineStats};
pub use request::{PrepareReport, PrepareRequest, StatePayload};

// Compile-time Send/Sync audit: every type that crosses the engine's worker
// threads (requests in, reports out, the shared cache) must stay
// thread-safe; a non-thread-safe field added anywhere below breaks this
// build, not a production deployment.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<BatchEngine>();
    assert_send_sync::<EngineConfig>();
    assert_send_sync::<EngineStats>();
    assert_send_sync::<CircuitCache>();
    assert_send_sync::<CacheStats>();
    assert_send_sync::<PrepareRequest>();
    assert_send_sync::<PrepareReport>();
    assert_send_sync::<StatePayload>();
};
