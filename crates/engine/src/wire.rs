//! The `mdqwire` text protocol — full request/report/error frames.
//!
//! The sharded front-end (`mdq-router`) and any out-of-process client talk
//! to an engine in a versioned, line-oriented text form that extends the
//! raw-f64-bit conventions of [`mdq_circuit::serialize`] (circuits,
//! shortest-round-trip angles) and the engine's [`snapshot`](crate::snapshot)
//! format (16-hex-digit `f64` bit patterns, `secs:nanos` durations) to
//! whole [`PrepareRequest`]s, [`PrepareReport`]s, and typed service errors.
//!
//! Two properties carry the engine's serving contract across the wire:
//!
//! - **Bit-exact round trip.** Every amplitude, tolerance, threshold and
//!   fidelity travels as its raw bit pattern, and every circuit angle
//!   through shortest-round-trip float text — so a request routed through
//!   a front-end reaches the shard bit-identical to direct submission,
//!   and the report it gets back is bit-identical to the one the shard
//!   produced. Routing can therefore never weaken the engine's
//!   "bit-identical to [`prepare_sequential`]" guarantee.
//! - **Typed failures, never panics.** A truncated or corrupt frame parses
//!   to a [`WireError`] naming the offending line; nothing in this module
//!   panics on untrusted input (pinned by the `wire_roundtrip` proptests).
//!
//! ## Format
//!
//! Every frame starts with a `mdqwire 1` header and closes with `end`:
//!
//! ```text
//! mdqwire 1
//! request tenant=<none|u64> priority=<low|normal|high>
//! dims <d0> <d1> …
//! opts fth=<none|hex16> tol=<hex16> pr=<0|1|2> skip=<0|1> dir=<0|1> red=<0|1> kzs=<0|1> ver=<none|hex16>
//! dense <re-hex16>:<im-hex16> …        (or: sparse <d0.d1…>:<re-hex16>:<im-hex16> …)
//! end
//! ```
//!
//! ```text
//! mdqwire 1
//! report from=<fresh|cache>
//! dims <d0> <d1> …
//! circuit <single-line mdqc instruction list>
//! synth ni=… nf=… dci=… dcf=… ops=… cmed=<hex16> cmean=<hex16> cmax=… rm=… pm=<hex16> fb=<hex16> t=<secs>:<nanos> tt=<secs>:<nanos>
//! verify none            (or: verify fid=<hex16> nodes=… t=<secs>:<nanos>)
//! timing elapsed=<secs>:<nanos> queue=<secs>:<nanos> admission=<secs>:<nanos>
//! end
//! ```
//!
//! ```text
//! mdqwire 1
//! error queue-full depth=64 limit=64
//! end
//! ```
//!
//! [`prepare_sequential`]: PrepareRequest::prepare_sequential

use std::fmt;

use mdq_circuit::serialize;
use mdq_core::{Direction, PrepareOptions, ProductRule, VerificationPolicy};
use mdq_num::radix::Dims;
use mdq_num::{Complex, Tolerance};

use crate::request::{PrepareReport, PrepareRequest, StatePayload};
use crate::scheduler::Priority;
use crate::service::EngineError;
use crate::snapshot::{
    duration_text, field_opt, parse_duration_opt, parse_report_body, parse_verification_body,
    report_body, verification_body,
};

/// The wire format version this build writes and accepts.
pub const VERSION: u32 = 1;

/// Why a frame could not be serialized or parsed.
#[derive(Debug)]
pub enum WireError {
    /// The text does not start with a `mdqwire` header — it is not a wire
    /// frame at all.
    NotAFrame,
    /// The frame declares an unsupported format version.
    Version {
        /// Version found in the frame header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The text ends before the frame's `end` line.
    Truncated,
    /// A line could not be parsed.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The frame could not be serialized: its circuit contains a gate
    /// without a textual form (an explicit unitary — the synthesis
    /// pipeline never emits those).
    Unserializable(serialize::SerializeError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::NotAFrame => write!(f, "not a wire frame"),
            WireError::Version { found, supported } => write!(
                f,
                "unsupported wire version {found} (this build supports {supported})"
            ),
            WireError::Truncated => write!(f, "wire frame is truncated"),
            WireError::Corrupt { line, message } => {
                write!(f, "corrupt wire frame at line {line}: {message}")
            }
            WireError::Unserializable(e) => write!(f, "frame cannot be serialized: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Unserializable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serialize::SerializeError> for WireError {
    fn from(e: serialize::SerializeError) -> Self {
        WireError::Unserializable(e)
    }
}

/// A preparation request in flight, tagged with the submitting tenant.
///
/// The tenant travels as a plain `u64` — the router's `TenantId` newtype
/// lives a crate above this one, and the engine itself is tenant-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Submitting tenant, when the front-end tracks one.
    pub tenant: Option<u64>,
    /// The request itself, bit-exact.
    pub request: PrepareRequest,
}

/// A completed preparation on its way back to the submitter.
///
/// Carries the register alongside the report because the single-line
/// circuit form ([`serialize::to_line`]) stores no `dims` of its own.
#[derive(Debug, Clone)]
pub struct ReportFrame {
    /// The register the circuit acts on.
    pub dims: Dims,
    /// The report, bit-exact (including queue/admission wait timings).
    pub report: PrepareReport,
}

/// A typed service failure crossing the wire; the textual twin of
/// [`EngineError`] plus the router's quota refusal.
///
/// [`EngineError::Prepare`] travels as its display message: pipeline
/// errors are rich structured values that the submitter only ever
/// inspects as text, so the wire does not attempt to reconstruct the
/// typed [`PrepareError`](mdq_core::PrepareError).
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorFrame {
    /// The preparation pipeline rejected or failed the job.
    Prepare {
        /// Display form of the pipeline error.
        message: String,
    },
    /// The service shut down before the job ran.
    Shutdown,
    /// The service's queue is closed to new submissions.
    QueueClosed,
    /// Bounded admission refused the job.
    QueueFull {
        /// Queue depth observed at refusal.
        depth: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The job ran but its replay fidelity missed the demanded floor.
    VerificationFailed {
        /// Raw bits of the measured fidelity.
        fidelity: u64,
        /// Raw bits of the demanded floor.
        threshold: u64,
    },
    /// The router refused the job because the tenant is at its quota.
    TenantOverQuota {
        /// The refused tenant.
        tenant: u64,
        /// The tenant's in-flight jobs at refusal.
        in_flight: usize,
        /// The tenant's in-flight limit.
        limit: usize,
    },
    /// The router has no shards on its ring — nothing can serve the job.
    NoShards,
    /// The peer sent bytes that do not parse as a request frame. The
    /// message is the parse failure's display form; the connection is
    /// expected to close after this reply, since a stream that produced
    /// garbage cannot be trusted to be at a frame boundary any more.
    BadFrame {
        /// Display form of the framing/parse failure.
        message: String,
    },
}

impl ErrorFrame {
    /// The wire form of an engine failure. Fidelity values keep their raw
    /// bits; the pipeline error keeps only its display message.
    #[must_use]
    pub fn from_engine(error: &EngineError) -> Self {
        match error {
            EngineError::Prepare(e) => ErrorFrame::Prepare {
                message: e.to_string(),
            },
            EngineError::Shutdown => ErrorFrame::Shutdown,
            EngineError::QueueClosed => ErrorFrame::QueueClosed,
            EngineError::QueueFull { depth, limit } => ErrorFrame::QueueFull {
                depth: *depth,
                limit: *limit,
            },
            EngineError::VerificationFailed {
                fidelity,
                threshold,
            } => ErrorFrame::VerificationFailed {
                fidelity: fidelity.to_bits(),
                threshold: threshold.to_bits(),
            },
        }
    }
}

/// One frame of the `mdqwire` protocol.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A request on its way to a shard.
    Request(RequestFrame),
    /// A report on its way back.
    Report(ReportFrame),
    /// A typed failure on its way back.
    Error(ErrorFrame),
}

fn hex(bits: u64) -> String {
    serialize::bits_to_hex(bits)
}

impl Frame {
    /// Serializes the frame to its `mdqwire` text (newline-terminated).
    ///
    /// Newlines inside a pipeline error message are replaced by spaces so
    /// a message can never break the line framing; every other field is
    /// written bit-exactly.
    ///
    /// # Errors
    ///
    /// [`WireError::Unserializable`] when a report's circuit holds an
    /// explicit-unitary gate (no textual form).
    pub fn to_text(&self) -> Result<String, WireError> {
        use std::fmt::Write as _;
        let mut out = format!("mdqwire {VERSION}\n");
        match self {
            Frame::Request(frame) => {
                let tenant = match frame.tenant {
                    Some(id) => id.to_string(),
                    None => "none".to_owned(),
                };
                let priority = match frame.request.priority {
                    Priority::Low => "low",
                    Priority::Normal => "normal",
                    Priority::High => "high",
                };
                let _ = writeln!(out, "request tenant={tenant} priority={priority}");
                push_dims(&mut out, &frame.request.dims);
                let _ = writeln!(out, "opts {}", options_body(&frame.request.options));
                match &frame.request.payload {
                    StatePayload::Dense(amplitudes) => {
                        out.push_str("dense");
                        for a in amplitudes {
                            let _ = write!(out, " {}:{}", hex(a.re.to_bits()), hex(a.im.to_bits()));
                        }
                        out.push('\n');
                    }
                    StatePayload::Sparse(entries) => {
                        out.push_str("sparse");
                        for (digits, a) in entries {
                            let digits = digits
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(".");
                            let _ = write!(
                                out,
                                " {digits}:{}:{}",
                                hex(a.re.to_bits()),
                                hex(a.im.to_bits())
                            );
                        }
                        out.push('\n');
                    }
                }
            }
            Frame::Report(frame) => {
                let circuit_line = serialize::to_line(&frame.report.circuit)?;
                let from = if frame.report.from_cache {
                    "cache"
                } else {
                    "fresh"
                };
                let _ = writeln!(out, "report from={from}");
                push_dims(&mut out, &frame.dims);
                let _ = writeln!(out, "circuit {circuit_line}");
                let _ = writeln!(out, "synth {}", report_body(&frame.report.report));
                let _ = writeln!(
                    out,
                    "verify {}",
                    verification_body(frame.report.verification.as_ref())
                );
                let _ = writeln!(
                    out,
                    "timing elapsed={} queue={} admission={}",
                    duration_text(frame.report.elapsed),
                    duration_text(frame.report.queue_wait),
                    duration_text(frame.report.admission_wait),
                );
            }
            Frame::Error(frame) => {
                let body = match frame {
                    ErrorFrame::Prepare { message } => {
                        format!("prepare {}", message.replace(['\n', '\r'], " "))
                    }
                    ErrorFrame::Shutdown => "shutdown".to_owned(),
                    ErrorFrame::QueueClosed => "queue-closed".to_owned(),
                    ErrorFrame::QueueFull { depth, limit } => {
                        format!("queue-full depth={depth} limit={limit}")
                    }
                    ErrorFrame::VerificationFailed {
                        fidelity,
                        threshold,
                    } => format!(
                        "verification-failed fid={} min={}",
                        hex(*fidelity),
                        hex(*threshold)
                    ),
                    ErrorFrame::TenantOverQuota {
                        tenant,
                        in_flight,
                        limit,
                    } => format!(
                        "tenant-over-quota tenant={tenant} in-flight={in_flight} limit={limit}"
                    ),
                    ErrorFrame::NoShards => "no-shards".to_owned(),
                    ErrorFrame::BadFrame { message } => {
                        format!("bad-frame {}", message.replace(['\n', '\r'], " "))
                    }
                };
                let _ = writeln!(out, "error {body}");
            }
        }
        out.push_str("end\n");
        Ok(out)
    }

    /// Parses one frame. Trusts nothing: structural damage yields
    /// [`WireError::Truncated`] / [`WireError::Corrupt`] (with the 1-based
    /// offending line), never a panic — including tolerance bits that
    /// would violate [`Tolerance`]'s finite-and-non-negative invariant.
    ///
    /// The framing is **strict**: the text must be exactly the bytes
    /// [`Frame::to_text`] writes — `\n`-terminated ASCII lines ending at
    /// the frame's `end` line, nothing before, after, or in between.
    /// Carriage returns (CRLF encodings), a missing terminator newline,
    /// bytes after `end\n`, and non-canonical version tokens (`01`, `+1`)
    /// are all typed errors. Anything looser would let two peers disagree
    /// about where a frame stops on a byte stream, and would break the
    /// canonicality contract (`parse` then `to_text` reproduces the input
    /// byte for byte).
    ///
    /// # Errors
    ///
    /// See [`WireError`].
    pub fn parse(text: &str) -> Result<Self, WireError> {
        if text.is_empty() {
            return Err(WireError::NotAFrame);
        }
        if let Some(at) = text.find('\r') {
            return Err(WireError::Corrupt {
                line: text[..at].matches('\n').count() + 1,
                message: "carriage return: CRLF line endings are not part of the wire format"
                    .to_owned(),
            });
        }
        // The final `end` line must carry its newline: a frame that stops
        // at `…end` could still be a prefix of a longer, different stream.
        let Some(body) = text.strip_suffix('\n') else {
            return Err(WireError::Truncated);
        };
        let lines: Vec<&str> = body.split('\n').collect();
        let header = *lines.first().ok_or(WireError::NotAFrame)?;
        let Some(version) = header.strip_prefix("mdqwire ") else {
            return Err(WireError::NotAFrame);
        };
        let found = parse_version(version).ok_or(WireError::NotAFrame)?;
        if found != VERSION {
            return Err(WireError::Version {
                found,
                supported: VERSION,
            });
        }
        let kind = *lines.get(1).ok_or(WireError::Truncated)?;
        let (frame, body_lines) = if kind.starts_with("request") {
            (Frame::Request(parse_request(&lines)?), 4)
        } else if kind.starts_with("report") {
            (Frame::Report(parse_report(&lines)?), 6)
        } else if kind.starts_with("error") {
            (Frame::Error(parse_error(&lines)?), 1)
        } else {
            return Err(corrupt(1, "expected `request`, `report` or `error` line"));
        };
        let end = 1 + body_lines;
        match lines.get(end) {
            Some(&"end") => {}
            Some(_) => return Err(corrupt(end, "expected `end` line")),
            None => return Err(WireError::Truncated),
        }
        if lines.len() > end + 1 {
            return Err(corrupt(end + 1, "unexpected content after `end`"));
        }
        Ok(frame)
    }
}

/// The request-frame `opts` body: every [`PrepareOptions`] field, raw-bit.
/// Unlike the snapshot's `OptionsKey` (which stores the *effective*
/// `keep_zero_subtrees`), this is the request **as given** — the wire must
/// reproduce the submitted request exactly, and the receiving engine
/// re-derives every effective value itself.
fn options_body(options: &PrepareOptions) -> String {
    let fth = match options.fidelity_threshold {
        Some(f) => hex(f.to_bits()),
        None => "none".to_owned(),
    };
    let ver = match options.verification {
        VerificationPolicy::Off => "none".to_owned(),
        VerificationPolicy::Replay { min_fidelity } => hex(min_fidelity.to_bits()),
    };
    format!(
        "fth={fth} tol={} pr={} skip={} dir={} red={} kzs={} ver={ver}",
        hex(options.tolerance.value().to_bits()),
        match options.synthesis.product_rule {
            ProductRule::Off => 0,
            ProductRule::SharedChild => 1,
            ProductRule::SharedChildOrSingle => 2,
        },
        u8::from(options.synthesis.skip_identities),
        match options.synthesis.direction {
            Direction::Prepare => 0,
            Direction::Disentangle => 1,
        },
        u8::from(options.reduce),
        u8::from(options.keep_zero_subtrees),
    )
}

fn push_dims(out: &mut String, dims: &Dims) {
    use std::fmt::Write as _;
    out.push_str("dims");
    for d in dims.as_slice() {
        let _ = write!(out, " {d}");
    }
    out.push('\n');
}

/// Parses the header's version token in its canonical form only: plain
/// decimal digits, no sign, no leading zeros. `u32::parse` alone would
/// accept `+1` and `01` — frames this build never writes.
fn parse_version(token: &str) -> Option<u32> {
    if token.is_empty() || !token.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if token.len() > 1 && token.starts_with('0') {
        return None;
    }
    token.parse().ok()
}

fn corrupt(line: usize, message: impl Into<String>) -> WireError {
    WireError::Corrupt {
        line: line + 1,
        message: message.into(),
    }
}

/// Strips `"<tag> "` (or exactly `tag`) off a frame line.
fn tagged<'a>(lines: &[&'a str], index: usize, tag: &str) -> Result<&'a str, WireError> {
    let line = *lines.get(index).ok_or(WireError::Truncated)?;
    if line == tag {
        Ok("")
    } else {
        line.strip_prefix(tag)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| corrupt(index, format!("expected `{tag}` line")))
    }
}

/// Strips a `key=` prefix off one field token.
fn field<'a>(token: &'a str, key: &str, line: usize) -> Result<&'a str, WireError> {
    field_opt(token, key)
        .ok_or_else(|| corrupt(line, format!("expected `{key}=` field, found `{token}`")))
}

fn parse_hex(s: &str, line: usize, what: &str) -> Result<u64, WireError> {
    serialize::bits_from_hex(s).ok_or_else(|| corrupt(line, format!("bad {what}: `{s}`")))
}

fn parse_usize(s: &str, line: usize, what: &str) -> Result<usize, WireError> {
    s.parse()
        .map_err(|_| corrupt(line, format!("bad {what}: `{s}`")))
}

fn parse_dims(lines: &[&str], index: usize) -> Result<Dims, WireError> {
    let dims: Vec<usize> = tagged(lines, index, "dims")?
        .split_ascii_whitespace()
        .map(|t| parse_usize(t, index, "dimension"))
        .collect::<Result<_, _>>()?;
    Dims::new(dims).map_err(|e| corrupt(index, format!("bad register: {e:?}")))
}

fn parse_request(lines: &[&str]) -> Result<RequestFrame, WireError> {
    let tokens: Vec<&str> = tagged(lines, 1, "request")?
        .split_ascii_whitespace()
        .collect();
    if tokens.len() != 2 {
        return Err(corrupt(1, "expected 2 request fields"));
    }
    let tenant_raw = field(tokens[0], "tenant", 1)?;
    let tenant = if tenant_raw == "none" {
        None
    } else {
        Some(
            tenant_raw
                .parse()
                .map_err(|_| corrupt(1, format!("bad tenant: `{tenant_raw}`")))?,
        )
    };
    let priority = match field(tokens[1], "priority", 1)? {
        "low" => Priority::Low,
        "normal" => Priority::Normal,
        "high" => Priority::High,
        other => return Err(corrupt(1, format!("bad priority: `{other}`"))),
    };

    let dims = parse_dims(lines, 2)?;
    let options = parse_options(lines, 3)?;

    let payload_line = *lines.get(4).ok_or(WireError::Truncated)?;
    let payload = if payload_line == "dense" || payload_line.starts_with("dense ") {
        let amplitudes = tagged(lines, 4, "dense")?
            .split_ascii_whitespace()
            .map(|token| parse_amplitude(token, 4))
            .collect::<Result<Vec<Complex>, _>>()?;
        StatePayload::Dense(amplitudes)
    } else if payload_line == "sparse" || payload_line.starts_with("sparse ") {
        let entries = tagged(lines, 4, "sparse")?
            .split_ascii_whitespace()
            .map(|token| {
                let parts: Vec<&str> = token.split(':').collect();
                let [digits, re, im] = parts[..] else {
                    return Err(corrupt(4, format!("bad sparse entry: `{token}`")));
                };
                let digits: Vec<usize> = if digits.is_empty() {
                    Vec::new()
                } else {
                    digits
                        .split('.')
                        .map(|d| parse_usize(d, 4, "sparse digit"))
                        .collect::<Result<_, _>>()?
                };
                Ok((digits, parse_components(re, im, 4)?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        StatePayload::Sparse(entries)
    } else {
        return Err(corrupt(4, "expected `dense` or `sparse` line"));
    };

    Ok(RequestFrame {
        tenant,
        request: PrepareRequest {
            dims,
            payload,
            options,
            priority,
        },
    })
}

fn parse_amplitude(token: &str, line: usize) -> Result<Complex, WireError> {
    let (re, im) = token
        .split_once(':')
        .ok_or_else(|| corrupt(line, format!("bad amplitude: `{token}`")))?;
    parse_components(re, im, line)
}

fn parse_components(re: &str, im: &str, line: usize) -> Result<Complex, WireError> {
    Ok(Complex::new(
        f64::from_bits(parse_hex(re, line, "re bits")?),
        f64::from_bits(parse_hex(im, line, "im bits")?),
    ))
}

fn parse_options(lines: &[&str], index: usize) -> Result<PrepareOptions, WireError> {
    let tokens: Vec<&str> = tagged(lines, index, "opts")?
        .split_ascii_whitespace()
        .collect();
    if tokens.len() != 8 {
        return Err(corrupt(index, "expected 8 option fields"));
    }
    let bool_field = |raw: &str| match raw {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(corrupt(index, format!("bad flag: `{other}`"))),
    };
    let fth = field(tokens[0], "fth", index)?;
    let fidelity_threshold = if fth == "none" {
        None
    } else {
        Some(f64::from_bits(parse_hex(fth, index, "fidelity threshold")?))
    };
    // `Tolerance::new` panics outside its invariant; a frame carrying such
    // bits is corrupt, not a crash.
    let tol = f64::from_bits(parse_hex(
        field(tokens[1], "tol", index)?,
        index,
        "tolerance",
    )?);
    if !(tol.is_finite() && tol >= 0.0) {
        return Err(corrupt(
            index,
            format!("tolerance must be finite and non-negative, got bits of {tol}"),
        ));
    }
    let product_rule = match field(tokens[2], "pr", index)? {
        "0" => ProductRule::Off,
        "1" => ProductRule::SharedChild,
        "2" => ProductRule::SharedChildOrSingle,
        other => return Err(corrupt(index, format!("bad product rule: `{other}`"))),
    };
    let skip_identities = bool_field(field(tokens[3], "skip", index)?)?;
    let direction = match field(tokens[4], "dir", index)? {
        "0" => Direction::Prepare,
        "1" => Direction::Disentangle,
        other => return Err(corrupt(index, format!("bad direction: `{other}`"))),
    };
    let reduce = bool_field(field(tokens[5], "red", index)?)?;
    let keep_zero_subtrees = bool_field(field(tokens[6], "kzs", index)?)?;
    let ver = field(tokens[7], "ver", index)?;
    let verification = if ver == "none" {
        VerificationPolicy::Off
    } else {
        VerificationPolicy::Replay {
            min_fidelity: f64::from_bits(parse_hex(ver, index, "verification floor")?),
        }
    };

    let mut options = PrepareOptions::exact();
    options.fidelity_threshold = fidelity_threshold;
    options.tolerance = Tolerance::new(tol);
    options.synthesis.product_rule = product_rule;
    options.synthesis.skip_identities = skip_identities;
    options.synthesis.direction = direction;
    options.reduce = reduce;
    options.keep_zero_subtrees = keep_zero_subtrees;
    options.verification = verification;
    Ok(options)
}

fn parse_report(lines: &[&str]) -> Result<ReportFrame, WireError> {
    let from = field(tagged(lines, 1, "report")?, "from", 1)?;
    let from_cache = match from {
        "fresh" => false,
        "cache" => true,
        other => return Err(corrupt(1, format!("bad report origin: `{other}`"))),
    };
    let dims = parse_dims(lines, 2)?;
    let circuit = serialize::from_line(dims.clone(), tagged(lines, 3, "circuit")?)
        .map_err(|e| corrupt(3, format!("bad circuit: {e}")))?;
    let report =
        parse_report_body(tagged(lines, 4, "synth")?).map_err(|message| corrupt(4, message))?;
    let verification = parse_verification_body(tagged(lines, 5, "verify")?)
        .map_err(|message| corrupt(5, message))?;
    let tokens: Vec<&str> = tagged(lines, 6, "timing")?
        .split_ascii_whitespace()
        .collect();
    if tokens.len() != 3 {
        return Err(corrupt(6, "expected 3 timing fields"));
    }
    let timing = |token: &str, key: &str| -> Result<std::time::Duration, WireError> {
        let raw = field(token, key, 6)?;
        parse_duration_opt(raw).ok_or_else(|| corrupt(6, format!("bad {key}: `{raw}`")))
    };
    Ok(ReportFrame {
        dims,
        report: PrepareReport {
            circuit,
            report,
            verification,
            from_cache,
            elapsed: timing(tokens[0], "elapsed")?,
            queue_wait: timing(tokens[1], "queue")?,
            admission_wait: timing(tokens[2], "admission")?,
        },
    })
}

fn parse_error(lines: &[&str]) -> Result<ErrorFrame, WireError> {
    let body = tagged(lines, 1, "error")?;
    let (kind, rest) = match body.split_once(' ') {
        Some((kind, rest)) => (kind, rest),
        None => (body, ""),
    };
    let fields = |expected: usize| -> Result<Vec<&str>, WireError> {
        let tokens: Vec<&str> = rest.split_ascii_whitespace().collect();
        if tokens.len() != expected {
            return Err(corrupt(1, format!("expected {expected} error fields")));
        }
        Ok(tokens)
    };
    match kind {
        "prepare" => Ok(ErrorFrame::Prepare {
            message: rest.to_owned(),
        }),
        "shutdown" => {
            fields(0)?;
            Ok(ErrorFrame::Shutdown)
        }
        "queue-closed" => {
            fields(0)?;
            Ok(ErrorFrame::QueueClosed)
        }
        "queue-full" => {
            let tokens = fields(2)?;
            Ok(ErrorFrame::QueueFull {
                depth: parse_usize(field(tokens[0], "depth", 1)?, 1, "depth")?,
                limit: parse_usize(field(tokens[1], "limit", 1)?, 1, "limit")?,
            })
        }
        "verification-failed" => {
            let tokens = fields(2)?;
            Ok(ErrorFrame::VerificationFailed {
                fidelity: parse_hex(field(tokens[0], "fid", 1)?, 1, "fidelity")?,
                threshold: parse_hex(field(tokens[1], "min", 1)?, 1, "floor")?,
            })
        }
        "tenant-over-quota" => {
            let tokens = fields(3)?;
            let tenant_raw = field(tokens[0], "tenant", 1)?;
            Ok(ErrorFrame::TenantOverQuota {
                tenant: tenant_raw
                    .parse()
                    .map_err(|_| corrupt(1, format!("bad tenant: `{tenant_raw}`")))?,
                in_flight: parse_usize(field(tokens[1], "in-flight", 1)?, 1, "in-flight count")?,
                limit: parse_usize(field(tokens[2], "limit", 1)?, 1, "limit")?,
            })
        }
        "no-shards" => {
            fields(0)?;
            Ok(ErrorFrame::NoShards)
        }
        "bad-frame" => Ok(ErrorFrame::BadFrame {
            message: rest.to_owned(),
        }),
        other => Err(corrupt(1, format!("unknown error kind: `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::PrepareError;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    /// Bit-exact request equality (plain `==` treats `-0.0 == 0.0` and
    /// `NaN != NaN`; the wire contract is about bits).
    fn assert_bit_identical(a: &PrepareRequest, b: &PrepareRequest) {
        assert_eq!(a.dims, b.dims);
        assert_eq!(a.priority, b.priority);
        let oa = &a.options;
        let ob = &b.options;
        assert_eq!(
            oa.fidelity_threshold.map(f64::to_bits),
            ob.fidelity_threshold.map(f64::to_bits)
        );
        assert_eq!(
            oa.tolerance.value().to_bits(),
            ob.tolerance.value().to_bits()
        );
        assert_eq!(oa.synthesis, ob.synthesis);
        assert_eq!(oa.reduce, ob.reduce);
        assert_eq!(oa.keep_zero_subtrees, ob.keep_zero_subtrees);
        match (oa.verification, ob.verification) {
            (VerificationPolicy::Off, VerificationPolicy::Off) => {}
            (
                VerificationPolicy::Replay { min_fidelity: x },
                VerificationPolicy::Replay { min_fidelity: y },
            ) => assert_eq!(x.to_bits(), y.to_bits()),
            (x, y) => panic!("verification policies differ: {x:?} vs {y:?}"),
        }
        match (&a.payload, &b.payload) {
            (StatePayload::Dense(x), StatePayload::Dense(y)) => {
                assert_eq!(x.len(), y.len());
                for (p, q) in x.iter().zip(y) {
                    assert_eq!(p.re.to_bits(), q.re.to_bits());
                    assert_eq!(p.im.to_bits(), q.im.to_bits());
                }
            }
            (StatePayload::Sparse(x), StatePayload::Sparse(y)) => {
                assert_eq!(x.len(), y.len());
                for ((dx, p), (dy, q)) in x.iter().zip(y) {
                    assert_eq!(dx, dy);
                    assert_eq!(p.re.to_bits(), q.re.to_bits());
                    assert_eq!(p.im.to_bits(), q.im.to_bits());
                }
            }
            (x, y) => panic!("payload kinds differ: {x:?} vs {y:?}"),
        }
    }

    fn round_trip(frame: &Frame) -> Frame {
        let text = frame.to_text().unwrap();
        let back = Frame::parse(&text).expect("frame parses");
        // The text form itself is canonical: re-serializing the parse
        // reproduces it byte for byte.
        assert_eq!(back.to_text().unwrap(), text);
        back
    }

    #[test]
    fn dense_request_round_trips_bit_exactly() {
        let mut options = PrepareOptions::approximated(0.93)
            .with_verification(VerificationPolicy::Replay { min_fidelity: 0.9 });
        options.keep_zero_subtrees = true;
        let amps = vec![
            Complex::new(0.5, -0.0),
            Complex::new(-0.5, 1e-312),
            Complex::new(f64::NAN, 0.5),
            Complex::new(0.0, f64::NEG_INFINITY),
        ];
        let request =
            PrepareRequest::dense(dims(&[2, 2]), amps, options).with_priority(Priority::High);
        let frame = Frame::Request(RequestFrame {
            tenant: Some(7),
            request: request.clone(),
        });
        let Frame::Request(back) = round_trip(&frame) else {
            panic!("kind preserved");
        };
        assert_eq!(back.tenant, Some(7));
        assert_bit_identical(&back.request, &request);
    }

    #[test]
    fn sparse_request_round_trips_including_degenerate_entries() {
        let entries = vec![
            (vec![0, 0], Complex::new(0.5, 0.5)),
            (vec![1, 2], Complex::new(-0.0, -0.5)),
            // Degenerate entries a malformed submission could carry: the
            // wire reproduces the request as given, it does not validate.
            (vec![], Complex::new(1.0, 0.0)),
            (vec![9, 9, 9], Complex::ZERO),
        ];
        let request = PrepareRequest::sparse(dims(&[2, 3]), entries, PrepareOptions::exact())
            .with_priority(Priority::Low);
        let frame = Frame::Request(RequestFrame {
            tenant: None,
            request: request.clone(),
        });
        let Frame::Request(back) = round_trip(&frame) else {
            panic!("kind preserved");
        };
        assert_eq!(back.tenant, None);
        assert_bit_identical(&back.request, &request);
    }

    #[test]
    fn empty_payloads_round_trip() {
        for payload in [
            StatePayload::Dense(Vec::new()),
            StatePayload::Sparse(Vec::new()),
        ] {
            let request = PrepareRequest {
                dims: dims(&[2]),
                payload,
                options: PrepareOptions::exact(),
                priority: Priority::Normal,
            };
            let frame = Frame::Request(RequestFrame {
                tenant: None,
                request: request.clone(),
            });
            let Frame::Request(back) = round_trip(&frame) else {
                panic!("kind preserved");
            };
            assert_bit_identical(&back.request, &request);
        }
    }

    #[test]
    fn report_round_trips_bit_exactly() {
        let d = dims(&[2, 3]);
        let mut amps = vec![Complex::ZERO; 6];
        amps[0] = Complex::real(0.6);
        amps[5] = Complex::new(0.0, 0.8);
        let prepared = mdq_core::prepare(&d, &amps, PrepareOptions::exact()).unwrap();
        let report = PrepareReport {
            circuit: prepared.circuit,
            report: prepared.report,
            verification: Some(mdq_core::VerificationReport {
                fidelity: 1.0 - 1e-14,
                replay_nodes: 11,
                duration: std::time::Duration::new(0, 987),
            }),
            from_cache: true,
            elapsed: std::time::Duration::new(1, 999_999_999),
            queue_wait: std::time::Duration::new(0, 1),
            admission_wait: std::time::Duration::ZERO,
        };
        let frame = Frame::Report(ReportFrame {
            dims: d.clone(),
            report: report.clone(),
        });
        let Frame::Report(back) = round_trip(&frame) else {
            panic!("kind preserved");
        };
        assert_eq!(back.dims, d);
        assert_eq!(back.report.circuit, report.circuit);
        assert_eq!(back.report.from_cache, report.from_cache);
        assert_eq!(back.report.elapsed, report.elapsed);
        assert_eq!(back.report.queue_wait, report.queue_wait);
        assert_eq!(back.report.admission_wait, report.admission_wait);
        let (a, b) = (
            back.report.verification.as_ref().unwrap(),
            report.verification.as_ref().unwrap(),
        );
        assert_eq!(a.fidelity.to_bits(), b.fidelity.to_bits());
        assert_eq!(a.replay_nodes, b.replay_nodes);
        assert_eq!(a.duration, b.duration);
        assert_eq!(
            back.report.report.controls_mean.to_bits(),
            report.report.controls_mean.to_bits()
        );
    }

    #[test]
    fn every_error_variant_round_trips() {
        let variants = [
            ErrorFrame::Prepare {
                message: "dimension mismatch: got 3, expected 6".to_owned(),
            },
            ErrorFrame::Prepare {
                message: String::new(),
            },
            ErrorFrame::Shutdown,
            ErrorFrame::QueueClosed,
            ErrorFrame::QueueFull {
                depth: 64,
                limit: 64,
            },
            ErrorFrame::VerificationFailed {
                fidelity: 0.25_f64.to_bits(),
                threshold: f64::NAN.to_bits(),
            },
            ErrorFrame::TenantOverQuota {
                tenant: u64::MAX,
                in_flight: 8,
                limit: 8,
            },
            ErrorFrame::NoShards,
            ErrorFrame::BadFrame {
                message: "corrupt wire frame at line 3: bad amplitude".to_owned(),
            },
            ErrorFrame::BadFrame {
                message: String::new(),
            },
        ];
        for variant in variants {
            let Frame::Error(back) = round_trip(&Frame::Error(variant.clone())) else {
                panic!("kind preserved");
            };
            assert_eq!(back, variant);
        }
    }

    #[test]
    fn error_frame_mirrors_engine_error() {
        let cases = [
            (
                EngineError::Prepare(PrepareError::InvalidThreshold(1.5)),
                ErrorFrame::Prepare {
                    message: PrepareError::InvalidThreshold(1.5).to_string(),
                },
            ),
            (EngineError::Shutdown, ErrorFrame::Shutdown),
            (EngineError::QueueClosed, ErrorFrame::QueueClosed),
            (
                EngineError::QueueFull { depth: 3, limit: 2 },
                ErrorFrame::QueueFull { depth: 3, limit: 2 },
            ),
            (
                EngineError::VerificationFailed {
                    fidelity: 0.5,
                    threshold: 0.9,
                },
                ErrorFrame::VerificationFailed {
                    fidelity: 0.5_f64.to_bits(),
                    threshold: 0.9_f64.to_bits(),
                },
            ),
        ];
        for (engine, wire) in cases {
            assert_eq!(ErrorFrame::from_engine(&engine), wire);
        }
    }

    #[test]
    fn newlines_in_error_messages_cannot_break_framing() {
        let frame = Frame::Error(ErrorFrame::Prepare {
            message: "line one\nline two\r\nline three".to_owned(),
        });
        let text = frame.to_text().unwrap();
        let Frame::Error(ErrorFrame::Prepare { message }) = Frame::parse(&text).unwrap() else {
            panic!("still one error frame");
        };
        assert_eq!(message, "line one line two  line three");
    }

    #[test]
    fn bad_headers_and_versions_are_typed() {
        assert!(matches!(Frame::parse(""), Err(WireError::NotAFrame)));
        assert!(matches!(
            Frame::parse("mdqsnap 1\n"),
            Err(WireError::NotAFrame)
        ));
        match Frame::parse("mdqwire 99\nerror shutdown\nend\n") {
            Err(WireError::Version { found, supported }) => {
                assert_eq!((found, supported), (99, 1));
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_typed() {
        let frame = Frame::Request(RequestFrame {
            tenant: Some(1),
            request: PrepareRequest::dense(
                dims(&[2]),
                vec![Complex::ONE, Complex::ZERO],
                PrepareOptions::exact(),
            ),
        });
        let text = frame.to_text().unwrap();
        // Every prefix that cuts a whole line off is truncated (or, when
        // the cut exposes a malformed tail, corrupt) — never a panic.
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let cut = lines[..keep].join("\n");
            assert!(
                Frame::parse(&cut).is_err(),
                "prefix of {keep} lines must not parse"
            );
        }
        let trailing = format!("{text}extra\n");
        assert!(matches!(
            Frame::parse(&trailing),
            Err(WireError::Corrupt { .. })
        ));
    }

    /// The latent framing gap, pinned: `parse` must accept exactly the
    /// bytes `to_text` writes and nothing else. Before this regression
    /// suite, CRLF-encoded frames, frames missing the terminator newline,
    /// and `+1`/`01` version tokens all parsed — encodings the serializer
    /// never produces, so `parse ∘ to_text` was not injective on bytes
    /// and a stream reader could disagree with the parser about where a
    /// frame ends.
    #[test]
    fn noncanonical_encodings_are_rejected_typed() {
        let frames = [
            Frame::Error(ErrorFrame::Shutdown),
            Frame::Request(RequestFrame {
                tenant: Some(3),
                request: PrepareRequest::dense(
                    dims(&[2, 3]),
                    vec![Complex::ONE, Complex::ZERO],
                    PrepareOptions::exact(),
                ),
            }),
        ];
        for frame in frames {
            let text = frame.to_text().unwrap();
            // The canonical bytes parse, and re-serialize identically.
            assert_eq!(
                Frame::parse(&text).unwrap().to_text().unwrap(),
                text,
                "canonical re-serialization stays byte-identical"
            );
            // CRLF line endings: a `\r` is garbage next to the terminator
            // (and every other line), not an alternate encoding.
            assert!(matches!(
                Frame::parse(&text.replace('\n', "\r\n")),
                Err(WireError::Corrupt { line: 1, .. })
            ));
            // A lone carriage return after the terminator.
            assert!(matches!(
                Frame::parse(&format!("{text}\r")),
                Err(WireError::Corrupt { .. })
            ));
            // The terminator line must carry its newline.
            assert!(matches!(
                Frame::parse(text.trim_end()),
                Err(WireError::Truncated)
            ));
            // Garbage after `end\n`, with and without its own newline.
            assert!(matches!(
                Frame::parse(&format!("{text}garbage\n")),
                Err(WireError::Corrupt { .. })
            ));
            assert!(matches!(
                Frame::parse(&format!("{text}garbage")),
                Err(WireError::Truncated)
            ));
            // A whole second frame glued on is trailing garbage too.
            assert!(matches!(
                Frame::parse(&format!("{text}{text}")),
                Err(WireError::Corrupt { .. })
            ));
            // An extra blank line after the terminator.
            assert!(matches!(
                Frame::parse(&format!("{text}\n")),
                Err(WireError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn noncanonical_version_tokens_are_rejected() {
        for header in ["mdqwire +1", "mdqwire 01", "mdqwire 1 ", "mdqwire 1x"] {
            let text = format!("{header}\nerror shutdown\nend\n");
            assert!(
                matches!(Frame::parse(&text), Err(WireError::NotAFrame)),
                "`{header}` must not parse as a version-1 frame"
            );
        }
        // Overflowing and future versions are still typed distinctly.
        assert!(matches!(
            Frame::parse("mdqwire 99999999999999999999\nend\n"),
            Err(WireError::NotAFrame)
        ));
        assert!(matches!(
            Frame::parse("mdqwire 2\nerror shutdown\nend\n"),
            Err(WireError::Version {
                found: 2,
                supported: 1
            })
        ));
    }

    #[test]
    fn hostile_tolerance_bits_are_corrupt_not_a_panic() {
        let frame = Frame::Request(RequestFrame {
            tenant: None,
            request: PrepareRequest::dense(
                dims(&[2]),
                vec![Complex::ONE, Complex::ZERO],
                PrepareOptions::exact(),
            ),
        });
        let text = frame.to_text().unwrap();
        let tol_hex = hex(Tolerance::DEFAULT.value().to_bits());
        for hostile in [
            f64::NAN.to_bits(),
            (-1.0_f64).to_bits(),
            f64::INFINITY.to_bits(),
        ] {
            let tampered =
                text.replace(&format!("tol={tol_hex}"), &format!("tol={}", hex(hostile)));
            assert_ne!(tampered, text, "fixture replaced the tolerance");
            assert!(matches!(
                Frame::parse(&tampered),
                Err(WireError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn unitary_circuits_are_unserializable() {
        use mdq_circuit::{Circuit, Gate, Instruction};
        let d = dims(&[2]);
        let prepared =
            mdq_core::prepare(&d, &[Complex::ONE, Complex::ZERO], PrepareOptions::exact()).unwrap();
        let mut circuit = Circuit::new(d.clone());
        circuit
            .push(Instruction::local(
                0,
                Gate::Unitary(mdq_num::matrix::CMatrix::identity(2)),
            ))
            .unwrap();
        let frame = Frame::Report(ReportFrame {
            dims: d,
            report: PrepareReport {
                circuit,
                report: prepared.report,
                verification: None,
                from_cache: false,
                elapsed: std::time::Duration::ZERO,
                queue_wait: std::time::Duration::ZERO,
                admission_wait: std::time::Duration::ZERO,
            },
        });
        assert!(matches!(frame.to_text(), Err(WireError::Unserializable(_))));
    }
}
