//! Persistent circuit-cache snapshots — the warm-start layer.
//!
//! A snapshot is a versioned, line-oriented text file holding one record
//! per cached preparation: the exact canonical key (register dims,
//! amplitude support as raw `f64` bits, option fields), the synthesized
//! circuit in the single-line `mdqc` form
//! ([`mdq_circuit::serialize::to_line`]), the [`SynthesisReport`], and the
//! replay-verification outcome. Every `f64` is stored as its 16-digit hex
//! bit pattern, so a load reconstructs each value **bit-exactly**.
//!
//! Loads trust nothing in the file beyond its structure:
//!
//! - fingerprints are **re-derived** from the parsed key — they are not
//!   even stored;
//! - each parsed record is re-serialized and compared against the bytes it
//!   was read from; any record that does not round-trip bit-exactly is
//!   **skipped** (counted in [`SnapshotLoad::skipped`]), never inserted;
//! - structural damage — a bad header, a truncated file, an unparsable
//!   line — rejects the whole file with a typed [`SnapshotError`].
//!
//! A snapshot can therefore never make the cache serve a wrong answer: a
//! loaded entry is only reachable by a request whose canonical key matches
//! bit for bit, exactly as if the entry had been computed in-process, and
//! replay verification remains the oracle for verified serving.
//!
//! ## Format
//!
//! ```text
//! mdqsnap 1
//! entries <N>
//! entry
//! dims <d0> <d1> …
//! opts fth=<hex16|none> tol=<hex16> pr=<u8> skip=<0|1> dir=<u8> red=<0|1> kzs=<0|1>
//! sup <idx>:<re-hex16>:<im-hex16> …
//! circuit <single-line mdqc instruction list>
//! report ni=… nf=… dci=… dcf=… ops=… cmed=<hex16> cmean=<hex16> cmax=… rm=… pm=<hex16> fb=<hex16> t=<secs>:<nanos> tt=<secs>:<nanos>
//! verify none            (or: verify fid=<hex16> nodes=… t=<secs>:<nanos>)
//! end
//! done
//! ```
//!
//! Records are sorted by their serialized text, so the same cache contents
//! always produce byte-identical snapshot files.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mdq_circuit::serialize;
use mdq_core::{SynthesisReport, VerificationReport};
use mdq_num::radix::Dims;

use crate::cache::{
    fingerprint_of, CacheEntries, CachedPreparation, CanonicalKey, CircuitCache, HotTier,
    OptionsKey,
};

/// The snapshot format version this build writes and accepts.
const VERSION: u32 = 1;

/// Why a snapshot file was rejected.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io(io::Error),
    /// The file does not start with a `mdqsnap` header — it is not a
    /// snapshot at all.
    NotASnapshot,
    /// The file is a snapshot of an unsupported format version.
    Version {
        /// Version found in the file header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file ends before its declared contents do (mid-record, missing
    /// records, or missing `done` footer).
    Truncated,
    /// A line could not be parsed.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::NotASnapshot => write!(f, "not a cache snapshot file"),
            SnapshotError::Version { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build supports {supported})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::Corrupt { line, message } => {
                write!(f, "corrupt snapshot at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// What a successful [`save`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Records written (cache entries whose circuit is serializable —
    /// every circuit the pipeline itself synthesizes is).
    pub entries: usize,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
}

/// What a successful load did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotLoad {
    /// Records parsed, round-trip-checked, and inserted.
    pub loaded: usize,
    /// Records that parsed but did not re-serialize bit-exactly and were
    /// therefore not inserted.
    pub skipped: usize,
    /// Wall-clock time of the whole load (read + parse + insert).
    pub duration: Duration,
}

/// Local alias for the workspace-wide raw-bit hex form
/// ([`serialize::bits_to_hex`]), shared with the wire protocol.
fn hex(bits: u64) -> String {
    serialize::bits_to_hex(bits)
}

/// `secs:nanos` — the duration text form shared by `mdqsnap` and
/// `mdqwire` records.
pub(crate) fn duration_text(d: Duration) -> String {
    format!("{}:{}", d.as_secs(), d.subsec_nanos())
}

/// Parses [`duration_text`]'s `secs:nanos` form; `None` when either part
/// is malformed or the nanosecond part is not a valid sub-second count.
pub(crate) fn parse_duration_opt(s: &str) -> Option<Duration> {
    let (secs, nanos) = s.split_once(':')?;
    let secs: u64 = secs.parse().ok()?;
    let nanos: u32 = nanos.parse().ok().filter(|&n| n < 1_000_000_000)?;
    Some(Duration::new(secs, nanos))
}

/// Strips a `key=` prefix off one field token; the error-agnostic core of
/// the record grammar, shared with the wire protocol.
pub(crate) fn field_opt<'a>(token: &'a str, key: &str) -> Option<&'a str> {
    token.strip_prefix(key)?.strip_prefix('=')
}

/// The 13-field [`SynthesisReport`] body (everything after the line tag),
/// shared between `mdqsnap` `report` lines and `mdqwire` `synth` lines.
pub(crate) fn report_body(r: &SynthesisReport) -> String {
    format!(
        "ni={} nf={} dci={} dcf={} ops={} cmed={} cmean={} cmax={} rm={} pm={} fb={} t={} tt={}",
        r.nodes_initial,
        r.nodes_final,
        r.distinct_c_initial,
        r.distinct_c_final,
        r.operations,
        hex(r.controls_median.to_bits()),
        hex(r.controls_mean.to_bits()),
        r.controls_max,
        r.removed_nodes,
        hex(r.pruned_mass.to_bits()),
        hex(r.fidelity_bound.to_bits()),
        duration_text(r.time),
        duration_text(r.total_time),
    )
}

/// Parses [`report_body`], reporting the first offence as a message.
pub(crate) fn parse_report_body(body: &str) -> Result<SynthesisReport, String> {
    let tokens: Vec<&str> = body.split_ascii_whitespace().collect();
    if tokens.len() != 13 {
        return Err("expected 13 report fields".to_owned());
    }
    let raw = |i: usize, key: &str| -> Result<&str, String> {
        field_opt(tokens[i], key)
            .ok_or_else(|| format!("expected `{key}=` field, found `{}`", tokens[i]))
    };
    let ru = |i: usize, key: &str| -> Result<usize, String> {
        let s = raw(i, key)?;
        s.parse().map_err(|_| format!("bad {key}: `{s}`"))
    };
    let rf = |i: usize, key: &str| -> Result<f64, String> {
        let s = raw(i, key)?;
        serialize::bits_from_hex(s)
            .map(f64::from_bits)
            .ok_or_else(|| format!("bad {key}: `{s}`"))
    };
    let rd = |i: usize, key: &str| -> Result<Duration, String> {
        let s = raw(i, key)?;
        parse_duration_opt(s).ok_or_else(|| format!("bad {key}: `{s}`"))
    };
    Ok(SynthesisReport {
        nodes_initial: ru(0, "ni")?,
        nodes_final: ru(1, "nf")?,
        distinct_c_initial: ru(2, "dci")?,
        distinct_c_final: ru(3, "dcf")?,
        operations: ru(4, "ops")?,
        controls_median: rf(5, "cmed")?,
        controls_mean: rf(6, "cmean")?,
        controls_max: ru(7, "cmax")?,
        removed_nodes: ru(8, "rm")?,
        pruned_mass: rf(9, "pm")?,
        fidelity_bound: rf(10, "fb")?,
        time: rd(11, "t")?,
        total_time: rd(12, "tt")?,
    })
}

/// The `verify` line body — `none` or `fid=… nodes=… t=…` — shared
/// between `mdqsnap` and `mdqwire` records.
pub(crate) fn verification_body(v: Option<&VerificationReport>) -> String {
    match v {
        None => "none".to_owned(),
        Some(v) => format!(
            "fid={} nodes={} t={}",
            hex(v.fidelity.to_bits()),
            v.replay_nodes,
            duration_text(v.duration),
        ),
    }
}

/// Parses [`verification_body`].
pub(crate) fn parse_verification_body(body: &str) -> Result<Option<VerificationReport>, String> {
    if body == "none" {
        return Ok(None);
    }
    let tokens: Vec<&str> = body.split_ascii_whitespace().collect();
    if tokens.len() != 3 {
        return Err("expected 3 verification fields".to_owned());
    }
    let raw = |i: usize, key: &str| -> Result<&str, String> {
        field_opt(tokens[i], key)
            .ok_or_else(|| format!("expected `{key}=` field, found `{}`", tokens[i]))
    };
    let fid = raw(0, "fid")?;
    let nodes = raw(1, "nodes")?;
    let t = raw(2, "t")?;
    Ok(Some(VerificationReport {
        fidelity: serialize::bits_from_hex(fid)
            .map(f64::from_bits)
            .ok_or_else(|| format!("bad fid: `{fid}`"))?,
        replay_nodes: nodes.parse().map_err(|_| format!("bad nodes: `{nodes}`"))?,
        duration: parse_duration_opt(t).ok_or_else(|| format!("bad t: `{t}`"))?,
    }))
}

/// Serializes one cache entry into its record text (the `entry` … `end`
/// block, every line newline-terminated). Fails only for circuits holding
/// raw [`mdq_circuit::Gate::Unitary`] gates, which the text format cannot
/// express — the synthesis pipeline never emits those.
fn record_text(
    key: &CanonicalKey,
    value: &CachedPreparation,
) -> Result<String, serialize::SerializeError> {
    use std::fmt::Write as _;
    let circuit_line = serialize::to_line(&value.circuit)?;
    let mut out = String::new();
    out.push_str("entry\n");
    out.push_str("dims");
    for d in &key.dims {
        let _ = write!(out, " {d}");
    }
    out.push('\n');
    let o = &key.options;
    let fth = match o.fidelity_threshold {
        Some(bits) => hex(bits),
        None => "none".to_owned(),
    };
    let _ = writeln!(
        out,
        "opts fth={fth} tol={} pr={} skip={} dir={} red={} kzs={}",
        hex(o.tolerance),
        o.product_rule,
        u8::from(o.skip_identities),
        o.direction,
        u8::from(o.reduce),
        u8::from(o.keep_zero_subtrees),
    );
    out.push_str("sup");
    for &(idx, re, im) in &key.support {
        let _ = write!(out, " {idx}:{}:{}", hex(re), hex(im));
    }
    out.push('\n');
    let _ = writeln!(out, "circuit {circuit_line}");
    let _ = writeln!(out, "report {}", report_body(&value.report));
    let _ = writeln!(
        out,
        "verify {}",
        verification_body(value.verification.as_ref())
    );
    out.push_str("end\n");
    Ok(out)
}

/// Renders the full snapshot text for a set of cache entries,
/// deterministically ordered.
fn snapshot_text(entries: &[(u64, CanonicalKey, Arc<CachedPreparation>)]) -> (String, usize) {
    let mut records: Vec<String> = entries
        .iter()
        .filter_map(|(_, key, value)| record_text(key, value).ok())
        .collect();
    records.sort_unstable();
    let mut text = format!("mdqsnap {VERSION}\nentries {}\n", records.len());
    for record in &records {
        text.push_str(record);
    }
    text.push_str("done\n");
    let count = records.len();
    (text, count)
}

/// Writes the cache's current contents to `path`, atomically (the file is
/// staged at `path` + `.tmp` and renamed into place, so a crash mid-write
/// never leaves a half-written snapshot behind).
pub fn save(cache: &CircuitCache, path: &Path) -> Result<SnapshotStats, SnapshotError> {
    let (text, entries) = snapshot_text(&cache.export());
    let bytes = text.len() as u64;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &text)?;
    std::fs::rename(&tmp, path)?;
    Ok(SnapshotStats { entries, bytes })
}

fn corrupt(line: usize, message: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        line: line + 1,
        message: message.into(),
    }
}

/// Strips `"<tag> "` (or exactly `tag`) off a record line.
fn tagged<'a>(lines: &[&'a str], index: usize, tag: &str) -> Result<&'a str, SnapshotError> {
    let line = *lines.get(index).ok_or(SnapshotError::Truncated)?;
    if line == tag {
        Ok("")
    } else {
        line.strip_prefix(tag)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| corrupt(index, format!("expected `{tag}` line")))
    }
}

/// Strips a `key=` prefix off one field token.
fn field<'a>(token: &'a str, key: &str, line: usize) -> Result<&'a str, SnapshotError> {
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| corrupt(line, format!("expected `{key}=` field, found `{token}`")))
}

fn parse_usize(s: &str, line: usize, what: &str) -> Result<usize, SnapshotError> {
    s.parse()
        .map_err(|_| corrupt(line, format!("bad {what}: `{s}`")))
}

fn parse_hex(s: &str, line: usize, what: &str) -> Result<u64, SnapshotError> {
    serialize::bits_from_hex(s).ok_or_else(|| corrupt(line, format!("bad {what}: `{s}`")))
}

/// Parses one record starting at `lines[start]` (the `entry` line).
fn parse_record(
    lines: &[&str],
    start: usize,
) -> Result<(CanonicalKey, CachedPreparation), SnapshotError> {
    if *lines.get(start).ok_or(SnapshotError::Truncated)? != "entry" {
        return Err(corrupt(start, "expected `entry` line"));
    }

    let dims_line = tagged(lines, start + 1, "dims")?;
    let dims: Vec<usize> = dims_line
        .split_ascii_whitespace()
        .map(|t| parse_usize(t, start + 1, "dimension"))
        .collect::<Result<_, _>>()?;

    let opts_line = start + 2;
    let tokens: Vec<&str> = tagged(lines, opts_line, "opts")?
        .split_ascii_whitespace()
        .collect();
    if tokens.len() != 7 {
        return Err(corrupt(opts_line, "expected 7 option fields"));
    }
    let fth = field(tokens[0], "fth", opts_line)?;
    let bool_field = |raw: &str| match raw {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(corrupt(opts_line, format!("bad flag: `{other}`"))),
    };
    let options = OptionsKey {
        fidelity_threshold: if fth == "none" {
            None
        } else {
            Some(parse_hex(fth, opts_line, "fidelity threshold")?)
        },
        tolerance: parse_hex(field(tokens[1], "tol", opts_line)?, opts_line, "tolerance")?,
        product_rule: parse_usize(
            field(tokens[2], "pr", opts_line)?,
            opts_line,
            "product rule",
        )? as u8,
        skip_identities: bool_field(field(tokens[3], "skip", opts_line)?)?,
        direction: parse_usize(field(tokens[4], "dir", opts_line)?, opts_line, "direction")? as u8,
        reduce: bool_field(field(tokens[5], "red", opts_line)?)?,
        keep_zero_subtrees: bool_field(field(tokens[6], "kzs", opts_line)?)?,
    };

    let sup_line = start + 3;
    let support: Vec<(u64, u64, u64)> = tagged(lines, sup_line, "sup")?
        .split_ascii_whitespace()
        .map(|token| {
            let mut parts = token.split(':');
            let idx = parts.next().unwrap_or_default();
            let re = parts.next().unwrap_or_default();
            let im = parts.next().unwrap_or_default();
            if parts.next().is_some() {
                return Err(corrupt(sup_line, format!("bad support entry: `{token}`")));
            }
            Ok((
                parse_usize(idx, sup_line, "support index")? as u64,
                parse_hex(re, sup_line, "support re bits")?,
                parse_hex(im, sup_line, "support im bits")?,
            ))
        })
        .collect::<Result<_, _>>()?;

    let circuit_line = start + 4;
    let register =
        Dims::new(dims.clone()).map_err(|e| corrupt(start + 1, format!("bad register: {e:?}")))?;
    let circuit = serialize::from_line(register, tagged(lines, circuit_line, "circuit")?)
        .map_err(|e| corrupt(circuit_line, format!("bad circuit: {e}")))?;

    let report_line = start + 5;
    let report = parse_report_body(tagged(lines, report_line, "report")?)
        .map_err(|message| corrupt(report_line, message))?;

    let verify_line = start + 6;
    let verification = parse_verification_body(tagged(lines, verify_line, "verify")?)
        .map_err(|message| corrupt(verify_line, message))?;

    if *lines.get(start + 7).ok_or(SnapshotError::Truncated)? != "end" {
        return Err(corrupt(start + 7, "expected `end` line"));
    }

    Ok((
        CanonicalKey {
            dims,
            support,
            options,
        },
        CachedPreparation {
            circuit,
            report,
            verification,
        },
    ))
}

/// Lines per record (`entry` through `end`).
const RECORD_LINES: usize = 8;

/// Parses a whole snapshot, returning the loadable entries (fingerprint
/// re-derived from each parsed key) and how many records were dropped by
/// the round-trip guard.
fn parse_snapshot(text: &str) -> Result<(CacheEntries, usize), SnapshotError> {
    let lines: Vec<&str> = text.lines().collect();
    let header = *lines.first().ok_or(SnapshotError::NotASnapshot)?;
    let Some(version) = header.strip_prefix("mdqsnap ") else {
        return Err(SnapshotError::NotASnapshot);
    };
    let found: u32 = version.parse().map_err(|_| SnapshotError::NotASnapshot)?;
    if found != VERSION {
        return Err(SnapshotError::Version {
            found,
            supported: VERSION,
        });
    }
    let declared = parse_usize(tagged(&lines, 1, "entries")?, 1, "entry count")?;

    let mut entries = Vec::with_capacity(declared);
    let mut skipped = 0;
    let mut cursor = 2;
    for _ in 0..declared {
        let (key, value) = parse_record(&lines, cursor)?;
        // Round-trip guard: a record only loads if re-serializing the
        // parsed entry reproduces the file's bytes exactly. Anything that
        // drifted — an old encoding, a normalization difference — is
        // dropped here rather than trusted.
        let original = lines[cursor..cursor + RECORD_LINES].join("\n");
        match record_text(&key, &value) {
            Ok(text) if text.trim_end_matches('\n') == original => {
                entries.push((fingerprint_of(&key), key, Arc::new(value)));
            }
            _ => skipped += 1,
        }
        cursor += RECORD_LINES;
    }
    match lines.get(cursor) {
        Some(&"done") => Ok((entries, skipped)),
        Some(_) => Err(corrupt(cursor, "expected `done` footer")),
        None => Err(SnapshotError::Truncated),
    }
}

/// Loads a snapshot into a live cache. Each record's fingerprint is
/// re-derived from its parsed key; records that fail the bit-exact
/// round-trip guard are skipped. Entries are inserted through the normal
/// [`CircuitCache`] path, so shard capacity (LRU) applies and loaded
/// entries age against the cache TTL from load time.
pub fn load_into(cache: &CircuitCache, path: &Path) -> Result<SnapshotLoad, SnapshotError> {
    let started = Instant::now();
    let text = std::fs::read_to_string(path)?;
    let (entries, skipped) = parse_snapshot(&text)?;
    let loaded = entries.len();
    for (fingerprint, key, value) in entries {
        cache.insert(fingerprint, key, value);
    }
    Ok(SnapshotLoad {
        loaded,
        skipped,
        duration: started.elapsed(),
    })
}

/// Loads a snapshot as an immutable [`HotTier`] for sharing across engine
/// instances (see [`CircuitCache::with_hot_tier`]). The same round-trip
/// guard as [`load_into`] applies.
pub fn load_hot_tier(path: &Path) -> Result<(HotTier, SnapshotLoad), SnapshotError> {
    let started = Instant::now();
    let text = std::fs::read_to_string(path)?;
    let (entries, skipped) = parse_snapshot(&text)?;
    let loaded = entries.len();
    let tier = HotTier::from_entries(entries);
    Ok((
        tier,
        SnapshotLoad {
            loaded,
            skipped,
            duration: started.elapsed(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::canonical_key;
    use crate::request::PrepareRequest;
    use mdq_core::PrepareOptions;
    use mdq_num::Complex;

    /// A small cache with `n` real prepared entries, every third verified.
    fn populated_cache(n: usize) -> CircuitCache {
        let cache = CircuitCache::new(2);
        for i in 0..n {
            let dims = Dims::new(vec![2, 3]).unwrap();
            let theta = 0.2 + 0.6 * i as f64 / n.max(1) as f64;
            let mut amps = vec![Complex::ZERO; 6];
            amps[0] = Complex::real(theta.cos());
            amps[4] = Complex::new(0.0, theta.sin());
            let request =
                PrepareRequest::dense(dims.clone(), amps.clone(), PrepareOptions::exact());
            let (fp, key) = canonical_key(&request).unwrap();
            let prepared = mdq_core::prepare(&dims, &amps, PrepareOptions::exact()).unwrap();
            let verification = (i % 3 == 0).then(|| VerificationReport {
                fidelity: 1.0 - 1e-12,
                replay_nodes: 3 + i,
                duration: Duration::new(0, 1234 + i as u32),
            });
            cache.insert(
                fp,
                key,
                Arc::new(CachedPreparation {
                    circuit: prepared.circuit,
                    report: prepared.report,
                    verification,
                }),
            );
        }
        cache
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mdqsnap-test-{}-{tag}.snap", std::process::id()))
    }

    #[test]
    fn snapshot_text_is_deterministic_and_versioned() {
        let cache = populated_cache(4);
        let (text, count) = snapshot_text(&cache.export());
        assert_eq!(count, 4);
        assert!(text.starts_with("mdqsnap 1\nentries 4\n"));
        assert!(text.ends_with("done\n"));
        // Same contents → byte-identical snapshot, regardless of the
        // hash-map iteration order behind `export`.
        let (again, _) = snapshot_text(&cache.export());
        assert_eq!(text, again);
    }

    #[test]
    fn save_load_round_trips_every_entry_with_rederived_fingerprints() {
        let cache = populated_cache(5);
        let path = temp_path("roundtrip");
        let stats = save(&cache, &path).unwrap();
        assert_eq!(stats.entries, 5);
        assert!(stats.bytes > 0);

        let restored = CircuitCache::new(4);
        let load = load_into(&restored, &path).unwrap();
        assert_eq!((load.loaded, load.skipped), (5, 0));
        assert_eq!(restored.len(), 5);
        // Every original entry is served from the restored cache under its
        // *re-derived* fingerprint, bit-identical, verification retained.
        for (fp, key, value) in cache.export() {
            assert_eq!(fingerprint_of(&key), fp);
            let served = restored.get(fp, &key, false).expect("entry restored");
            assert_eq!(served.circuit, value.circuit);
            assert_eq!(
                served.verification.is_some(),
                value.verification.is_some(),
                "verified entries stay verified"
            );
            if let (Some(a), Some(b)) = (&served.verification, &value.verification) {
                assert_eq!(a.fidelity.to_bits(), b.fidelity.to_bits());
                assert_eq!(a.replay_nodes, b.replay_nodes);
                assert_eq!(a.duration, b.duration);
            }
            assert_eq!(
                served.report.controls_median.to_bits(),
                value.report.controls_median.to_bits()
            );
            assert_eq!(served.report.time, value.report.time);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hot_tier_load_serves_the_same_entries() {
        let cache = populated_cache(3);
        let path = temp_path("hottier");
        save(&cache, &path).unwrap();
        let (tier, load) = load_hot_tier(&path).unwrap();
        assert_eq!(load.loaded, 3);
        assert_eq!(tier.len(), 3);
        let front = CircuitCache::new(1).with_hot_tier(Some(Arc::new(tier)));
        for (fp, key, value) in cache.export() {
            let served = front.get(fp, &key, false).expect("tier serves");
            assert_eq!(served.circuit, value.circuit);
        }
        assert_eq!(front.stats().hot_hits, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_into(&CircuitCache::new(1), Path::new("/nonexistent/x.snap"))
            .expect_err("missing file");
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn non_snapshot_and_version_mismatch_are_typed_errors() {
        assert!(matches!(
            parse_snapshot("not a snapshot\n"),
            Err(SnapshotError::NotASnapshot)
        ));
        assert!(matches!(
            parse_snapshot(""),
            Err(SnapshotError::NotASnapshot)
        ));
        let err = parse_snapshot("mdqsnap 99\nentries 0\ndone\n").expect_err("future version");
        match err {
            SnapshotError::Version { found, supported } => {
                assert_eq!((found, supported), (99, 1));
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let cache = populated_cache(2);
        let (text, _) = snapshot_text(&cache.export());
        // Cut mid-record: parsing runs out of lines before `done`.
        let cut = &text[..text.len() / 2];
        assert!(matches!(
            parse_snapshot(cut),
            Err(SnapshotError::Truncated | SnapshotError::Corrupt { .. })
        ));
        // Remove just the footer: still truncated.
        let no_footer = text.strip_suffix("done\n").unwrap();
        assert!(matches!(
            parse_snapshot(no_footer),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn corrupt_lines_are_rejected_with_position() {
        let cache = populated_cache(1);
        let (text, _) = snapshot_text(&cache.export());
        let tampered = text.replace("report ni=", "report nx=");
        match parse_snapshot(&tampered) {
            Err(SnapshotError::Corrupt { line, message }) => {
                assert!(line > 2, "points inside the record, got line {line}");
                assert!(message.contains("ni"), "names the field: {message}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let bad_circuit = text.replace("circuit ", "circuit z99 ");
        assert!(matches!(
            parse_snapshot(&bad_circuit),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn non_canonical_records_are_skipped_not_loaded() {
        let cache = populated_cache(2);
        let (text, _) = snapshot_text(&cache.export());
        // Uppercase one tolerance hex digit set: the record still parses to
        // the same value, but re-serialization lowercases it — the
        // round-trip guard must drop the record rather than trust it.
        let drifted = text.replacen("tol=3e", "tol=3E", 1);
        assert_ne!(text, drifted, "fixture assumes the tolerance contains 0x3e");
        let (entries, skipped) = parse_snapshot(&drifted).unwrap();
        assert_eq!(skipped, 1, "drifted record dropped");
        assert_eq!(entries.len(), 1, "intact record still loads");
    }

    #[test]
    fn loaded_entries_respect_lru_capacity() {
        let cache = populated_cache(6);
        let path = temp_path("capacity");
        save(&cache, &path).unwrap();
        let bounded = CircuitCache::with_capacity(1, Some(2));
        let load = load_into(&bounded, &path).unwrap();
        assert_eq!(load.loaded, 6, "all records parsed and inserted");
        assert_eq!(bounded.len(), 2, "LRU bound applies during load");
        assert_eq!(bounded.stats().evictions, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_cache_snapshots_and_reloads() {
        let path = temp_path("empty");
        let stats = save(&CircuitCache::new(1), &path).unwrap();
        assert_eq!(stats.entries, 0);
        let load = load_into(&CircuitCache::new(1), &path).unwrap();
        assert_eq!((load.loaded, load.skipped), (0, 0));
        std::fs::remove_file(&path).ok();
    }
}
