//! Request and report types of the batch engine.

use std::time::Duration;

use mdq_circuit::Circuit;
use mdq_core::{
    prepare, prepare_sparse, PreparationResult, PrepareError, PrepareOptions, SynthesisReport,
    VerificationPolicy, VerificationReport,
};
use mdq_dd::{BuildOptions, StateDd};
use mdq_num::radix::Dims;
use mdq_num::Complex;

use crate::scheduler::Priority;

/// The target state of a preparation request, in either of the two forms
/// the pipeline accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum StatePayload {
    /// A dense amplitude vector in mixed-radix index order
    /// (length `dims.space_size()`), as taken by [`mdq_core::prepare`].
    Dense(Vec<Complex>),
    /// A sparse `(digits, amplitude)` support list, as taken by
    /// [`mdq_core::prepare_sparse`] — the scalable form for structured
    /// states on large registers.
    Sparse(Vec<(Vec<usize>, Complex)>),
}

/// One unit of work for the [`EngineService`](crate::EngineService) (and
/// the [`BatchEngine`](crate::BatchEngine) wrapper over it): a register, a
/// target state, the pipeline options, and a scheduling priority.
#[derive(Debug, Clone, PartialEq)]
pub struct PrepareRequest {
    /// The register layout.
    pub dims: Dims,
    /// The target state.
    pub payload: StatePayload,
    /// Pipeline options (fidelity threshold, tolerance, synthesis, …).
    pub options: PrepareOptions,
    /// Scheduling urgency ([`Priority::Normal`] unless overridden with
    /// [`PrepareRequest::with_priority`]); never influences the result,
    /// only when the job runs under the size-aware scheduler.
    pub priority: Priority,
}

impl PrepareRequest {
    /// A request over a dense amplitude vector.
    #[must_use]
    pub fn dense(dims: Dims, amplitudes: Vec<Complex>, options: PrepareOptions) -> Self {
        PrepareRequest {
            dims,
            payload: StatePayload::Dense(amplitudes),
            options,
            priority: Priority::Normal,
        }
    }

    /// A request over a sparse `(digits, amplitude)` support list.
    #[must_use]
    pub fn sparse(
        dims: Dims,
        entries: Vec<(Vec<usize>, Complex)>,
        options: PrepareOptions,
    ) -> Self {
        PrepareRequest {
            dims,
            payload: StatePayload::Sparse(entries),
            options,
            priority: Priority::Normal,
        }
    }

    /// Overrides the scheduling priority (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Overrides the pipeline options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: PrepareOptions) -> Self {
        self.options = options;
        self
    }

    /// Demands serving-time verification for this request (builder style):
    /// workers replay the synthesized circuit by decision-diagram
    /// simulation and fail the job with
    /// [`EngineError::VerificationFailed`](crate::EngineError) when the
    /// measured fidelity against the requested target falls below the
    /// policy's floor. Shorthand for setting
    /// [`PrepareOptions::verification`] on the request's options.
    #[must_use]
    pub fn with_verification(mut self, verification: VerificationPolicy) -> Self {
        self.options.verification = verification;
        self
    }

    /// The scheduler's size estimate for this request — what the
    /// size-aware policy orders equal-priority jobs by (dense: the full
    /// amplitude-vector length; sparse: support size × register width).
    #[must_use]
    pub fn cost_estimate(&self) -> u64 {
        crate::scheduler::estimate_cost(self)
    }

    /// Validates this request exactly as the pipeline will — option
    /// thresholds first ([`PrepareOptions::validate`]), then the payload
    /// against the register (length/digits, finiteness, nonzero norm at
    /// the request's tolerance) through the same
    /// [`StateDd`](mdq_dd::StateDd) pre-validation the
    /// [`Preparer`](mdq_core::Preparer) runs. The
    /// [`EngineService`](crate::EngineService) calls this at **admission**,
    /// so a malformed request fails its handle immediately instead of
    /// occupying a queue slot and a worker.
    ///
    /// # Errors
    ///
    /// The identical [`PrepareError`] the sequential pipeline would return,
    /// in the identical precedence order.
    pub fn validate(&self) -> Result<(), PrepareError> {
        self.options.validate()?;
        // Only the tolerance feeds validation (node limits gate the build,
        // not the payload), matching the worker's build options.
        let build_opts = BuildOptions::default().tolerance(self.options.tolerance);
        match &self.payload {
            StatePayload::Dense(amplitudes) => {
                StateDd::validate_amplitudes(&self.dims, amplitudes, build_opts)?;
            }
            StatePayload::Sparse(entries) => {
                StateDd::validate_sparse(&self.dims, entries, build_opts)?;
            }
        }
        Ok(())
    }

    /// Runs this request through the one-shot sequential pipeline
    /// ([`prepare`] or [`prepare_sparse`], by payload) — the reference the
    /// engine's output is bit-identical to, and the single dispatch point
    /// shared by the determinism tests and benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`PrepareError`] as the underlying pipeline does.
    pub fn prepare_sequential(&self) -> Result<PreparationResult, PrepareError> {
        match &self.payload {
            StatePayload::Dense(amplitudes) => prepare(&self.dims, amplitudes, self.options),
            StatePayload::Sparse(entries) => prepare_sparse(&self.dims, entries, self.options),
        }
    }
}

/// The engine's answer to one [`PrepareRequest`]: the synthesized circuit,
/// its Table-1 metrics, and how the job was served.
///
/// The circuit (and the structural fields of the report) are bit-identical
/// to what a sequential [`mdq_core::prepare`] call would produce for the
/// same request, regardless of worker count, scheduling order, or whether
/// the job was answered from the cache. A cached report carries the
/// `time`/`total_time` durations of the run that originally computed it;
/// [`PrepareReport::elapsed`] is always the serving time of *this* job.
#[derive(Debug, Clone)]
pub struct PrepareReport {
    /// The synthesized preparation circuit.
    pub circuit: Circuit,
    /// The pipeline metrics (the paper's Table-1 columns).
    pub report: SynthesisReport,
    /// The replay-verification outcome: `Some` when this serving carries a
    /// verification — freshly measured, or recorded on the cache entry the
    /// job was answered from (so a cached report always discloses whether
    /// the entry was verified). `None` on unverified servings.
    pub verification: Option<VerificationReport>,
    /// Whether the job was answered from the prepared-circuit cache.
    pub from_cache: bool,
    /// Wall-clock time this job spent in its worker (cache lookup included).
    pub elapsed: Duration,
    /// Time between submission and a worker picking the job up — the
    /// latency-under-load observable of the streaming service (zero when
    /// the job was served synchronously, e.g. in unit helpers). Includes
    /// [`PrepareReport::admission_wait`] when the submitter parked.
    pub queue_wait: Duration,
    /// Time this job's blocking submitter spent **parked on the admission
    /// ticket queue** before the job entered the scheduler — the wait
    /// provenance of bounded admission
    /// ([`EngineConfig::with_queue_depth`](crate::EngineConfig)). Zero for
    /// jobs admitted without parking (free slot, unbounded queue, or the
    /// non-blocking [`try_submit`](crate::EngineService::try_submit)
    /// path, which refuses instead of parking).
    pub admission_wait: Duration,
}
