//! The persistent, non-blocking preparation service.
//!
//! An [`EngineService`] spawns its worker pool **once** at construction and
//! keeps each worker's warmed [`Preparer`](mdq_core::Preparer) — diagram
//! arena, unique table, weight table, compute cache — alive across
//! submissions. Callers stream requests in through [`EngineService::submit`]
//! (never blocking on the pipeline) and await each result through the
//! returned [`JobHandle`]; the [`scheduler`](crate::scheduler) decides the
//! execution order without ever changing the result, which stays
//! bit-identical to the sequential pipeline for every job.
//!
//! Everything is built on `std` synchronization primitives (mpsc channels,
//! mutex + condvar) — no external async runtime, consistent with the
//! repository's vendored-dependency constraint.

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mdq_core::{PrepareError, Preparer, VerificationReport};

use crate::cache::{canonical_key, CacheStats, CachedPreparation, CircuitCache};
use crate::engine::{EngineConfig, EngineStats};
use crate::request::{PrepareReport, PrepareRequest, StatePayload};
use crate::scheduler::{Job, PushRefusal, Scheduler};
use crate::snapshot::{self, SnapshotError, SnapshotLoad, SnapshotStats};

/// Unified error type of the service: either the pipeline itself failed,
/// or the service refused / stopped before (or instead of) running the
/// job, or the result failed its demanded verification.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The preparation pipeline rejected or failed the job.
    Prepare(PrepareError),
    /// The service was shut down (or dropped) while this job was still
    /// queued; it was never run.
    Shutdown,
    /// The job was submitted after the service had stopped accepting work.
    QueueClosed,
    /// Admission control refused the job: the scheduler queue was at its
    /// configured bound ([`EngineConfig::with_queue_depth`]) when
    /// [`EngineService::try_submit`] ran. The job was never queued.
    QueueFull {
        /// Jobs queued at the moment of refusal.
        depth: usize,
        /// The configured queue bound.
        limit: usize,
    },
    /// The job ran, but the replayed circuit's fidelity against the
    /// requested target fell below the demanded
    /// [`VerificationPolicy`](mdq_core::VerificationPolicy) floor.
    VerificationFailed {
        /// The fidelity actually measured by the replay.
        fidelity: f64,
        /// The minimum the request demanded.
        threshold: f64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Prepare(e) => write!(f, "preparation failed: {e}"),
            EngineError::Shutdown => write!(f, "engine service shut down before the job ran"),
            EngineError::QueueClosed => {
                write!(f, "engine service no longer accepts submissions")
            }
            EngineError::QueueFull { depth, limit } => {
                write!(f, "admission refused: queue at {depth} of {limit} slots")
            }
            EngineError::VerificationFailed {
                fidelity,
                threshold,
            } => {
                write!(
                    f,
                    "verification failed: replay fidelity {fidelity} below threshold {threshold}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Prepare(e) => Some(e),
            EngineError::Shutdown
            | EngineError::QueueClosed
            | EngineError::QueueFull { .. }
            | EngineError::VerificationFailed { .. } => None,
        }
    }
}

impl From<PrepareError> for EngineError {
    fn from(e: PrepareError) -> Self {
        EngineError::Prepare(e)
    }
}

/// A refused [`EngineService::try_submit`]: the request is handed back
/// untouched (so the caller can retry, reroute, or shed it) together with
/// the refusal — [`EngineError::QueueFull`] or [`EngineError::QueueClosed`].
///
/// Nothing about a refused submission outlives this value: the job was
/// never queued, no [`JobHandle`] exists for it, and the per-job reply
/// channel is torn down before the error is returned — dropping an
/// `AdmissionError` cannot deadlock a worker or leak a channel.
#[derive(Debug)]
pub struct AdmissionError {
    /// The rejected request, returned to the caller by value.
    pub request: PrepareRequest,
    /// Why admission was refused.
    pub error: EngineError,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The caller's side of one submission: a future-like handle resolving to
/// the job's [`PrepareReport`].
///
/// The handle polls a dedicated mpsc channel; once a result has been
/// received it is retained, so [`JobHandle::try_wait`] and
/// [`JobHandle::wait_timeout`] can be called repeatedly and
/// [`JobHandle::wait`] consumes the handle for the final by-value result.
/// Dropping a handle abandons the job's result (the job itself still
/// runs); it never blocks the service.
#[derive(Debug)]
pub struct JobHandle {
    rx: Receiver<Result<PrepareReport, EngineError>>,
    outcome: Option<Result<PrepareReport, EngineError>>,
}

impl JobHandle {
    pub(crate) fn new(rx: Receiver<Result<PrepareReport, EngineError>>) -> Self {
        JobHandle { rx, outcome: None }
    }

    /// Non-blocking poll: `Some` once the job has finished (or the service
    /// stopped), `None` while it is still queued or running.
    pub fn try_wait(&mut self) -> Option<&Result<PrepareReport, EngineError>> {
        if self.outcome.is_none() {
            match self.rx.try_recv() {
                Ok(result) => self.outcome = Some(result),
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    self.outcome = Some(Err(EngineError::Shutdown));
                }
            }
        }
        self.outcome.as_ref()
    }

    /// Blocks for at most `timeout` for the result; `None` on timeout.
    /// Like [`JobHandle::try_wait`], repeatable — the result is retained.
    pub fn wait_timeout(
        &mut self,
        timeout: Duration,
    ) -> Option<&Result<PrepareReport, EngineError>> {
        if self.outcome.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(result) => self.outcome = Some(result),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    self.outcome = Some(Err(EngineError::Shutdown));
                }
            }
        }
        self.outcome.as_ref()
    }

    /// Blocks until the job resolves and returns its result by value.
    ///
    /// # Errors
    ///
    /// [`EngineError::Prepare`] if the pipeline failed,
    /// [`EngineError::Shutdown`]/[`EngineError::QueueClosed`] if the
    /// service stopped before serving the job.
    pub fn wait(mut self) -> Result<PrepareReport, EngineError> {
        if let Some(result) = self.outcome.take() {
            return result;
        }
        match self.rx.recv() {
            Ok(result) => result,
            // Workers dropped the sender without replying: the service
            // went away (or a worker died) before this job resolved.
            Err(_) => Err(EngineError::Shutdown),
        }
    }
}

/// Per-worker telemetry slots, written by the worker after every job and
/// summed by [`EngineService::stats`] — long-lived workers never hand
/// their [`Preparer`](mdq_core::Preparer) back, so the gauges travel
/// through these atomics instead.
#[derive(Debug, Default)]
struct WorkerSlot {
    weight_lookups: AtomicU64,
    weight_insertions: AtomicU64,
}

#[derive(Debug)]
struct ServiceShared {
    config: EngineConfig,
    scheduler: Scheduler,
    cache: CircuitCache,
    /// Submission sequence — the deterministic FIFO tie-breaker.
    seq: AtomicU64,
    jobs: AtomicU64,
    failures: AtomicU64,
    /// Submissions refused by admission control ([`EngineError::QueueFull`]).
    rejected: AtomicU64,
    /// Jobs served with a passing verification attached.
    verified: AtomicU64,
    /// Jobs whose replay fidelity fell below the demanded floor.
    verification_failures: AtomicU64,
    /// Jobs whose pipeline ran on a worker's *retained* scratch arena —
    /// the observable proof of worker persistence across submissions.
    arena_reuses: AtomicU64,
    /// Freshly computed jobs whose diagram build fanned out over more
    /// than one thread ([`EngineConfig::with_intra_job_threads`]).
    parallel_builds: AtomicU64,
    /// Cores currently free beyond the worker pool — the pool intra-job
    /// grants draw from. Seeded with
    /// `available_parallelism().saturating_sub(workers)` and moved by
    /// CAS reserve/release around each granted job, so concurrent large
    /// jobs can never oversubscribe the machine between them.
    extra_cores: AtomicUsize,
    workers: Vec<WorkerSlot>,
    /// Outcome of the construction-time warm-start load: `None` when no
    /// [`EngineConfig::warm_start`] path was set or the file did not exist
    /// yet (a silent cold start), `Some` with the load result otherwise.
    warm_start_load: Option<Result<SnapshotLoad, SnapshotError>>,
}

impl ServiceShared {
    /// Takes up to `want` cores from the spare-core pool (CAS loop — two
    /// workers dispatching large jobs concurrently split the pool instead
    /// of both taking all of it). Returns how many were actually reserved;
    /// the caller owes [`ServiceShared::release_extra_cores`] for them.
    fn reserve_extra_cores(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut free = self.extra_cores.load(Ordering::Relaxed);
        loop {
            let take = free.min(want);
            if take == 0 {
                return 0;
            }
            match self.extra_cores.compare_exchange_weak(
                free,
                free - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(actual) => free = actual,
            }
        }
    }

    /// Returns cores reserved by [`ServiceShared::reserve_extra_cores`].
    fn release_extra_cores(&self, n: usize) {
        if n > 0 {
            self.extra_cores.fetch_add(n, Ordering::AcqRel);
        }
    }

    /// The build-thread grant for one job: 1 (sequential) unless intra-job
    /// parallelism is configured, the job's cost estimate reaches the
    /// threshold, and spare cores are available — satellite-1's clamps
    /// (never beyond `available_parallelism()`, never for cheap jobs) hold
    /// by construction because the pool was seeded with
    /// `available_parallelism() − workers`.
    fn intra_job_grant(&self, request: &PrepareRequest) -> usize {
        let cap = self.config.intra_job_threads;
        if cap <= 1 || request.cost_estimate() < self.config.intra_job_cost_threshold {
            return 1;
        }
        1 + self.reserve_extra_cores(cap - 1)
    }

    /// Threshold gate shared by the fresh and cached serving paths: `Ok`
    /// when the request demands no verification or the measured fidelity
    /// clears the floor, [`EngineError::VerificationFailed`] otherwise.
    fn check_verification(
        &self,
        min_fidelity: Option<f64>,
        verification: Option<&VerificationReport>,
    ) -> Result<(), EngineError> {
        let Some(threshold) = min_fidelity else {
            return Ok(());
        };
        let measured = verification
            .expect("verification demanded, so a report was measured or served")
            .fidelity;
        if measured < threshold {
            self.verification_failures.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::VerificationFailed {
                fidelity: measured,
                threshold,
            });
        }
        self.verified.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Cache probe → pipeline on miss → replay verification (when the
    /// request demands it) → cache fill, on one worker's preparer. The
    /// single serving path of the whole crate.
    fn serve(
        &self,
        preparer: &mut Preparer,
        request: &PrepareRequest,
    ) -> Result<PrepareReport, EngineError> {
        let min_fidelity = request.options.verification.min_fidelity();
        let key = if self.config.use_cache {
            canonical_key(request)
        } else {
            None
        };
        if let Some((fingerprint, key)) = &key {
            // A verified request never silently reuses an unverified
            // entry: `get` skips entries without a verification report
            // when one is demanded (counted as a miss), so the pipeline
            // re-runs below and upgrades the entry.
            if let Some(cached) = self.cache.get(*fingerprint, key, min_fidelity.is_some()) {
                self.check_verification(min_fidelity, cached.verification.as_ref())?;
                self.jobs.fetch_add(1, Ordering::Relaxed);
                return Ok(PrepareReport {
                    circuit: cached.circuit.clone(),
                    report: cached.report.clone(),
                    verification: cached.verification.clone(),
                    from_cache: true,
                    elapsed: Duration::default(),
                    queue_wait: Duration::default(),
                    admission_wait: Duration::default(),
                });
            }
        }

        let warm_start = preparer.has_scratch();
        let outcome = match &request.payload {
            StatePayload::Dense(amplitudes) => {
                preparer.prepare(&request.dims, amplitudes, request.options)
            }
            StatePayload::Sparse(entries) => {
                preparer.prepare_sparse(&request.dims, entries, request.options)
            }
        };
        let result = match outcome {
            Ok(result) => result,
            Err(error) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Prepare(error));
            }
        };
        if warm_start {
            self.arena_reuses.fetch_add(1, Ordering::Relaxed);
        }
        if preparer.build_threads() > 1 {
            self.parallel_builds.fetch_add(1, Ordering::Relaxed);
        }
        let verification = if request.options.verification.is_enabled() {
            let measured = match &request.payload {
                StatePayload::Dense(amplitudes) => {
                    preparer.verify_dense(&result.circuit, amplitudes)
                }
                StatePayload::Sparse(entries) => {
                    preparer.verify_sparse(&result.circuit, entries, request.options.tolerance)
                }
            };
            match measured {
                Ok(report) => Some(report),
                Err(error) => {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    // The pipeline itself succeeded: reclaim the result's
                    // arena so a failing replay never costs this worker
                    // its warmed scratch state.
                    preparer.recycle(result);
                    return Err(EngineError::Prepare(error));
                }
            }
        } else {
            None
        };
        let (circuit, report) = preparer.recycle(result);
        if let Some((fingerprint, key)) = key {
            // Filled even when the threshold check below fails: the
            // circuit itself is valid and the measured fidelity is part of
            // the entry, so identical verified requests fail fast from the
            // cache with the same verdict.
            self.cache.insert(
                fingerprint,
                key,
                Arc::new(CachedPreparation {
                    circuit: circuit.clone(),
                    report: report.clone(),
                    verification: verification.clone(),
                }),
            );
        }
        self.check_verification(min_fidelity, verification.as_ref())?;
        self.jobs.fetch_add(1, Ordering::Relaxed);
        Ok(PrepareReport {
            circuit,
            report,
            verification,
            from_cache: false,
            elapsed: Duration::default(),
            queue_wait: Duration::default(),
            admission_wait: Duration::default(),
        })
    }

    /// The loop of one persistent worker: pop, serve, reply, publish
    /// telemetry — until the scheduler signals exit.
    fn worker_loop(&self, slot: usize) {
        let mut preparer = match self.config.node_limit {
            Some(limit) => Preparer::new().with_node_limit(limit),
            None => Preparer::new(),
        };
        let slot = &self.workers[slot];
        // Last-seen weight-table counters of the worker's scratch arena.
        // Counters are cumulative within one arena but some pipeline paths
        // (e.g. approximating an unreduced tree) swap in a fresh arena, so
        // telemetry is published as per-job deltas instead of raw gauges.
        let mut seen = (0u64, 0u64);
        while let Some(job) = self.scheduler.pop() {
            let queue_wait = job.submitted_at.elapsed();
            let started = Instant::now();
            // Per-job intra-job thread grant: large jobs borrow spare
            // cores for the duration of their build, everything else runs
            // the exact sequential path.
            let grant = self.intra_job_grant(&job.request);
            preparer.set_build_threads(grant);
            let mut outcome = self.serve(&mut preparer, &job.request);
            preparer.set_build_threads(1);
            self.release_extra_cores(grant - 1);
            if let Ok(report) = &mut outcome {
                report.elapsed = started.elapsed();
                report.queue_wait = queue_wait;
                report.admission_wait = job.admission_wait;
            }
            // A dropped handle is not an error — the caller abandoned the
            // result, not the job.
            let _ = job.reply.send(outcome);
            if let Some(stats) = preparer.weight_stats() {
                let (lookups, insertions) = if stats.lookups >= seen.0 && stats.insertions >= seen.1
                {
                    (stats.lookups - seen.0, stats.insertions - seen.1)
                } else {
                    // The scratch arena was replaced this job; its
                    // counters restarted from zero.
                    (stats.lookups, stats.insertions)
                };
                seen = (stats.lookups, stats.insertions);
                slot.weight_lookups.fetch_add(lookups, Ordering::Relaxed);
                slot.weight_insertions
                    .fetch_add(insertions, Ordering::Relaxed);
            }
        }
    }

    fn stats(&self) -> EngineStats {
        self.stats_with(self.cache.stats())
    }

    fn stats_snapshot(&self) -> EngineStats {
        self.stats_with(self.cache.stats_snapshot())
    }

    fn stats_with(&self, cache: CacheStats) -> EngineStats {
        EngineStats {
            jobs: self.jobs.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
            verification_failures: self.verification_failures.load(Ordering::Relaxed),
            high_watermark: self.scheduler.high_watermark(),
            cache,
            weight_lookups: self
                .workers
                .iter()
                .map(|w| w.weight_lookups.load(Ordering::Relaxed))
                .sum(),
            weight_insertions: self
                .workers
                .iter()
                .map(|w| w.weight_insertions.load(Ordering::Relaxed))
                .sum(),
            arena_reuses: self.arena_reuses.load(Ordering::Relaxed),
            queued: self.scheduler.len(),
            parked: self.scheduler.parked(),
            parallel_builds: self.parallel_builds.load(Ordering::Relaxed),
        }
    }
}

/// Scheduler kill switch armed for the duration of a worker's loop: runs
/// only when the worker is *unwinding*, so a panicking worker degrades the
/// service into clean `Shutdown` errors instead of hung handles.
struct AbortOnPanic<'a>(&'a ServiceShared);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.0.scheduler.abort();
        }
    }
}

/// A persistent, non-blocking preparation service; see the
/// [crate documentation](crate) for the architecture.
///
/// The worker pool is spawned once in [`EngineService::new`] and lives
/// until [`EngineService::shutdown`], [`EngineService::shutdown_now`] or
/// `Drop`. Submissions stream in through [`EngineService::submit`] /
/// [`EngineService::submit_batch`] and resolve through per-job
/// [`JobHandle`]s, scheduled by the configured
/// [`SchedulingPolicy`](crate::SchedulingPolicy).
///
/// # Examples
///
/// ```
/// use mdq_engine::{EngineConfig, EngineService, PrepareRequest, Priority};
/// use mdq_core::PrepareOptions;
/// use mdq_num::radix::Dims;
/// use mdq_states::ghz;
///
/// let service = EngineService::new(EngineConfig::default().with_workers(2));
/// let dims = Dims::new(vec![3, 3])?;
/// let handle = service.submit(
///     PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact())
///         .with_priority(Priority::High),
/// );
/// let report = handle.wait()?;
/// assert!(!report.circuit.is_empty());
/// service.shutdown(); // drains queued work, then joins the pool
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EngineService {
    shared: Arc<ServiceShared>,
    pool: Vec<JoinHandle<()>>,
}

impl EngineService {
    /// Spawns the worker pool (once — it persists across submissions) and
    /// returns the ready service.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let cache = CircuitCache::with_capacity(config.cache_shards, config.cache_capacity)
            .with_ttl(config.cache_ttl)
            .with_hot_tier(config.hot_tier.clone());
        // Warm start: replay the snapshot into the cache before any worker
        // runs. A missing file is a silent cold start (first boot and warm
        // restart share one configuration); an unreadable or corrupt file
        // is kept as an inspectable error, never a panic — the service
        // simply starts cold.
        let warm_start_load = config
            .warm_start
            .as_ref()
            .and_then(|path| path.exists().then(|| snapshot::load_into(&cache, path)));
        // Intra-job grants only ever draw from cores the worker pool does
        // not already claim, so the default one-worker-per-core pool gets
        // a zero budget and builds stay sequential.
        let extra_core_budget = if config.intra_job_threads > 1 {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .saturating_sub(workers)
        } else {
            0
        };
        let shared = Arc::new(ServiceShared {
            scheduler: Scheduler::new(config.scheduling, config.queue_depth, config.aging),
            cache,
            warm_start_load,
            seq: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            verified: AtomicU64::new(0),
            verification_failures: AtomicU64::new(0),
            arena_reuses: AtomicU64::new(0),
            parallel_builds: AtomicU64::new(0),
            extra_cores: AtomicUsize::new(extra_core_budget),
            workers: (0..workers).map(|_| WorkerSlot::default()).collect(),
            config,
        });
        let pool = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mdq-engine-worker-{slot}"))
                    .spawn(move || {
                        // If the loop unwinds, fail the whole service
                        // rather than hang it: aborting the scheduler
                        // resolves every queued (and future) handle to
                        // `Shutdown` instead of leaving callers blocked on
                        // a reply that will never come.
                        let abort_guard = AbortOnPanic(&shared);
                        shared.worker_loop(slot);
                        drop(abort_guard);
                    })
                    .expect("spawning engine worker")
            })
            .collect();
        EngineService { shared, pool }
    }

    /// A service with the default configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The service's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// The prepared-circuit cache (e.g. to pre-warm or clear it).
    #[must_use]
    pub fn cache(&self) -> &CircuitCache {
        &self.shared.cache
    }

    /// Aggregate counters, cumulative since construction.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.shared.stats()
    }

    /// Lock-free point-in-time [`EngineStats`]: identical to
    /// [`EngineService::stats`] except that the cache occupancy comes from
    /// [`CircuitCache::stats_snapshot`]'s maintained counter instead of a
    /// recount that locks every cache shard. This is what an aggregator
    /// polling many shard services (the `mdq-router` front-end) should
    /// call: it never contends with the serving path.
    #[must_use]
    pub fn stats_snapshot(&self) -> EngineStats {
        self.shared.stats_snapshot()
    }

    /// Outcome of the construction-time warm-start load: `None` when no
    /// [`EngineConfig::warm_start`] path was configured or the snapshot
    /// file did not exist yet, `Some(Ok(load))` with the loaded/skipped
    /// counts and load time otherwise, `Some(Err(_))` when the file was
    /// present but rejected (the service started cold).
    #[must_use]
    pub fn warm_start_load(&self) -> Option<&Result<SnapshotLoad, SnapshotError>> {
        self.shared.warm_start_load.as_ref()
    }

    /// Snapshots the cache's current contents to `path` (atomically: a
    /// temp file renamed into place). The service keeps running; entries
    /// inserted while the snapshot is being written may or may not be
    /// included.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be written.
    pub fn snapshot_to(&self, path: &Path) -> Result<SnapshotStats, SnapshotError> {
        snapshot::save(&self.shared.cache, path)
    }

    /// Validation shared by both admission paths: a malformed request —
    /// invalid thresholds or a payload the pipeline would reject — fails
    /// **at admission** with the identical [`PrepareError`] the worker
    /// would have produced, resolved straight onto the reply channel. It
    /// never occupies a queue slot, never displaces well-formed work under
    /// the size-aware policy, and counts as a failure exactly as a
    /// worker-side rejection would.
    fn admit_validated(&self, job: Job) -> Option<Job> {
        match job.request.validate() {
            Ok(()) => Some(job),
            Err(error) => {
                self.shared.failures.fetch_add(1, Ordering::Relaxed);
                // Resolves the caller's handle through the job's own reply
                // channel, exactly as a worker-side failure would.
                job.reject(EngineError::Prepare(error));
                None
            }
        }
    }

    /// Enqueues one request and returns its handle. The job runs when the
    /// scheduler picks it, ordered by [`Priority`](crate::Priority) / size
    /// under the default policy, with wait-time aging
    /// ([`EngineConfig::aging`]) guaranteeing no accepted job starves.
    ///
    /// On an unbounded queue (the default) this never blocks. With
    /// [`EngineConfig::with_queue_depth`] set, a full queue makes this
    /// **park on the admission ticket queue until space frees** — the
    /// backpressure submission path. Admission is FIFO-fair: slots freed
    /// by workers are handed to parked submitters strictly in arrival
    /// order, and a concurrent [`try_submit`](EngineService::try_submit)
    /// flood is refused rather than allowed to steal an owed slot, so
    /// every parked submitter's wait is bounded by the pops ahead of its
    /// ticket. The time spent parked is reported per job as
    /// [`PrepareReport::admission_wait`](crate::PrepareReport) and in
    /// aggregate as [`EngineStats::parked`](crate::EngineStats). Callers
    /// that must not block use `try_submit` instead.
    ///
    /// Malformed requests (payload or options the pipeline would reject)
    /// fail their handle immediately with the identical
    /// [`EngineError::Prepare`] error, without consuming a queue slot.
    pub fn submit(&self, request: PrepareRequest) -> JobHandle {
        let (reply, rx) = channel();
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            request,
            submitted_at: Instant::now(),
            admission_wait: Duration::ZERO,
            reply,
        };
        if let Some(job) = self.admit_validated(job) {
            self.shared.scheduler.push(job, seq);
        }
        JobHandle::new(rx)
    }

    /// Non-blocking admission: enqueues the request if the scheduler queue
    /// has room **and no blocking submitters are parked**, or returns it
    /// to the caller inside an [`AdmissionError`] —
    /// [`EngineError::QueueFull`] when the
    /// [`EngineConfig::with_queue_depth`] bound is hit or a parked
    /// [`submit`](EngineService::submit) holds a ticket for the next freed
    /// slot (counted in [`EngineStats::rejected`](crate::EngineStats)),
    /// [`EngineError::QueueClosed`] when the service stopped accepting
    /// work. Refusing while tickets are outstanding is what makes bounded
    /// admission FIFO-fair: a non-blocking flood sheds load instead of
    /// starving parked submitters. A refused job is never queued and
    /// leaves no handle or channel behind.
    ///
    /// Malformed requests that pass admission control still fail their
    /// handle immediately with [`EngineError::Prepare`], exactly as
    /// [`submit`](EngineService::submit) does.
    ///
    /// # Errors
    ///
    /// [`AdmissionError`] carrying the request back, as above.
    // The large Err variant is deliberate: the refused request is returned
    // to the caller by value so it can be retried or rerouted.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, request: PrepareRequest) -> Result<JobHandle, AdmissionError> {
        let (reply, rx) = channel();
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            request,
            submitted_at: Instant::now(),
            admission_wait: Duration::ZERO,
            reply,
        };
        let Some(job) = self.admit_validated(job) else {
            return Ok(JobHandle::new(rx));
        };
        match self.shared.scheduler.try_push(job, seq) {
            Ok(()) => Ok(JobHandle::new(rx)),
            Err((job, refusal)) => {
                let error = match refusal {
                    PushRefusal::Full { depth, limit } => {
                        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                        EngineError::QueueFull { depth, limit }
                    }
                    PushRefusal::Closed => EngineError::QueueClosed,
                };
                // `rx` and the job's reply sender both die right here:
                // nothing of a refused submission reaches the queue or a
                // worker, so dropping the error cannot leak or deadlock.
                Err(AdmissionError {
                    request: job.request,
                    error,
                })
            }
        }
    }

    /// Enqueues a whole batch, returning one handle per request in the
    /// same order. Sugar for repeated [`EngineService::submit`] calls.
    pub fn submit_batch<I>(&self, requests: I) -> Vec<JobHandle>
    where
        I: IntoIterator<Item = PrepareRequest>,
    {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Graceful shutdown: stops accepting submissions, **drains** every
    /// queued job, then joins the worker pool. All outstanding handles
    /// resolve with their real results. With
    /// [`EngineConfig::with_warm_start`] configured, the drained cache is
    /// then snapshotted back to the warm-start path (best-effort: a
    /// failed write is ignored — the next boot is simply colder), so a
    /// restart replays this process's accumulated work.
    pub fn shutdown(mut self) {
        self.shared.scheduler.close();
        self.join_pool();
        if let Some(path) = &self.shared.config.warm_start {
            let _ = snapshot::save(&self.shared.cache, path);
        }
    }

    /// Immediate shutdown: stops accepting submissions and **aborts** the
    /// queue — every still-queued job resolves to
    /// [`EngineError::Shutdown`]; jobs already running finish and deliver.
    /// This is also the `Drop` behaviour.
    pub fn shutdown_now(mut self) {
        self.shared.scheduler.abort();
        self.join_pool();
    }

    fn join_pool(&mut self) {
        let mut worker_panicked = false;
        for handle in self.pool.drain(..) {
            worker_panicked |= handle.join().is_err();
        }
        // Surface a worker panic to the caller — but never panic while
        // already unwinding (that would abort the process in `Drop`).
        if worker_panicked && !thread::panicking() {
            panic!("engine worker panicked");
        }
    }
}

impl Drop for EngineService {
    /// Dropping the service aborts queued jobs (handles resolve to
    /// [`EngineError::Shutdown`]) and joins the pool — never hangs on a
    /// deep queue, never leaks threads.
    fn drop(&mut self) {
        if !self.pool.is_empty() {
            self.shared.scheduler.abort();
            self.join_pool();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Priority;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;
    use mdq_states::{ghz, w_state};
    use rand::SeedableRng;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    #[test]
    fn submit_resolves_like_sequential_prepare() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(2));
        let requests = vec![
            PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact()),
            PrepareRequest::dense(d.clone(), w_state(&d), PrepareOptions::approximated(0.98))
                .with_priority(Priority::High),
            PrepareRequest::sparse(
                d.clone(),
                mdq_states::sparse::w_state(&d),
                PrepareOptions::exact(),
            )
            .with_priority(Priority::Low),
        ];
        let handles = service.submit_batch(requests.clone());
        for (request, handle) in requests.iter().zip(handles) {
            let report = handle.wait().expect("job succeeds");
            let want = request.prepare_sequential().expect("reference runs");
            assert_eq!(report.circuit, want.circuit);
        }
        assert_eq!(service.stats().jobs, 3);
        service.shutdown();
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let d = dims(&[3, 3]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let mut handle = service.submit(PrepareRequest::dense(
            d.clone(),
            ghz(&d),
            PrepareOptions::exact(),
        ));
        // Poll until resolution; try_wait never blocks.
        let deadline = Instant::now() + Duration::from_secs(30);
        while handle.try_wait().is_none() {
            assert!(Instant::now() < deadline, "job should resolve quickly");
            thread::yield_now();
        }
        // The retained result is observable repeatedly, then consumable.
        assert!(handle.try_wait().unwrap().is_ok());
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_some());
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn wait_timeout_times_out_then_resolves() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let mut handle = service.submit(PrepareRequest::dense(
            d.clone(),
            w_state(&d),
            PrepareOptions::exact(),
        ));
        // A zero timeout may or may not resolve; a generous one must.
        let _ = handle.wait_timeout(Duration::from_nanos(1));
        assert!(handle.wait_timeout(Duration::from_secs(30)).is_some());
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn pipeline_failures_surface_as_prepare_errors() {
        let d = dims(&[2, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let handle = service.submit(PrepareRequest::dense(
            d,
            vec![mdq_num::Complex::ONE],
            PrepareOptions::exact(),
        ));
        match handle.wait() {
            Err(EngineError::Prepare(PrepareError::Build(_))) => {}
            other => panic!("expected a build error, got {other:?}"),
        }
        assert_eq!(service.stats().failures, 1);
    }

    #[test]
    fn dropped_service_resolves_pending_handles_to_shutdown() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
        // Enough queued work that most of it is still pending at drop.
        let handles: Vec<JobHandle> = (0..16)
            .map(|_| {
                service.submit(PrepareRequest::dense(
                    d.clone(),
                    w_state(&d),
                    PrepareOptions::exact(),
                ))
            })
            .collect();
        drop(service);
        let mut shutdown = 0;
        for handle in handles {
            match handle.wait() {
                Ok(_) => {}
                Err(EngineError::Shutdown) => shutdown += 1,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(shutdown > 0, "queued jobs resolve to Shutdown on drop");
    }

    #[test]
    fn graceful_shutdown_drains_the_queue() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
        let handles: Vec<JobHandle> = (0..8)
            .map(|_| {
                service.submit(PrepareRequest::dense(
                    d.clone(),
                    ghz(&d),
                    PrepareOptions::exact(),
                ))
            })
            .collect();
        service.shutdown();
        for handle in handles {
            assert!(handle.wait().is_ok(), "drained jobs deliver real results");
        }
    }

    #[test]
    fn zero_duration_wait_timeout_is_a_pure_poll() {
        // Driven through a raw reply channel so the pending/resolved/dead
        // states are fully deterministic (no racing worker).
        let (tx, rx) = channel();
        let mut handle = JobHandle::new(rx);
        // Pending: a zero-duration wait returns None and blocks for nothing.
        assert!(handle.wait_timeout(Duration::ZERO).is_none());
        assert!(handle.try_wait().is_none());
        tx.send(Err(EngineError::Shutdown)).unwrap();
        // Resolved: the zero-duration wait sees the outcome and retains it.
        assert!(matches!(
            handle.wait_timeout(Duration::ZERO),
            Some(Err(EngineError::Shutdown))
        ));
        drop(tx);
        assert!(matches!(
            handle.wait_timeout(Duration::ZERO),
            Some(Err(EngineError::Shutdown))
        ));
        // A handle whose channel died unresolved reads as Shutdown, even
        // with a zero-duration poll.
        let (tx2, rx2) = channel::<Result<PrepareReport, EngineError>>();
        let mut dead = JobHandle::new(rx2);
        drop(tx2);
        assert!(matches!(
            dead.wait_timeout(Duration::ZERO),
            Some(Err(EngineError::Shutdown))
        ));
    }

    #[test]
    fn try_submit_admits_on_an_unbounded_queue() {
        let d = dims(&[3, 3]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let handle = service
            .try_submit(PrepareRequest::dense(
                d.clone(),
                ghz(&d),
                PrepareOptions::exact(),
            ))
            .expect("unbounded queue always admits");
        assert!(handle.wait().is_ok());
        assert_eq!(service.stats().rejected, 0);
        service.shutdown();
    }

    #[test]
    fn rejected_submission_returns_the_request_and_counts() {
        let d = dims(&[9, 5, 6, 3]);
        // One worker, one queue slot: occupy the worker with an expensive
        // job, fill the slot, then flood — rejections must occur, each
        // handing the request back untouched.
        let service = EngineService::new(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_depth(1)
                .without_cache(),
        );
        let busy = service.submit(PrepareRequest::dense(
            d.clone(),
            w_state(&d),
            PrepareOptions::exact(),
        ));
        let cheap_dims = dims(&[2, 2]);
        let cheap = PrepareRequest::dense(
            cheap_dims.clone(),
            ghz(&cheap_dims),
            PrepareOptions::exact(),
        );
        let mut accepted = Vec::new();
        let mut rejections = 0u64;
        for _ in 0..64 {
            match service.try_submit(cheap.clone()) {
                Ok(handle) => accepted.push(handle),
                Err(refused) => {
                    assert_eq!(refused.request, cheap, "request returned by value");
                    assert!(
                        matches!(refused.error, EngineError::QueueFull { limit: 1, .. }),
                        "unexpected refusal: {:?}",
                        refused.error
                    );
                    // Dropping the AdmissionError (and the request inside)
                    // must be inert — regression guard for the
                    // never-queued-job channel.
                    drop(refused);
                    rejections += 1;
                }
            }
        }
        assert!(rejections > 0, "a saturated queue must reject");
        busy.wait().expect("busy job finishes");
        for handle in accepted {
            handle.wait().expect("accepted jobs resolve");
        }
        let stats = service.stats();
        assert_eq!(stats.rejected, rejections);
        assert_eq!(stats.high_watermark, 1, "rejections imply a full queue");
        service.shutdown();
    }

    #[test]
    fn verification_attaches_a_passing_report() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let request = PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact())
            .with_verification(mdq_core::VerificationPolicy::replay(0.99));
        let report = service.submit(request.clone()).wait().expect("verifies");
        let verification = report.verification.expect("report attached");
        assert!((verification.fidelity - 1.0).abs() < 1e-9);
        assert!(verification.replay_nodes > 0);
        // Bit-identical to the unverified sequential pipeline.
        let want = request.prepare_sequential().unwrap();
        assert_eq!(report.circuit, want.circuit);
        // The verified entry is in the cache; a repeat is served from it,
        // verification report included.
        let again = service.submit(request).wait().expect("cache hit");
        assert!(again.from_cache);
        assert!(again.verification.is_some());
        let stats = service.stats();
        assert_eq!(stats.verified, 2);
        assert_eq!(stats.verification_failures, 0);
        service.shutdown();
    }

    #[test]
    fn below_threshold_jobs_fail_fresh_and_from_cache() {
        // An approximated random state reaches a fidelity strictly below 1;
        // demanding anything above the reached value must fail the job. The
        // demanded floor is calibrated from a sequential replay, so the
        // failure is deterministic by construction.
        let d = dims(&[3, 6, 2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let target = mdq_states::random_state(&d, mdq_states::RandomKind::ReImUniform, &mut rng);
        let opts = PrepareOptions::approximated(0.9).without_zero_subtrees();
        let sequential = mdq_core::prepare(&d, &target, opts).unwrap();
        assert!(sequential.report.pruned_mass > 0.0, "budget 0.1 must prune");
        let reached = mdq_core::Preparer::new()
            .verify_dense(&sequential.circuit, &target)
            .unwrap()
            .fidelity;
        assert!(reached < 1.0 - 1e-9);
        let floor = (reached + 1.0) / 2.0;

        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let request = PrepareRequest::dense(d.clone(), target, opts)
            .with_verification(mdq_core::VerificationPolicy::replay(floor));
        let first = service.submit(request.clone()).wait();
        let Err(EngineError::VerificationFailed {
            fidelity,
            threshold,
        }) = first
        else {
            panic!("expected VerificationFailed, got {first:?}");
        };
        assert!(fidelity < threshold);
        assert!(
            (fidelity - reached).abs() < 1e-12,
            "engine measures the same fidelity as the sequential replay"
        );
        // The measured entry is cached: the identical request fails fast
        // with the *same* verdict, without re-running the pipeline.
        let second = service.submit(request.clone()).wait();
        assert_eq!(
            second.unwrap_err(),
            EngineError::VerificationFailed {
                fidelity,
                threshold
            }
        );
        let stats = service.stats();
        assert_eq!(stats.verification_failures, 2);
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.cache.hits, 1, "second attempt hit the entry");
        // An *unverified* request for the same state is served the (valid)
        // circuit from the cache.
        let relaxed = request.with_verification(mdq_core::VerificationPolicy::Off);
        let served = service.submit(relaxed).wait().expect("circuit is valid");
        assert!(served.from_cache);
        service.shutdown();
    }

    #[test]
    fn verified_requests_never_reuse_unverified_entries() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let plain = PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact());
        let unverified = service.submit(plain.clone()).wait().unwrap();
        assert!(unverified.verification.is_none());
        // Same state, verification demanded: must re-run (and upgrade the
        // entry), not silently serve the unverified one.
        let strict = plain
            .clone()
            .with_verification(mdq_core::VerificationPolicy::replay(0.99));
        let verified = service.submit(strict.clone()).wait().unwrap();
        assert!(!verified.from_cache, "unverified entry was not reused");
        assert!(verified.verification.is_some());
        // The upgraded entry now serves verified requests from cache.
        let again = service.submit(strict).wait().unwrap();
        assert!(again.from_cache);
        assert!(again.verification.is_some());
        service.shutdown();
    }

    #[test]
    fn sparse_jobs_verify_too() {
        let d = dims(&[3, 4, 2, 5, 3, 2, 4, 3]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let request = PrepareRequest::sparse(
            d.clone(),
            mdq_states::sparse::ghz(&d),
            PrepareOptions::exact(),
        )
        .with_verification(mdq_core::VerificationPolicy::replay(0.999));
        let report = service.submit(request).wait().expect("verifies");
        let verification = report.verification.expect("report attached");
        assert!((verification.fidelity - 1.0).abs() < 1e-9);
        service.shutdown();
    }

    #[test]
    fn warm_start_round_trips_through_graceful_shutdown() {
        let path =
            std::env::temp_dir().join(format!("mdq-warmstart-service-{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let d = dims(&[3, 6, 2]);
        let request = PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact());
        let config = EngineConfig::default()
            .with_workers(1)
            .with_warm_start(&path);
        let service = EngineService::new(config.clone());
        assert!(
            service.warm_start_load().is_none(),
            "no snapshot yet: silent cold start"
        );
        let cold = service.submit(request.clone()).wait().unwrap();
        assert!(!cold.from_cache);
        service.shutdown(); // writes the snapshot
        assert!(path.exists(), "graceful shutdown snapshotted the cache");

        let warmed = EngineService::new(config);
        let load = warmed
            .warm_start_load()
            .expect("snapshot file existed")
            .as_ref()
            .expect("snapshot loads cleanly");
        assert_eq!((load.loaded, load.skipped), (1, 0));
        let warm = warmed.submit(request.clone()).wait().unwrap();
        assert!(warm.from_cache, "served from the loaded snapshot");
        assert_eq!(warm.circuit, cold.circuit);
        assert_eq!(
            warm.circuit,
            request.prepare_sequential().unwrap().circuit,
            "snapshot-served circuit is bit-identical to sequential prepare"
        );
        warmed.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_warm_start_file_starts_cold_with_inspectable_error() {
        let path =
            std::env::temp_dir().join(format!("mdq-warmstart-corrupt-{}.snap", std::process::id()));
        std::fs::write(&path, "mdqsnap 7\nentries 0\ndone\n").unwrap();
        let service = EngineService::new(
            EngineConfig::default()
                .with_workers(1)
                .with_warm_start(&path),
        );
        match service.warm_start_load() {
            Some(Err(SnapshotError::Version { found: 7, .. })) => {}
            other => panic!("expected a Version error, got {other:?}"),
        }
        // The service still serves, cold.
        let d = dims(&[3, 3]);
        let report = service
            .submit(PrepareRequest::dense(
                d.clone(),
                ghz(&d),
                PrepareOptions::exact(),
            ))
            .wait()
            .unwrap();
        assert!(!report.from_cache);
        // Graceful shutdown replaces the bad file with a valid snapshot.
        service.shutdown();
        let follow_up = EngineService::new(
            EngineConfig::default()
                .with_workers(1)
                .with_warm_start(&path),
        );
        assert!(matches!(follow_up.warm_start_load(), Some(Ok(_))));
        follow_up.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hot_tier_shares_entries_across_service_instances() {
        let d = dims(&[3, 6, 2]);
        let request = PrepareRequest::dense(d.clone(), w_state(&d), PrepareOptions::exact());
        let first = EngineService::new(EngineConfig::default().with_workers(1));
        let original = first.submit(request.clone()).wait().unwrap();
        let tier = Arc::new(first.cache().freeze());
        first.shutdown();

        let second =
            EngineService::new(EngineConfig::default().with_workers(1).with_hot_tier(tier));
        let served = second.submit(request.clone()).wait().unwrap();
        assert!(served.from_cache, "answered by the shared tier");
        assert_eq!(served.circuit, original.circuit);
        let stats = second.stats();
        assert_eq!(stats.cache.hot_hits, 1);
        assert_eq!(stats.cache.entries, 0, "nothing copied into the shards");
        second.shutdown();
    }

    #[test]
    fn intra_job_threads_grant_spare_cores_only_to_large_jobs() {
        let d = dims(&[3, 6, 2, 4]);
        let service = EngineService::new(
            EngineConfig::default()
                .with_workers(1)
                .without_cache()
                .with_intra_job_threads(64, 4),
        );
        let large = PrepareRequest::dense(d.clone(), w_state(&d), PrepareOptions::exact());
        assert!(
            large.cost_estimate() >= 64,
            "large job clears the threshold"
        );
        let small_dims = dims(&[2, 2]);
        let small = PrepareRequest::dense(
            small_dims.clone(),
            ghz(&small_dims),
            PrepareOptions::exact(),
        );
        assert!(small.cost_estimate() < 64, "small job stays below it");
        let served_large = service.submit(large.clone()).wait().unwrap();
        let served_small = service.submit(small.clone()).wait().unwrap();
        // Bit-identical to the sequential pipeline either way — the grant
        // changes the schedule, never the circuit.
        assert_eq!(
            served_large.circuit,
            large.prepare_sequential().unwrap().circuit
        );
        assert_eq!(
            served_small.circuit,
            small.prepare_sequential().unwrap().circuit
        );
        let stats = service.stats();
        let spare = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_sub(1);
        if spare == 0 {
            assert_eq!(
                stats.parallel_builds, 0,
                "no cores beyond the worker: every build stays sequential"
            );
        } else {
            assert_eq!(
                stats.parallel_builds, 1,
                "only the above-threshold job was granted build threads"
            );
        }
        service.shutdown();
    }

    #[test]
    fn workers_and_arenas_persist_across_submission_waves() {
        let d = dims(&[3, 6, 2]);
        // Cache off so every job runs the pipeline (cache hits would not
        // touch the arena).
        let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
        let wave = |n: u64| -> Vec<JobHandle> {
            (0..n)
                .map(|_| {
                    // Canonical (zero-pruned) builds intern through the
                    // weight table, so lookups are visible telemetry.
                    service.submit(PrepareRequest::dense(
                        d.clone(),
                        w_state(&d),
                        PrepareOptions::exact().without_zero_subtrees(),
                    ))
                })
                .collect()
        };
        for handle in wave(4) {
            handle.wait().expect("wave-1 job succeeds");
        }
        let after_first = service.stats();
        assert_eq!(after_first.arena_reuses, 3, "3 of 4 wave-1 jobs warm");
        for handle in wave(4) {
            handle.wait().expect("wave-2 job succeeds");
        }
        let after_second = service.stats();
        // The first wave-2 job is *also* warm — the worker (and its arena)
        // survived between waves instead of being torn down.
        assert_eq!(after_second.arena_reuses, 7);
        assert!(after_second.weight_lookups > after_first.weight_lookups);
        service.shutdown();
    }
}
