//! The persistent, non-blocking preparation service.
//!
//! An [`EngineService`] spawns its worker pool **once** at construction and
//! keeps each worker's warmed [`Preparer`](mdq_core::Preparer) — diagram
//! arena, unique table, weight table, compute cache — alive across
//! submissions. Callers stream requests in through [`EngineService::submit`]
//! (never blocking on the pipeline) and await each result through the
//! returned [`JobHandle`]; the [`scheduler`](crate::scheduler) decides the
//! execution order without ever changing the result, which stays
//! bit-identical to the sequential pipeline for every job.
//!
//! Everything is built on `std` synchronization primitives (mpsc channels,
//! mutex + condvar) — no external async runtime, consistent with the
//! repository's vendored-dependency constraint.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mdq_core::{PrepareError, Preparer};

use crate::cache::{canonical_key, CachedPreparation, CircuitCache};
use crate::engine::{EngineConfig, EngineStats};
use crate::request::{PrepareReport, PrepareRequest, StatePayload};
use crate::scheduler::{Job, Scheduler};

/// Unified error type of the service: either the pipeline itself failed,
/// or the service stopped before (or instead of) running the job.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The preparation pipeline rejected or failed the job.
    Prepare(PrepareError),
    /// The service was shut down (or dropped) while this job was still
    /// queued; it was never run.
    Shutdown,
    /// The job was submitted after the service had stopped accepting work.
    QueueClosed,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Prepare(e) => write!(f, "preparation failed: {e}"),
            EngineError::Shutdown => write!(f, "engine service shut down before the job ran"),
            EngineError::QueueClosed => {
                write!(f, "engine service no longer accepts submissions")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Prepare(e) => Some(e),
            EngineError::Shutdown | EngineError::QueueClosed => None,
        }
    }
}

impl From<PrepareError> for EngineError {
    fn from(e: PrepareError) -> Self {
        EngineError::Prepare(e)
    }
}

/// The caller's side of one submission: a future-like handle resolving to
/// the job's [`PrepareReport`].
///
/// The handle polls a dedicated mpsc channel; once a result has been
/// received it is retained, so [`JobHandle::try_wait`] and
/// [`JobHandle::wait_timeout`] can be called repeatedly and
/// [`JobHandle::wait`] consumes the handle for the final by-value result.
/// Dropping a handle abandons the job's result (the job itself still
/// runs); it never blocks the service.
#[derive(Debug)]
pub struct JobHandle {
    rx: Receiver<Result<PrepareReport, EngineError>>,
    outcome: Option<Result<PrepareReport, EngineError>>,
}

impl JobHandle {
    pub(crate) fn new(rx: Receiver<Result<PrepareReport, EngineError>>) -> Self {
        JobHandle { rx, outcome: None }
    }

    /// Non-blocking poll: `Some` once the job has finished (or the service
    /// stopped), `None` while it is still queued or running.
    pub fn try_wait(&mut self) -> Option<&Result<PrepareReport, EngineError>> {
        if self.outcome.is_none() {
            match self.rx.try_recv() {
                Ok(result) => self.outcome = Some(result),
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    self.outcome = Some(Err(EngineError::Shutdown));
                }
            }
        }
        self.outcome.as_ref()
    }

    /// Blocks for at most `timeout` for the result; `None` on timeout.
    /// Like [`JobHandle::try_wait`], repeatable — the result is retained.
    pub fn wait_timeout(
        &mut self,
        timeout: Duration,
    ) -> Option<&Result<PrepareReport, EngineError>> {
        if self.outcome.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(result) => self.outcome = Some(result),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    self.outcome = Some(Err(EngineError::Shutdown));
                }
            }
        }
        self.outcome.as_ref()
    }

    /// Blocks until the job resolves and returns its result by value.
    ///
    /// # Errors
    ///
    /// [`EngineError::Prepare`] if the pipeline failed,
    /// [`EngineError::Shutdown`]/[`EngineError::QueueClosed`] if the
    /// service stopped before serving the job.
    pub fn wait(mut self) -> Result<PrepareReport, EngineError> {
        if let Some(result) = self.outcome.take() {
            return result;
        }
        match self.rx.recv() {
            Ok(result) => result,
            // Workers dropped the sender without replying: the service
            // went away (or a worker died) before this job resolved.
            Err(_) => Err(EngineError::Shutdown),
        }
    }
}

/// Per-worker telemetry slots, written by the worker after every job and
/// summed by [`EngineService::stats`] — long-lived workers never hand
/// their [`Preparer`](mdq_core::Preparer) back, so the gauges travel
/// through these atomics instead.
#[derive(Debug, Default)]
struct WorkerSlot {
    weight_lookups: AtomicU64,
    weight_insertions: AtomicU64,
}

#[derive(Debug)]
struct ServiceShared {
    config: EngineConfig,
    scheduler: Scheduler,
    cache: CircuitCache,
    /// Submission sequence — the deterministic FIFO tie-breaker.
    seq: AtomicU64,
    jobs: AtomicU64,
    failures: AtomicU64,
    /// Jobs whose pipeline ran on a worker's *retained* scratch arena —
    /// the observable proof of worker persistence across submissions.
    arena_reuses: AtomicU64,
    workers: Vec<WorkerSlot>,
}

impl ServiceShared {
    /// Cache probe → pipeline on miss → cache fill, on one worker's
    /// preparer. The single serving path of the whole crate.
    fn serve(
        &self,
        preparer: &mut Preparer,
        request: &PrepareRequest,
    ) -> Result<PrepareReport, PrepareError> {
        let key = if self.config.use_cache {
            canonical_key(request)
        } else {
            None
        };
        if let Some((fingerprint, key)) = &key {
            if let Some(cached) = self.cache.get(*fingerprint, key) {
                self.jobs.fetch_add(1, Ordering::Relaxed);
                return Ok(PrepareReport {
                    circuit: cached.circuit.clone(),
                    report: cached.report.clone(),
                    from_cache: true,
                    elapsed: Duration::default(),
                    queue_wait: Duration::default(),
                });
            }
        }

        let warm_start = preparer.has_scratch();
        let outcome = match &request.payload {
            StatePayload::Dense(amplitudes) => {
                preparer.prepare_recycled(&request.dims, amplitudes, request.options)
            }
            StatePayload::Sparse(entries) => {
                preparer.prepare_sparse_recycled(&request.dims, entries, request.options)
            }
        };
        match outcome {
            Ok((circuit, report)) => {
                if warm_start {
                    self.arena_reuses.fetch_add(1, Ordering::Relaxed);
                }
                if let Some((fingerprint, key)) = key {
                    self.cache.insert(
                        fingerprint,
                        key,
                        Arc::new(CachedPreparation {
                            circuit: circuit.clone(),
                            report: report.clone(),
                        }),
                    );
                }
                self.jobs.fetch_add(1, Ordering::Relaxed);
                Ok(PrepareReport {
                    circuit,
                    report,
                    from_cache: false,
                    elapsed: Duration::default(),
                    queue_wait: Duration::default(),
                })
            }
            Err(error) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(error)
            }
        }
    }

    /// The loop of one persistent worker: pop, serve, reply, publish
    /// telemetry — until the scheduler signals exit.
    fn worker_loop(&self, slot: usize) {
        let mut preparer = match self.config.node_limit {
            Some(limit) => Preparer::new().with_node_limit(limit),
            None => Preparer::new(),
        };
        let slot = &self.workers[slot];
        // Last-seen weight-table counters of the worker's scratch arena.
        // Counters are cumulative within one arena but some pipeline paths
        // (e.g. approximating an unreduced tree) swap in a fresh arena, so
        // telemetry is published as per-job deltas instead of raw gauges.
        let mut seen = (0u64, 0u64);
        while let Some(job) = self.scheduler.pop() {
            let queue_wait = job.submitted_at.elapsed();
            let started = Instant::now();
            let mut outcome = self.serve(&mut preparer, &job.request);
            if let Ok(report) = &mut outcome {
                report.elapsed = started.elapsed();
                report.queue_wait = queue_wait;
            }
            // A dropped handle is not an error — the caller abandoned the
            // result, not the job.
            let _ = job.reply.send(outcome.map_err(EngineError::Prepare));
            if let Some(stats) = preparer.weight_stats() {
                let (lookups, insertions) = if stats.lookups >= seen.0 && stats.insertions >= seen.1
                {
                    (stats.lookups - seen.0, stats.insertions - seen.1)
                } else {
                    // The scratch arena was replaced this job; its
                    // counters restarted from zero.
                    (stats.lookups, stats.insertions)
                };
                seen = (stats.lookups, stats.insertions);
                slot.weight_lookups.fetch_add(lookups, Ordering::Relaxed);
                slot.weight_insertions
                    .fetch_add(insertions, Ordering::Relaxed);
            }
        }
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            jobs: self.jobs.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            weight_lookups: self
                .workers
                .iter()
                .map(|w| w.weight_lookups.load(Ordering::Relaxed))
                .sum(),
            weight_insertions: self
                .workers
                .iter()
                .map(|w| w.weight_insertions.load(Ordering::Relaxed))
                .sum(),
            arena_reuses: self.arena_reuses.load(Ordering::Relaxed),
            queued: self.scheduler.len(),
        }
    }
}

/// Scheduler kill switch armed for the duration of a worker's loop: runs
/// only when the worker is *unwinding*, so a panicking worker degrades the
/// service into clean `Shutdown` errors instead of hung handles.
struct AbortOnPanic<'a>(&'a ServiceShared);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.0.scheduler.abort();
        }
    }
}

/// A persistent, non-blocking preparation service; see the
/// [crate documentation](crate) for the architecture.
///
/// The worker pool is spawned once in [`EngineService::new`] and lives
/// until [`EngineService::shutdown`], [`EngineService::shutdown_now`] or
/// `Drop`. Submissions stream in through [`EngineService::submit`] /
/// [`EngineService::submit_batch`] and resolve through per-job
/// [`JobHandle`]s, scheduled by the configured
/// [`SchedulingPolicy`](crate::SchedulingPolicy).
///
/// # Examples
///
/// ```
/// use mdq_engine::{EngineConfig, EngineService, PrepareRequest, Priority};
/// use mdq_core::PrepareOptions;
/// use mdq_num::radix::Dims;
/// use mdq_states::ghz;
///
/// let service = EngineService::new(EngineConfig::default().with_workers(2));
/// let dims = Dims::new(vec![3, 3])?;
/// let handle = service.submit(
///     PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact())
///         .with_priority(Priority::High),
/// );
/// let report = handle.wait()?;
/// assert!(!report.circuit.is_empty());
/// service.shutdown(); // drains queued work, then joins the pool
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EngineService {
    shared: Arc<ServiceShared>,
    pool: Vec<JoinHandle<()>>,
}

impl EngineService {
    /// Spawns the worker pool (once — it persists across submissions) and
    /// returns the ready service.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(ServiceShared {
            scheduler: Scheduler::new(config.scheduling),
            cache: CircuitCache::with_capacity(config.cache_shards, config.cache_capacity),
            seq: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            arena_reuses: AtomicU64::new(0),
            workers: (0..workers).map(|_| WorkerSlot::default()).collect(),
            config,
        });
        let pool = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mdq-engine-worker-{slot}"))
                    .spawn(move || {
                        // If the loop unwinds, fail the whole service
                        // rather than hang it: aborting the scheduler
                        // resolves every queued (and future) handle to
                        // `Shutdown` instead of leaving callers blocked on
                        // a reply that will never come.
                        let abort_guard = AbortOnPanic(&shared);
                        shared.worker_loop(slot);
                        drop(abort_guard);
                    })
                    .expect("spawning engine worker")
            })
            .collect();
        EngineService { shared, pool }
    }

    /// A service with the default configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The service's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// The prepared-circuit cache (e.g. to pre-warm or clear it).
    #[must_use]
    pub fn cache(&self) -> &CircuitCache {
        &self.shared.cache
    }

    /// Aggregate counters, cumulative since construction.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.shared.stats()
    }

    /// Enqueues one request and returns immediately with its handle — the
    /// non-blocking front-end. The job runs when the scheduler picks it,
    /// ordered by [`Priority`](crate::Priority) / size under the default
    /// policy.
    pub fn submit(&self, request: PrepareRequest) -> JobHandle {
        let (reply, rx) = channel();
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.shared.scheduler.push(
            Job {
                request,
                submitted_at: Instant::now(),
                reply,
            },
            seq,
        );
        JobHandle::new(rx)
    }

    /// Enqueues a whole batch, returning one handle per request in the
    /// same order. Sugar for repeated [`EngineService::submit`] calls.
    pub fn submit_batch<I>(&self, requests: I) -> Vec<JobHandle>
    where
        I: IntoIterator<Item = PrepareRequest>,
    {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Graceful shutdown: stops accepting submissions, **drains** every
    /// queued job, then joins the worker pool. All outstanding handles
    /// resolve with their real results.
    pub fn shutdown(mut self) {
        self.shared.scheduler.close();
        self.join_pool();
    }

    /// Immediate shutdown: stops accepting submissions and **aborts** the
    /// queue — every still-queued job resolves to
    /// [`EngineError::Shutdown`]; jobs already running finish and deliver.
    /// This is also the `Drop` behaviour.
    pub fn shutdown_now(mut self) {
        self.shared.scheduler.abort();
        self.join_pool();
    }

    fn join_pool(&mut self) {
        let mut worker_panicked = false;
        for handle in self.pool.drain(..) {
            worker_panicked |= handle.join().is_err();
        }
        // Surface a worker panic to the caller — but never panic while
        // already unwinding (that would abort the process in `Drop`).
        if worker_panicked && !thread::panicking() {
            panic!("engine worker panicked");
        }
    }
}

impl Drop for EngineService {
    /// Dropping the service aborts queued jobs (handles resolve to
    /// [`EngineError::Shutdown`]) and joins the pool — never hangs on a
    /// deep queue, never leaks threads.
    fn drop(&mut self) {
        if !self.pool.is_empty() {
            self.shared.scheduler.abort();
            self.join_pool();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Priority;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;
    use mdq_states::{ghz, w_state};

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    #[test]
    fn submit_resolves_like_sequential_prepare() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(2));
        let requests = vec![
            PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact()),
            PrepareRequest::dense(d.clone(), w_state(&d), PrepareOptions::approximated(0.98))
                .with_priority(Priority::High),
            PrepareRequest::sparse(
                d.clone(),
                mdq_states::sparse::w_state(&d),
                PrepareOptions::exact(),
            )
            .with_priority(Priority::Low),
        ];
        let handles = service.submit_batch(requests.clone());
        for (request, handle) in requests.iter().zip(handles) {
            let report = handle.wait().expect("job succeeds");
            let want = request.prepare_sequential().expect("reference runs");
            assert_eq!(report.circuit, want.circuit);
        }
        assert_eq!(service.stats().jobs, 3);
        service.shutdown();
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let d = dims(&[3, 3]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let mut handle = service.submit(PrepareRequest::dense(
            d.clone(),
            ghz(&d),
            PrepareOptions::exact(),
        ));
        // Poll until resolution; try_wait never blocks.
        let deadline = Instant::now() + Duration::from_secs(30);
        while handle.try_wait().is_none() {
            assert!(Instant::now() < deadline, "job should resolve quickly");
            thread::yield_now();
        }
        // The retained result is observable repeatedly, then consumable.
        assert!(handle.try_wait().unwrap().is_ok());
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_some());
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn wait_timeout_times_out_then_resolves() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let mut handle = service.submit(PrepareRequest::dense(
            d.clone(),
            w_state(&d),
            PrepareOptions::exact(),
        ));
        // A zero timeout may or may not resolve; a generous one must.
        let _ = handle.wait_timeout(Duration::from_nanos(1));
        assert!(handle.wait_timeout(Duration::from_secs(30)).is_some());
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn pipeline_failures_surface_as_prepare_errors() {
        let d = dims(&[2, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1));
        let handle = service.submit(PrepareRequest::dense(
            d,
            vec![mdq_num::Complex::ONE],
            PrepareOptions::exact(),
        ));
        match handle.wait() {
            Err(EngineError::Prepare(PrepareError::Build(_))) => {}
            other => panic!("expected a build error, got {other:?}"),
        }
        assert_eq!(service.stats().failures, 1);
    }

    #[test]
    fn dropped_service_resolves_pending_handles_to_shutdown() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
        // Enough queued work that most of it is still pending at drop.
        let handles: Vec<JobHandle> = (0..16)
            .map(|_| {
                service.submit(PrepareRequest::dense(
                    d.clone(),
                    w_state(&d),
                    PrepareOptions::exact(),
                ))
            })
            .collect();
        drop(service);
        let mut shutdown = 0;
        for handle in handles {
            match handle.wait() {
                Ok(_) => {}
                Err(EngineError::Shutdown) => shutdown += 1,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(shutdown > 0, "queued jobs resolve to Shutdown on drop");
    }

    #[test]
    fn graceful_shutdown_drains_the_queue() {
        let d = dims(&[3, 6, 2]);
        let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
        let handles: Vec<JobHandle> = (0..8)
            .map(|_| {
                service.submit(PrepareRequest::dense(
                    d.clone(),
                    ghz(&d),
                    PrepareOptions::exact(),
                ))
            })
            .collect();
        service.shutdown();
        for handle in handles {
            assert!(handle.wait().is_ok(), "drained jobs deliver real results");
        }
    }

    #[test]
    fn workers_and_arenas_persist_across_submission_waves() {
        let d = dims(&[3, 6, 2]);
        // Cache off so every job runs the pipeline (cache hits would not
        // touch the arena).
        let service = EngineService::new(EngineConfig::default().with_workers(1).without_cache());
        let wave = |n: u64| -> Vec<JobHandle> {
            (0..n)
                .map(|_| {
                    // Canonical (zero-pruned) builds intern through the
                    // weight table, so lookups are visible telemetry.
                    service.submit(PrepareRequest::dense(
                        d.clone(),
                        w_state(&d),
                        PrepareOptions::exact().without_zero_subtrees(),
                    ))
                })
                .collect()
        };
        for handle in wave(4) {
            handle.wait().expect("wave-1 job succeeds");
        }
        let after_first = service.stats();
        assert_eq!(after_first.arena_reuses, 3, "3 of 4 wave-1 jobs warm");
        for handle in wave(4) {
            handle.wait().expect("wave-2 job succeeds");
        }
        let after_second = service.stats();
        // The first wave-2 job is *also* warm — the worker (and its arena)
        // survived between waves instead of being torn down.
        assert_eq!(after_second.arena_reuses, 7);
        assert!(after_second.weight_lookups > after_first.weight_lookups);
        service.shutdown();
    }
}
