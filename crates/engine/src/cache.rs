//! The fingerprint-keyed prepared-circuit cache.
//!
//! Every valid [`PrepareRequest`] is reduced to a *canonical key*: the
//! register dimensions, the deduplicated nonzero support of the target state
//! (exact amplitude bits), and every option that influences the synthesized
//! circuit or its report. The key is *fingerprinted* by hashing a
//! **tolerance-quantized** view of the amplitudes (each component snapped to
//! a grid of cell size `tolerance`), so numerically-adjacent requests land
//! in the same bucket; a stored entry is only *served*, however, when the
//! exact canonical keys match bit for bit. That split keeps the two promises
//! of the engine simultaneously: repeated requests are answered from cache,
//! and every answer is bit-identical to what a sequential [`prepare`] run
//! would have produced for that exact request.
//!
//! The store is sharded: each shard is an independently locked hash map, so
//! workers probing different fingerprints never contend on one lock.
//!
//! [`prepare`]: mdq_core::prepare

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mdq_circuit::Circuit;
use mdq_core::{Direction, ProductRule, SynthesisReport, VerificationReport};
use mdq_num::Complex;

use crate::request::{PrepareRequest, StatePayload};

/// Hit/miss/occupancy counters of a [`CircuitCache`].
///
/// All counters except `entries` are **cumulative** over the cache's
/// lifetime: they keep counting across [`CircuitCache::clear`] and only go
/// back to zero via [`CircuitCache::reset_stats`]. `entries` is **current**
/// occupancy, recounted on every [`CircuitCache::stats`] call; the
/// lock-free [`CircuitCache::stats_snapshot`] reads a maintained counter
/// instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (cumulative; includes hot-tier
    /// hits).
    pub hits: u64,
    /// Lookups that fell through to a full pipeline run (cumulative).
    pub misses: u64,
    /// Prepared circuits currently stored in the writable shards (current;
    /// does not count the read-only hot tier).
    pub entries: usize,
    /// Entries discarded by the per-shard LRU bound (cumulative; 0 on an
    /// unbounded cache).
    pub evictions: u64,
    /// Entries dropped because they outlived the cache TTL (cumulative; 0
    /// on a cache without a TTL).
    pub expirations: u64,
    /// The subset of `hits` answered by the shared read-mostly hot tier
    /// rather than a writable shard (cumulative).
    pub hot_hits: u64,
}

/// A cached preparation: the synthesized circuit, its metrics, and — when
/// the entry was produced by a verified job — the replay-verification
/// outcome, shared between the store and every report served from it.
#[derive(Debug)]
pub(crate) struct CachedPreparation {
    pub(crate) circuit: Circuit,
    pub(crate) report: SynthesisReport,
    /// `Some` iff the entry's circuit was replay-verified when it was
    /// computed. Requests that demand verification are only ever served
    /// entries where this is `Some` (see [`CircuitCache::get`]).
    pub(crate) verification: Option<VerificationReport>,
}

/// The canonical identity of a preparation request; see the
/// [module documentation](self).
///
/// Built (together with its fingerprint) by [`canonical_key`]; two requests
/// with equal keys are guaranteed to receive bit-identical circuits and
/// reports, so a key comparison is the engine's serve-from-cache test. The
/// fields are intentionally private: a key can only be obtained from a
/// request, which keeps the "equal key ⇒ identical result" invariant
/// unforgeable from outside the crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalKey {
    pub(crate) dims: Vec<usize>,
    /// Sorted, duplicate-summed, exact-zero-free support:
    /// `(flat index, re bits, im bits)`.
    pub(crate) support: Vec<(u64, u64, u64)>,
    pub(crate) options: OptionsKey,
}

/// The option fields that influence the synthesized circuit or its report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct OptionsKey {
    pub(crate) fidelity_threshold: Option<u64>,
    pub(crate) tolerance: u64,
    pub(crate) product_rule: u8,
    pub(crate) skip_identities: bool,
    pub(crate) direction: u8,
    pub(crate) reduce: bool,
    pub(crate) keep_zero_subtrees: bool,
}

/// 64-bit FNV-1a, written out because the build environment has no
/// registry access and `DefaultHasher`'s algorithm is explicitly
/// unspecified across Rust releases — fingerprints stay stable.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Snaps one amplitude component onto the tolerance grid. Saturating casts
/// keep the result deterministic for extreme magnitudes, and negative zero
/// folds onto zero so `0.0` and `-0.0` share a cell.
fn quantize(component: f64, cell: f64) -> i64 {
    let q = (component / cell).round();
    if q == 0.0 {
        0
    } else {
        q as i64
    }
}

/// Builds the canonical key and its quantized fingerprint for a request, or
/// `None` when the request is malformed (wrong length, digits out of range,
/// non-finite amplitudes, empty support) — such requests bypass the cache
/// and surface their error through the pipeline itself.
///
/// This is the single fingerprinting implementation shared by the cache,
/// the snapshot loader (which re-derives every stored record's fingerprint
/// instead of trusting the file), and the `mdq-router` consistent-hash
/// ring — so "the shard a request routes to" and "the bucket its circuit
/// is cached under" can never drift apart.
///
/// **Stability:** the fingerprint is a hand-rolled 64-bit FNV-1a over the
/// tolerance-quantized amplitude grid and the option fields — not
/// `DefaultHasher`, whose algorithm is explicitly unspecified — so the
/// value is stable across Rust releases, platforms, and process restarts.
/// It may only change with a deliberate format-version bump.
pub fn canonical_key(request: &PrepareRequest) -> Option<(u64, CanonicalKey)> {
    let dims = request.dims.as_slice().to_vec();
    let mut support: Vec<(u64, Complex)> = match &request.payload {
        StatePayload::Dense(amplitudes) => {
            if amplitudes.len() != request.dims.space_size() {
                return None;
            }
            amplitudes
                .iter()
                .enumerate()
                .filter(|(_, a)| !(a.re == 0.0 && a.im == 0.0))
                .map(|(i, a)| (i as u64, *a))
                .collect()
        }
        // The sparse form keys on the exact support the builder would build
        // from — one flattening implementation, shared with `from_sparse`.
        StatePayload::Sparse(entries) => mdq_dd::StateDd::canonical_sparse_support(
            &request.dims,
            entries,
            request.options.tolerance,
        )
        .ok()?
        .into_iter()
        .map(|(idx, amp)| (idx as u64, amp))
        .collect(),
    };
    if support.is_empty() || support.iter().any(|(_, a)| !a.is_finite()) {
        return None;
    }
    support.sort_by_key(|&(idx, _)| idx);

    let opts = &request.options;
    let options = OptionsKey {
        fidelity_threshold: opts.fidelity_threshold.map(f64::to_bits),
        tolerance: opts.tolerance.value().to_bits(),
        product_rule: match opts.synthesis.product_rule {
            ProductRule::Off => 0,
            ProductRule::SharedChild => 1,
            ProductRule::SharedChildOrSingle => 2,
        },
        skip_identities: opts.synthesis.skip_identities,
        direction: match opts.synthesis.direction {
            Direction::Prepare => 0,
            Direction::Disentangle => 1,
        },
        reduce: opts.reduce,
        // The *effective* flag: the sparse pipeline ignores
        // `keep_zero_subtrees` (the unreduced tree is exponential), so a
        // sparse request keys like `false`. With the flag off, dense and
        // sparse forms of one state produce identical diagrams, circuits
        // and reports and may share an entry; with it on, a dense request's
        // report has tree metrics and must not alias the sparse form.
        keep_zero_subtrees: opts.keep_zero_subtrees
            && matches!(request.payload, StatePayload::Dense(_)),
    };

    let key = CanonicalKey {
        dims,
        support: support
            .into_iter()
            .map(|(idx, a)| (idx, a.re.to_bits(), a.im.to_bits()))
            .collect(),
        options,
    };
    Some((fingerprint_of(&key), key))
}

/// Computes the tolerance-quantized fingerprint of a canonical key — the
/// exact value [`canonical_key`] pairs with that key. Snapshot loads call
/// this to **re-derive** each record's fingerprint from its parsed key
/// instead of trusting a value stored in the file, and the router hashes
/// it onto the shard ring.
///
/// Same stability guarantee as [`canonical_key`]: FNV-1a over quantized
/// bits, stable across Rust releases.
pub fn fingerprint_of(key: &CanonicalKey) -> u64 {
    let cell = f64::from_bits(key.options.tolerance).max(f64::MIN_POSITIVE);
    let mut fnv = Fnv::new();
    fnv.write_u64(key.dims.len() as u64);
    for &d in &key.dims {
        fnv.write_u64(d as u64);
    }
    for &(idx, re, im) in &key.support {
        fnv.write_u64(idx);
        fnv.write_u64(quantize(f64::from_bits(re), cell) as u64);
        fnv.write_u64(quantize(f64::from_bits(im), cell) as u64);
    }
    let options = &key.options;
    fnv.write_u64(options.fidelity_threshold.unwrap_or(u64::MAX ^ 1));
    fnv.write_u64(options.tolerance);
    fnv.write_u64(u64::from(options.product_rule));
    fnv.write_u64(u64::from(options.skip_identities));
    fnv.write_u64(u64::from(options.direction));
    fnv.write_u64(u64::from(options.reduce));
    fnv.write_u64(u64::from(options.keep_zero_subtrees));
    fnv.finish()
}

/// One stored preparation with its exact key and LRU stamp.
#[derive(Debug)]
struct Entry {
    key: CanonicalKey,
    value: Arc<CachedPreparation>,
    /// Shard tick of the last `get`/`insert` touching this entry — the
    /// LRU victim is the entry with the smallest stamp.
    last_used: u64,
    /// Wall-clock insertion epoch; against the cache TTL this bounds how
    /// long an entry may keep being served.
    inserted: Instant,
}

/// One independently locked shard: fingerprint → entries sharing that
/// fingerprint, plus the shard-local LRU clock.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Vec<Entry>>,
    /// Monotonic use counter stamping entries for LRU ordering.
    tick: u64,
    /// Entries stored in this shard (maintained, not recounted).
    len: usize,
}

impl Shard {
    /// Removes the least-recently-used entry of the whole shard. Linear in
    /// the shard size, which the entry bound keeps small by definition.
    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .flat_map(|(fp, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (e.last_used, *fp, i))
            })
            .min();
        if let Some((_, fingerprint, index)) = victim {
            let bucket = self.map.get_mut(&fingerprint).expect("victim bucket");
            bucket.remove(index);
            if bucket.is_empty() {
                self.map.remove(&fingerprint);
            }
            self.len -= 1;
        }
    }

    /// Drops every entry whose age at `now` has reached `ttl`, returning
    /// how many were removed.
    fn sweep_expired(&mut self, ttl: Duration, now: Instant) -> u64 {
        let mut dropped = 0u64;
        self.map.retain(|_, bucket| {
            bucket.retain(|entry| {
                let live = now.saturating_duration_since(entry.inserted) < ttl;
                if !live {
                    dropped += 1;
                }
                live
            });
            !bucket.is_empty()
        });
        self.len -= dropped as usize;
        dropped
    }
}

/// The sharded, fingerprint-keyed prepared-circuit store; see the
/// [module documentation](self).
#[derive(Debug)]
pub struct CircuitCache {
    shards: Vec<Mutex<Shard>>,
    /// Power-of-two mask selecting a shard from a fingerprint.
    mask: u64,
    /// Per-shard entry bound; `None` is unbounded.
    shard_capacity: Option<usize>,
    /// Maximum entry age; `None` means entries never expire.
    ttl: Option<Duration>,
    /// Shared read-mostly tier consulted on per-shard miss.
    hot: Option<Arc<HotTier>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    hot_hits: AtomicU64,
    /// Maintained mirror of the summed per-shard `len`s, updated under the
    /// owning shard's lock on every insert/evict/expire/clear — lets
    /// [`CircuitCache::stats_snapshot`] report occupancy without walking
    /// (and locking) every shard.
    entries: AtomicUsize,
}

impl CircuitCache {
    /// Creates an **unbounded** cache with (at least) `shards`
    /// independently locked shards; the count is rounded up to a power of
    /// two, minimum 1.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, None)
    }

    /// Creates a cache bounded to *about* `capacity` entries (`None` is
    /// unbounded). The bound is enforced per shard — `capacity` split
    /// evenly across shards, rounded up, minimum 1 entry per shard — so
    /// the effective total bound is `shards × ceil(capacity / shards)`,
    /// which can exceed `capacity` by up to one entry per shard. When a
    /// shard is full, its least-recently-used entry is evicted to admit
    /// the new one.
    #[must_use]
    pub fn with_capacity(shards: usize, capacity: Option<usize>) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shard_capacity = capacity.map(|c| c.max(1).div_ceil(count).max(1));
        CircuitCache {
            shards: (0..count).map(|_| Mutex::new(Shard::default())).collect(),
            mask: (count - 1) as u64,
            shard_capacity,
            ttl: None,
            hot: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
        }
    }

    /// Bounds the age of stored entries: an entry whose age reaches `ttl`
    /// stops being served and is dropped lazily — by the lookup that
    /// matches it, by the whole-shard sweep that runs before every insert's
    /// capacity check, or by an explicit [`CircuitCache::expire`]. `None`
    /// (the default) disables expiry. The shared hot tier is immutable and
    /// never expires — TTL governs the writable shards only.
    #[must_use]
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }

    /// Attaches a shared read-mostly [`HotTier`] consulted when a
    /// per-shard lookup misses, before the caller falls through to a full
    /// pipeline run. Several caches (one per engine instance) may share
    /// one tier — it is immutable, so lookups take no lock.
    #[must_use]
    pub fn with_hot_tier(mut self, tier: Option<Arc<HotTier>>) -> Self {
        self.hot = tier;
        self
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        // Fold the high bits in so the shard index is not just the low bits
        // already used as the hash-map key.
        &self.shards[((fingerprint >> 32 ^ fingerprint) & self.mask) as usize]
    }

    /// Looks up an exact key under its fingerprint, counting a hit or miss
    /// and refreshing the entry's LRU stamp on a hit.
    ///
    /// With `require_verified`, an entry without a verification report is
    /// *not* served (counted as a miss): a request that demands
    /// verification must never silently reuse an unverified entry — the
    /// caller re-runs the pipeline with verification and
    /// [`CircuitCache::insert`] upgrades the entry in place.
    pub(crate) fn get(
        &self,
        fingerprint: u64,
        key: &CanonicalKey,
        require_verified: bool,
    ) -> Option<Arc<CachedPreparation>> {
        let now = self.ttl.map(|_| Instant::now());
        let mut shard = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        // Expiry on the lookup path is O(1): only the entry this lookup
        // matches is age-checked. Whole-shard sweeps happen on insert and
        // on explicit `expire`.
        let mut expired = false;
        let found = shard.map.get_mut(&fingerprint).and_then(|bucket| {
            let index = bucket.iter().position(|e| {
                e.key == *key && !(require_verified && e.value.verification.is_none())
            })?;
            if let (Some(ttl), Some(now)) = (self.ttl, now) {
                if now.saturating_duration_since(bucket[index].inserted) >= ttl {
                    bucket.remove(index);
                    expired = true;
                    return None;
                }
            }
            let entry = &mut bucket[index];
            entry.last_used = tick;
            Some(Arc::clone(&entry.value))
        });
        if expired {
            shard.len -= 1;
            self.entries.fetch_sub(1, Ordering::Relaxed);
            if shard.map.get(&fingerprint).is_some_and(Vec::is_empty) {
                shard.map.remove(&fingerprint);
            }
        }
        drop(shard);
        if expired {
            self.expirations.fetch_add(1, Ordering::Relaxed);
        }
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        // Per-shard miss: consult the shared read-mostly tier before
        // reporting a miss to the pipeline.
        if let Some(hot) = &self.hot {
            if let Some(value) = hot.get(fingerprint, key, require_verified) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.hot_hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a preparation under its key, evicting the shard's
    /// least-recently-used entry first when the shard is at its bound. If
    /// another worker raced the same key in first, the existing entry wins
    /// (both are bit-identical by construction) — unless the new value is
    /// verified and the stored one is not, in which case the verified
    /// value replaces it so the verification outcome is retained.
    pub(crate) fn insert(
        &self,
        fingerprint: u64,
        key: CanonicalKey,
        value: Arc<CachedPreparation>,
    ) {
        let now = Instant::now();
        let mut shard = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned");
        // Lazy TTL sweep: expired entries are cleared before the
        // duplicate-key check (so a stale entry never blocks its own
        // replacement) and before the capacity check (so expiry frees
        // slots ahead of LRU eviction).
        if let Some(ttl) = self.ttl {
            let dropped = shard.sweep_expired(ttl, now);
            if dropped > 0 {
                self.expirations.fetch_add(dropped, Ordering::Relaxed);
                self.entries.fetch_sub(dropped as usize, Ordering::Relaxed);
            }
        }
        if let Some(existing) = shard
            .map
            .get_mut(&fingerprint)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.key == key))
        {
            if existing.value.verification.is_none() && value.verification.is_some() {
                existing.value = value;
                // The verified value was just computed — its age restarts.
                existing.inserted = now;
            }
            return;
        }
        if let Some(capacity) = self.shard_capacity {
            if shard.len >= capacity {
                shard.evict_lru();
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let last_used = shard.tick;
        shard.map.entry(fingerprint).or_default().push(Entry {
            key,
            value,
            last_used,
            inserted: now,
        });
        shard.len += 1;
        self.entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry whose age at `now` has reached the cache TTL,
    /// returning how many were removed; a no-op (returning 0) on a cache
    /// without a TTL. Complements the lazy per-access sweeps for callers
    /// that want expiry on their own schedule (e.g. a maintenance tick).
    pub fn expire(&self, now: Instant) -> u64 {
        let Some(ttl) = self.ttl else { return 0 };
        let mut total = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            total += shard.sweep_expired(ttl, now);
        }
        if total > 0 {
            self.expirations.fetch_add(total, Ordering::Relaxed);
            self.entries.fetch_sub(total as usize, Ordering::Relaxed);
        }
        total
    }

    /// Cache counters; see [`CacheStats`] for which are cumulative
    /// (`hits`, `misses`, `evictions`, `expirations`, `hot_hits`) and
    /// which are current (`entries`).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
        }
    }

    /// Lock-free point-in-time [`CacheStats`]: every field — including
    /// `entries`, which [`CircuitCache::stats`] recounts by locking each
    /// shard — is read from a maintained atomic, so an aggregator (the
    /// router polling every shard's engine) never contends with serving
    /// workers. The fields are loaded one by one, so counters mutated
    /// concurrently may be mutually inconsistent by a few operations;
    /// quiesced, it equals [`CircuitCache::stats`] exactly.
    #[must_use]
    pub fn stats_snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every cumulative counter (`hits`, `misses`, `evictions`,
    /// `expirations`, `hot_hits`); stored entries are untouched. Lets a
    /// warm-start benchmark separate snapshot-loaded hits from fresh ones.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.expirations.store(0, Ordering::Relaxed);
        self.hot_hits.store(0, Ordering::Relaxed);
    }

    /// Number of prepared circuits currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len)
            .sum()
    }

    /// Whether the cache holds no circuits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored circuit (counters are kept; use
    /// [`CircuitCache::reset_stats`] to zero them).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
            self.entries.fetch_sub(shard.len, Ordering::Relaxed);
            shard.len = 0;
        }
    }

    /// Clones out every stored entry with its fingerprint — the feed for
    /// [`CircuitCache::freeze`] and snapshot saves. Shards are drained one
    /// lock at a time, so concurrent inserts may or may not be included.
    pub(crate) fn export(&self) -> CacheEntries {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for (fp, bucket) in &shard.map {
                for entry in bucket {
                    out.push((*fp, entry.key.clone(), Arc::clone(&entry.value)));
                }
            }
        }
        out
    }

    /// Freezes the current contents into an immutable [`HotTier`] that
    /// other engine instances in the same process can share via
    /// [`CircuitCache::with_hot_tier`].
    #[must_use]
    pub fn freeze(&self) -> HotTier {
        HotTier::from_entries(self.export())
    }
}

/// `(fingerprint, key, value)` triples exchanged between the cache, the
/// [`HotTier`], and snapshot load/save.
pub(crate) type CacheEntries = Vec<(u64, CanonicalKey, Arc<CachedPreparation>)>;

/// An immutable, read-mostly preparation tier shared between engine
/// instances in one process.
///
/// The tier is consulted when a per-shard lookup misses, before the caller
/// falls back to running the pipeline. Because it is frozen at
/// construction, lookups take no lock and multiple caches can share one
/// `Arc<HotTier>` without write contention — the exchange mechanism for
/// hot entries between shards of a future front-end. Entries in the tier
/// never expire (the writable shards' TTL does not apply) and are served
/// under the same exact-key, `require_verified`-respecting rules as shard
/// entries, so the bit-identity guarantee is unchanged.
///
/// Build one with [`CircuitCache::freeze`] (from a live cache) or
/// [`crate::snapshot::load_hot_tier`] (from a snapshot file).
#[derive(Debug, Default)]
pub struct HotTier {
    map: HashMap<u64, Vec<(CanonicalKey, Arc<CachedPreparation>)>>,
    len: usize,
}

impl HotTier {
    /// Builds a tier from `(fingerprint, key, value)` triples; duplicate
    /// keys keep the first occurrence.
    pub(crate) fn from_entries(entries: CacheEntries) -> Self {
        let mut map: HashMap<u64, Vec<(CanonicalKey, Arc<CachedPreparation>)>> = HashMap::new();
        let mut len = 0;
        for (fingerprint, key, value) in entries {
            let bucket = map.entry(fingerprint).or_default();
            if bucket.iter().any(|entry| entry.0 == key) {
                continue;
            }
            bucket.push((key, value));
            len += 1;
        }
        HotTier { map, len }
    }

    /// Exact-key lookup under the same serving rules as
    /// [`CircuitCache::get`]; the tier keeps no counters of its own — the
    /// consulting cache counts the hit.
    pub(crate) fn get(
        &self,
        fingerprint: u64,
        key: &CanonicalKey,
        require_verified: bool,
    ) -> Option<Arc<CachedPreparation>> {
        self.map
            .get(&fingerprint)?
            .iter()
            .find(|entry| entry.0 == *key && !(require_verified && entry.1.verification.is_none()))
            .map(|entry| Arc::clone(&entry.1))
    }

    /// Number of preparations held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tier holds no preparations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn dense_request(amps: &[Complex]) -> PrepareRequest {
        PrepareRequest::dense(dims(&[2, 2]), amps.to_vec(), PrepareOptions::exact())
    }

    #[test]
    fn identical_requests_share_a_key() {
        let a = Complex::real(0.5);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[a, a, a, a]);
        assert_eq!(canonical_key(&r1), canonical_key(&r2));
    }

    #[test]
    fn different_states_get_different_fingerprints() {
        let a = Complex::real(0.5);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[a, a, a, -a]);
        let (f1, k1) = canonical_key(&r1).unwrap();
        let (f2, k2) = canonical_key(&r2).unwrap();
        assert_ne!(k1, k2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let a = Complex::real(0.5);
        let exact = dense_request(&[a, a, a, a]);
        let approx = PrepareRequest::dense(
            dims(&[2, 2]),
            vec![a, a, a, a],
            PrepareOptions::approximated(0.98),
        );
        assert_ne!(
            canonical_key(&exact).unwrap().1,
            canonical_key(&approx).unwrap().1
        );
    }

    #[test]
    fn dense_and_sparse_forms_of_a_state_share_a_key() {
        // With zero subtrees off, dense and sparse pipelines produce
        // identical diagrams, circuits and reports — sharing is safe.
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5f64.sqrt());
        let mut amps = vec![Complex::ZERO; 4];
        amps[d.index_of(&[0, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let opts = PrepareOptions::exact().without_zero_subtrees();
        let dense = PrepareRequest::dense(d.clone(), amps, opts);
        let sparse = PrepareRequest::sparse(d, vec![(vec![0, 0], a), (vec![1, 1], a)], opts);
        assert_eq!(canonical_key(&dense), canonical_key(&sparse));
    }

    #[test]
    fn keep_zero_subtrees_separates_dense_from_sparse_keys() {
        // `prepare` honors keep_zero_subtrees (tree metrics in the report),
        // `prepare_sparse` ignores it — the same state must therefore key
        // differently, or the served report would depend on which form was
        // computed first.
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5f64.sqrt());
        let mut amps = vec![Complex::ZERO; 4];
        amps[d.index_of(&[0, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let dense = PrepareRequest::dense(d.clone(), amps, PrepareOptions::exact());
        let sparse = PrepareRequest::sparse(
            d.clone(),
            vec![(vec![0, 0], a), (vec![1, 1], a)],
            PrepareOptions::exact(),
        );
        assert_ne!(
            canonical_key(&dense).unwrap().1,
            canonical_key(&sparse).unwrap().1
        );
        // A sparse request keys identically whether or not the (ignored)
        // flag is set.
        let sparse_flagless = PrepareRequest::sparse(
            d,
            vec![(vec![0, 0], a), (vec![1, 1], a)],
            PrepareOptions::exact().without_zero_subtrees(),
        );
        assert_eq!(canonical_key(&sparse), canonical_key(&sparse_flagless));
    }

    #[test]
    fn sparse_duplicates_are_summed_before_keying() {
        let d = dims(&[2, 2]);
        let h = Complex::real(0.5);
        let split = PrepareRequest::sparse(
            d.clone(),
            vec![(vec![0, 0], h), (vec![0, 0], h), (vec![1, 1], Complex::ONE)],
            PrepareOptions::exact(),
        );
        let summed = PrepareRequest::sparse(
            d,
            vec![(vec![0, 0], Complex::ONE), (vec![1, 1], Complex::ONE)],
            PrepareOptions::exact(),
        );
        assert_eq!(canonical_key(&split), canonical_key(&summed));
    }

    #[test]
    fn malformed_requests_bypass_the_cache() {
        let short =
            PrepareRequest::dense(dims(&[2, 2]), vec![Complex::ONE], PrepareOptions::exact());
        assert!(canonical_key(&short).is_none());
        let bad_digit = PrepareRequest::sparse(
            dims(&[2, 2]),
            vec![(vec![0, 5], Complex::ONE)],
            PrepareOptions::exact(),
        );
        assert!(canonical_key(&bad_digit).is_none());
        let nan = PrepareRequest::dense(
            dims(&[2]),
            vec![Complex::new(f64::NAN, 0.0), Complex::ONE],
            PrepareOptions::exact(),
        );
        assert!(canonical_key(&nan).is_none());
        let empty = PrepareRequest::sparse(dims(&[2, 2]), vec![], PrepareOptions::exact());
        assert!(canonical_key(&empty).is_none());
    }

    #[test]
    fn near_identical_requests_share_a_fingerprint_but_not_a_key() {
        // Within one tolerance cell: same bucket, different exact key — the
        // cache will *not* serve one request the other's circuit.
        let a = Complex::real(0.5);
        let b = Complex::new(0.5 + 1e-13, 0.0);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[b, a, a, a]);
        let (f1, k1) = canonical_key(&r1).unwrap();
        let (f2, k2) = canonical_key(&r2).unwrap();
        assert_eq!(f1, f2, "same tolerance cell fingerprints equal");
        assert_ne!(k1, k2, "exact keys still differ");
    }

    #[test]
    fn cache_round_trip_counts_hits_and_misses() {
        let cache = CircuitCache::new(4);
        let a = Complex::real(0.5);
        let req = dense_request(&[a, a, a, a]);
        let (fp, key) = canonical_key(&req).unwrap();
        assert!(cache.get(fp, &key, false).is_none());
        let prepared =
            mdq_core::prepare(&dims(&[2, 2]), &[a, a, a, a], PrepareOptions::exact()).unwrap();
        cache.insert(
            fp,
            key.clone(),
            Arc::new(CachedPreparation {
                circuit: prepared.circuit.clone(),
                report: prepared.report.clone(),
                verification: None,
            }),
        );
        let served = cache.get(fp, &key, false).expect("entry stored");
        assert_eq!(served.circuit, prepared.circuit);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(CircuitCache::new(0).shards.len(), 1);
        assert_eq!(CircuitCache::new(3).shards.len(), 4);
        assert_eq!(CircuitCache::new(16).shards.len(), 16);
    }

    /// A distinct single-qudit request per index, with a stable entry
    /// (shared with the `lru_model` proptest module).
    pub(super) fn keyed_entry(i: usize) -> (u64, CanonicalKey, Arc<CachedPreparation>) {
        let d = dims(&[2]);
        let theta = 0.1 + 0.7 * i as f64 / 10.0;
        let amps = vec![Complex::real(theta.cos()), Complex::real(theta.sin())];
        let request = PrepareRequest::dense(d.clone(), amps.clone(), PrepareOptions::exact());
        let (fp, key) = canonical_key(&request).unwrap();
        let prepared = mdq_core::prepare(&d, &amps, PrepareOptions::exact()).unwrap();
        (
            fp,
            key,
            Arc::new(CachedPreparation {
                circuit: prepared.circuit.clone(),
                report: prepared.report.clone(),
                verification: None,
            }),
        )
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        // One shard, two entries: inserting a third must evict the LRU.
        let cache = CircuitCache::with_capacity(1, Some(2));
        let (fp0, k0, v0) = keyed_entry(0);
        let (fp1, k1, v1) = keyed_entry(1);
        let (fp2, k2, v2) = keyed_entry(2);
        cache.insert(fp0, k0.clone(), v0);
        cache.insert(fp1, k1.clone(), v1);
        // Touch entry 0 so entry 1 becomes the LRU victim.
        assert!(cache.get(fp0, &k0, false).is_some());
        cache.insert(fp2, k2.clone(), v2);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "bound holds");
        assert_eq!(stats.evictions, 1, "one eviction counted");
        assert!(
            cache.get(fp0, &k0, false).is_some(),
            "recently used survives"
        );
        assert!(cache.get(fp2, &k2, false).is_some(), "new entry admitted");
        assert!(cache.get(fp1, &k1, false).is_none(), "LRU entry evicted");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = CircuitCache::new(1);
        for i in 0..8 {
            let (fp, key, value) = keyed_entry(i);
            cache.insert(fp, key, value);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn capacity_splits_across_shards_with_minimum_one() {
        let cache = CircuitCache::with_capacity(4, Some(2));
        assert_eq!(cache.shard_capacity, Some(1), "ceil(2/4) floored at 1");
        let unbounded = CircuitCache::with_capacity(4, None);
        assert_eq!(unbounded.shard_capacity, None);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = CircuitCache::with_capacity(1, Some(1));
        let (fp, key, value) = keyed_entry(0);
        cache.insert(fp, key.clone(), Arc::clone(&value));
        cache.insert(fp, key.clone(), value);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0, "duplicate insert is a no-op");
    }

    /// A `keyed_entry` with a verification report attached.
    fn verified_entry(i: usize) -> (u64, CanonicalKey, Arc<CachedPreparation>) {
        let (fp, key, value) = keyed_entry(i);
        (
            fp,
            key,
            Arc::new(CachedPreparation {
                circuit: value.circuit.clone(),
                report: value.report.clone(),
                verification: Some(VerificationReport {
                    fidelity: 1.0,
                    replay_nodes: 2,
                    duration: std::time::Duration::default(),
                }),
            }),
        )
    }

    #[test]
    fn verified_lookups_skip_unverified_entries() {
        let cache = CircuitCache::new(1);
        let (fp, key, unverified) = keyed_entry(0);
        cache.insert(fp, key.clone(), unverified);
        // An unverified serving sees the entry; a verified request must not.
        assert!(cache.get(fp, &key, false).is_some());
        assert!(cache.get(fp, &key, true).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "skip counts as miss");
    }

    #[test]
    fn reset_stats_zeroes_counters_but_keeps_entries() {
        let cache = CircuitCache::new(1);
        let (fp, key, value) = keyed_entry(0);
        cache.get(fp, &key, false);
        cache.insert(fp, key.clone(), value);
        cache.get(fp, &key, false);
        let before = cache.stats();
        assert_eq!((before.hits, before.misses), (1, 1));
        cache.reset_stats();
        let after = cache.stats();
        assert_eq!(
            (
                after.hits,
                after.misses,
                after.evictions,
                after.expirations,
                after.hot_hits
            ),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(after.entries, 1, "entries are current, not a counter");
        assert!(cache.get(fp, &key, false).is_some(), "entry still served");
    }

    #[test]
    fn zero_ttl_expires_entries_on_lookup() {
        // TTL 0 means every entry's age has already reached the bound —
        // the lookup that matches it drops it and reports a miss.
        let cache = CircuitCache::new(1).with_ttl(Some(Duration::ZERO));
        let (fp, key, value) = keyed_entry(0);
        cache.insert(fp, key.clone(), value);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(fp, &key, false).is_none(), "expired, not served");
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0, "expired entry was dropped");
    }

    #[test]
    fn insert_sweep_expires_before_lru_evicts() {
        // Capacity 1 + TTL 0: the second insert's sweep clears the stale
        // first entry, so the slot frees by *expiry*, never LRU eviction.
        let cache = CircuitCache::with_capacity(1, Some(1)).with_ttl(Some(Duration::ZERO));
        let (fp0, k0, v0) = keyed_entry(0);
        let (fp1, k1, v1) = keyed_entry(1);
        cache.insert(fp0, k0, v0);
        cache.insert(fp1, k1, v1);
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1, "stale entry expired by the sweep");
        assert_eq!(stats.evictions, 0, "LRU never had to fire");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn explicit_expire_sweeps_every_shard() {
        let cache = CircuitCache::new(4).with_ttl(Some(Duration::from_secs(60)));
        for i in 0..6 {
            let (fp, key, value) = keyed_entry(i);
            cache.insert(fp, key, value);
        }
        assert_eq!(cache.expire(Instant::now()), 0, "nothing is old yet");
        let later = Instant::now() + Duration::from_secs(120);
        assert_eq!(cache.expire(later), 6, "everything aged out");
        let stats = cache.stats();
        assert_eq!(stats.expirations, 6);
        assert!(cache.is_empty());
        // Without a TTL, expire is a no-op.
        let unbounded = CircuitCache::new(1);
        let (fp, key, value) = keyed_entry(0);
        unbounded.insert(fp, key, value);
        assert_eq!(
            unbounded.expire(Instant::now() + Duration::from_secs(3600)),
            0
        );
        assert_eq!(unbounded.len(), 1);
    }

    #[test]
    fn ttl_survives_a_fresh_entry() {
        // A generous TTL never expires a just-inserted entry.
        let cache = CircuitCache::new(1).with_ttl(Some(Duration::from_secs(3600)));
        let (fp, key, value) = keyed_entry(0);
        cache.insert(fp, key.clone(), value);
        assert!(cache.get(fp, &key, false).is_some());
        assert_eq!(cache.stats().expirations, 0);
    }

    #[test]
    fn hot_tier_serves_on_shard_miss() {
        // Freeze one cache's contents, share them with an empty cache.
        let source = CircuitCache::new(2);
        let (fp, key, value) = keyed_entry(0);
        source.insert(fp, key.clone(), value);
        let tier = Arc::new(source.freeze());
        assert_eq!(tier.len(), 1);
        assert!(!tier.is_empty());

        let cache = CircuitCache::new(2).with_hot_tier(Some(Arc::clone(&tier)));
        assert_eq!(cache.len(), 0, "hot tier is not shard occupancy");
        let served = cache.get(fp, &key, false).expect("served from the tier");
        assert_eq!(served.circuit, source.get(fp, &key, false).unwrap().circuit);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.hot_hits, 1);
        assert_eq!(stats.misses, 0);
        // A key the tier does not hold is still a miss.
        let (fp1, k1, _) = keyed_entry(1);
        assert!(cache.get(fp1, &k1, false).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn hot_tier_respects_require_verified() {
        let source = CircuitCache::new(1);
        let (fp, key, unverified) = keyed_entry(0);
        source.insert(fp, key.clone(), unverified);
        let (fp1, k1, verified) = verified_entry(1);
        source.insert(fp1, k1.clone(), verified);
        let cache = CircuitCache::new(1).with_hot_tier(Some(Arc::new(source.freeze())));
        assert!(cache.get(fp, &key, true).is_none(), "unverified not served");
        assert!(cache.get(fp1, &k1, true).is_some(), "verified entry served");
        let served = cache.get(fp1, &k1, true).unwrap();
        assert!(served.verification.is_some());
    }

    #[test]
    fn shard_hit_wins_over_hot_tier() {
        // When both tiers hold the key, the writable shard answers and the
        // hot-tier counter stays untouched.
        let source = CircuitCache::new(1);
        let (fp, key, value) = keyed_entry(0);
        source.insert(fp, key.clone(), Arc::clone(&value));
        let cache = CircuitCache::new(1).with_hot_tier(Some(Arc::new(source.freeze())));
        cache.insert(fp, key.clone(), value);
        assert!(cache.get(fp, &key, false).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.hot_hits, 0, "answered by the shard, not the tier");
    }

    #[test]
    fn fingerprint_of_matches_canonical_key() {
        let a = Complex::real(0.5);
        let request = dense_request(&[a, a, a, a]);
        let (fingerprint, key) = canonical_key(&request).unwrap();
        assert_eq!(fingerprint_of(&key), fingerprint);
    }

    #[test]
    fn stats_snapshot_matches_locked_stats_when_quiesced() {
        // Exercise every occupancy mutation path — insert, duplicate
        // insert, LRU eviction, TTL expiry (lookup + sweep + explicit),
        // clear — and check the maintained atomic agrees with the locked
        // recount after each.
        let cache = CircuitCache::with_capacity(1, Some(3)).with_ttl(Some(Duration::from_secs(60)));
        assert_eq!(cache.stats_snapshot(), cache.stats());
        for i in 0..5 {
            let (fp, key, value) = keyed_entry(i);
            cache.insert(fp, key.clone(), Arc::clone(&value));
            cache.insert(fp, key, value);
            assert_eq!(cache.stats_snapshot(), cache.stats());
        }
        assert_eq!(cache.stats_snapshot().evictions, 2);
        cache.expire(Instant::now() + Duration::from_secs(120));
        assert_eq!(cache.stats_snapshot(), cache.stats());
        assert_eq!(cache.stats_snapshot().entries, 0);
        let (fp, key, value) = keyed_entry(0);
        cache.insert(fp, key, value);
        cache.clear();
        assert_eq!(cache.stats_snapshot(), cache.stats());

        // The zero-TTL lookup drop path.
        let lazy = CircuitCache::new(1).with_ttl(Some(Duration::ZERO));
        let (fp, key, value) = keyed_entry(1);
        lazy.insert(fp, key.clone(), value);
        assert!(lazy.get(fp, &key, false).is_none());
        assert_eq!(lazy.stats_snapshot(), lazy.stats());
        assert_eq!(lazy.stats_snapshot().entries, 0);
    }

    #[test]
    fn verified_insert_upgrades_an_unverified_entry_in_place() {
        let cache = CircuitCache::new(1);
        let (fp, key, unverified) = keyed_entry(0);
        cache.insert(fp, key.clone(), unverified);
        let (_, _, verified) = verified_entry(0);
        cache.insert(fp, key.clone(), verified);
        assert_eq!(cache.len(), 1, "upgrade replaces, never duplicates");
        let served = cache.get(fp, &key, true).expect("entry now verified");
        assert!(served.verification.is_some());
        // The reverse never downgrades: an unverified insert over a
        // verified entry keeps the verification.
        let (_, _, plain) = keyed_entry(0);
        cache.insert(fp, key.clone(), plain);
        assert!(cache.get(fp, &key, true).is_some());
    }
}

/// Model-based property test of the per-shard LRU (satellite of the
/// admission-control PR): arbitrary insert/get sequences run against a
/// reference implementation tracking membership, stamps, hit/miss counts
/// and evictions — then every evicted key is reinserted and must replay
/// bit-identical.
#[cfg(test)]
mod lru_model {
    use super::tests::keyed_entry;
    use super::*;
    use proptest::prelude::*;

    /// Reference LRU over key indices — a `BTreeMap` from key index to
    /// last-used stamp — mirroring the cache's exact semantics: `get`
    /// restamps on hit; `insert` of a present key is a no-op; `insert` of
    /// a fresh key evicts the least-recently-stamped entry when at
    /// capacity.
    struct Model {
        capacity: usize,
        /// Key index → last-used stamp.
        entries: std::collections::BTreeMap<usize, u64>,
        clock: u64,
        hits: u64,
        misses: u64,
        evictions: u64,
    }

    impl Model {
        fn new(capacity: usize) -> Self {
            Model {
                capacity,
                entries: std::collections::BTreeMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }
        }

        fn get(&mut self, key: usize) -> bool {
            self.clock += 1;
            let clock = self.clock;
            if let Some(stamp) = self.entries.get_mut(&key) {
                *stamp = clock;
                self.hits += 1;
                true
            } else {
                self.misses += 1;
                false
            }
        }

        fn insert(&mut self, key: usize) {
            if self.entries.contains_key(&key) {
                return;
            }
            if self.entries.len() >= self.capacity {
                let victim = self
                    .entries
                    .iter()
                    .min_by_key(|(_, &stamp)| stamp)
                    .map(|(&k, _)| k)
                    .expect("capacity > 0");
                self.entries.remove(&victim);
                self.evictions += 1;
            }
            self.clock += 1;
            self.entries.insert(key, self.clock);
        }

        fn contains(&self, key: usize) -> bool {
            self.entries.contains_key(&key)
        }
    }

    const KEYS: usize = 6;
    const CAPACITY: usize = 3;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The cache's LRU agrees with the reference model on membership,
        /// hit/miss/eviction counts and the capacity bound after every
        /// operation, and evicted-then-reinserted entries still replay the
        /// bit-identical circuit.
        #[test]
        fn prop_lru_matches_reference_model(
            ops in proptest::collection::vec((0u8..2, 0usize..KEYS), 1..40)
        ) {
            // One shard so the model's global LRU is the cache's LRU.
            let cache = CircuitCache::with_capacity(1, Some(CAPACITY));
            let mut model = Model::new(CAPACITY);
            let entries: Vec<_> = (0..KEYS).map(keyed_entry).collect();
            for &(op, key_index) in &ops {
                let (fp, key, value) = &entries[key_index];
                if op == 0 {
                    let served = cache.get(*fp, key, false);
                    let expected = model.get(key_index);
                    prop_assert_eq!(served.is_some(), expected);
                    if let Some(served) = served {
                        prop_assert_eq!(&served.circuit, &value.circuit);
                    }
                } else {
                    cache.insert(*fp, key.clone(), Arc::clone(value));
                    model.insert(key_index);
                }
                let stats = cache.stats();
                prop_assert!(stats.entries <= CAPACITY, "capacity never exceeded");
                prop_assert_eq!(stats.entries, model.entries.len());
                prop_assert_eq!(stats.evictions, model.evictions);
                prop_assert_eq!(stats.hits, model.hits);
                prop_assert_eq!(stats.misses, model.misses);
            }
            // Every evicted key, reinserted, must replay bit-identical to
            // the circuit originally prepared for it.
            for (key_index, (fp, key, value)) in entries.iter().enumerate() {
                if !model.contains(key_index) {
                    cache.insert(*fp, key.clone(), Arc::clone(value));
                    let served = cache
                        .get(*fp, key, false)
                        .expect("reinserted entry is served");
                    prop_assert_eq!(&served.circuit, &value.circuit);
                }
            }
        }
    }
}
