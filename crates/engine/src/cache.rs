//! The fingerprint-keyed prepared-circuit cache.
//!
//! Every valid [`PrepareRequest`] is reduced to a *canonical key*: the
//! register dimensions, the deduplicated nonzero support of the target state
//! (exact amplitude bits), and every option that influences the synthesized
//! circuit or its report. The key is *fingerprinted* by hashing a
//! **tolerance-quantized** view of the amplitudes (each component snapped to
//! a grid of cell size `tolerance`), so numerically-adjacent requests land
//! in the same bucket; a stored entry is only *served*, however, when the
//! exact canonical keys match bit for bit. That split keeps the two promises
//! of the engine simultaneously: repeated requests are answered from cache,
//! and every answer is bit-identical to what a sequential [`prepare`] run
//! would have produced for that exact request.
//!
//! The store is sharded: each shard is an independently locked hash map, so
//! workers probing different fingerprints never contend on one lock.
//!
//! [`prepare`]: mdq_core::prepare

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mdq_circuit::Circuit;
use mdq_core::{Direction, ProductRule, SynthesisReport};
use mdq_num::Complex;

use crate::request::{PrepareRequest, StatePayload};

/// Hit/miss/occupancy counters of a [`CircuitCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a full pipeline run.
    pub misses: u64,
    /// Prepared circuits currently stored.
    pub entries: usize,
}

/// A cached preparation: the synthesized circuit and its metrics, shared
/// between the store and every report served from it.
#[derive(Debug)]
pub(crate) struct CachedPreparation {
    pub(crate) circuit: Circuit,
    pub(crate) report: SynthesisReport,
}

/// The canonical identity of a preparation request; see the
/// [module documentation](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CanonicalKey {
    dims: Vec<usize>,
    /// Sorted, duplicate-summed, exact-zero-free support:
    /// `(flat index, re bits, im bits)`.
    support: Vec<(u64, u64, u64)>,
    options: OptionsKey,
}

/// The option fields that influence the synthesized circuit or its report.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OptionsKey {
    fidelity_threshold: Option<u64>,
    tolerance: u64,
    product_rule: u8,
    skip_identities: bool,
    direction: u8,
    reduce: bool,
    keep_zero_subtrees: bool,
}

/// 64-bit FNV-1a, written out because the build environment has no
/// registry access and `DefaultHasher`'s algorithm is explicitly
/// unspecified across Rust releases — fingerprints stay stable.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Snaps one amplitude component onto the tolerance grid. Saturating casts
/// keep the result deterministic for extreme magnitudes, and negative zero
/// folds onto zero so `0.0` and `-0.0` share a cell.
fn quantize(component: f64, cell: f64) -> i64 {
    let q = (component / cell).round();
    if q == 0.0 {
        0
    } else {
        q as i64
    }
}

/// Builds the canonical key and its quantized fingerprint for a request, or
/// `None` when the request is malformed (wrong length, digits out of range,
/// non-finite amplitudes, empty support) — such requests bypass the cache
/// and surface their error through the pipeline itself.
pub(crate) fn canonical_key(request: &PrepareRequest) -> Option<(u64, CanonicalKey)> {
    let dims = request.dims.as_slice().to_vec();
    let mut support: Vec<(u64, Complex)> = match &request.payload {
        StatePayload::Dense(amplitudes) => {
            if amplitudes.len() != request.dims.space_size() {
                return None;
            }
            amplitudes
                .iter()
                .enumerate()
                .filter(|(_, a)| !(a.re == 0.0 && a.im == 0.0))
                .map(|(i, a)| (i as u64, *a))
                .collect()
        }
        // The sparse form keys on the exact support the builder would build
        // from — one flattening implementation, shared with `from_sparse`.
        StatePayload::Sparse(entries) => mdq_dd::StateDd::canonical_sparse_support(
            &request.dims,
            entries,
            request.options.tolerance,
        )
        .ok()?
        .into_iter()
        .map(|(idx, amp)| (idx as u64, amp))
        .collect(),
    };
    if support.is_empty() || support.iter().any(|(_, a)| !a.is_finite()) {
        return None;
    }
    support.sort_by_key(|&(idx, _)| idx);

    let opts = &request.options;
    let options = OptionsKey {
        fidelity_threshold: opts.fidelity_threshold.map(f64::to_bits),
        tolerance: opts.tolerance.value().to_bits(),
        product_rule: match opts.synthesis.product_rule {
            ProductRule::Off => 0,
            ProductRule::SharedChild => 1,
            ProductRule::SharedChildOrSingle => 2,
        },
        skip_identities: opts.synthesis.skip_identities,
        direction: match opts.synthesis.direction {
            Direction::Prepare => 0,
            Direction::Disentangle => 1,
        },
        reduce: opts.reduce,
        // The *effective* flag: the sparse pipeline ignores
        // `keep_zero_subtrees` (the unreduced tree is exponential), so a
        // sparse request keys like `false`. With the flag off, dense and
        // sparse forms of one state produce identical diagrams, circuits
        // and reports and may share an entry; with it on, a dense request's
        // report has tree metrics and must not alias the sparse form.
        keep_zero_subtrees: opts.keep_zero_subtrees
            && matches!(request.payload, StatePayload::Dense(_)),
    };

    // Fingerprint over the tolerance-quantized view.
    let cell = opts.tolerance.value().max(f64::MIN_POSITIVE);
    let mut fnv = Fnv::new();
    fnv.write_u64(dims.len() as u64);
    for &d in &dims {
        fnv.write_u64(d as u64);
    }
    for &(idx, a) in &support {
        fnv.write_u64(idx);
        fnv.write_u64(quantize(a.re, cell) as u64);
        fnv.write_u64(quantize(a.im, cell) as u64);
    }
    fnv.write_u64(options.fidelity_threshold.unwrap_or(u64::MAX ^ 1));
    fnv.write_u64(options.tolerance);
    fnv.write_u64(u64::from(options.product_rule));
    fnv.write_u64(u64::from(options.skip_identities));
    fnv.write_u64(u64::from(options.direction));
    fnv.write_u64(u64::from(options.reduce));
    fnv.write_u64(u64::from(options.keep_zero_subtrees));

    let key = CanonicalKey {
        dims,
        support: support
            .into_iter()
            .map(|(idx, a)| (idx, a.re.to_bits(), a.im.to_bits()))
            .collect(),
        options,
    };
    Some((fnv.finish(), key))
}

/// One fingerprint bucket: the exact keys sharing the fingerprint, each
/// with its cached preparation.
type Bucket = Vec<(CanonicalKey, Arc<CachedPreparation>)>;

/// The sharded, fingerprint-keyed prepared-circuit store; see the
/// [module documentation](self).
#[derive(Debug)]
pub struct CircuitCache {
    shards: Vec<Mutex<HashMap<u64, Bucket>>>,
    /// Power-of-two mask selecting a shard from a fingerprint.
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CircuitCache {
    /// Creates a cache with (at least) `shards` independently locked shards;
    /// the count is rounded up to a power of two, minimum 1.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        CircuitCache {
            shards: (0..count).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (count - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<HashMap<u64, Bucket>> {
        // Fold the high bits in so the shard index is not just the low bits
        // already used as the hash-map key.
        &self.shards[((fingerprint >> 32 ^ fingerprint) & self.mask) as usize]
    }

    /// Looks up an exact key under its fingerprint, counting a hit or miss.
    pub(crate) fn get(
        &self,
        fingerprint: u64,
        key: &CanonicalKey,
    ) -> Option<Arc<CachedPreparation>> {
        let shard = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned");
        let found = shard
            .get(&fingerprint)
            .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
            .map(|(_, v)| Arc::clone(v));
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a preparation under its key. If another worker raced the same
    /// key in first, the existing entry wins (both are bit-identical by
    /// construction).
    pub(crate) fn insert(
        &self,
        fingerprint: u64,
        key: CanonicalKey,
        value: Arc<CachedPreparation>,
    ) {
        let mut shard = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned");
        let bucket = shard.entry(fingerprint).or_default();
        if bucket.iter().all(|(k, _)| *k != key) {
            bucket.push((key, value));
        }
    }

    /// Hit/miss/occupancy counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Number of prepared circuits currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the cache holds no circuits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored circuit (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn dense_request(amps: &[Complex]) -> PrepareRequest {
        PrepareRequest::dense(dims(&[2, 2]), amps.to_vec(), PrepareOptions::exact())
    }

    #[test]
    fn identical_requests_share_a_key() {
        let a = Complex::real(0.5);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[a, a, a, a]);
        assert_eq!(canonical_key(&r1), canonical_key(&r2));
    }

    #[test]
    fn different_states_get_different_fingerprints() {
        let a = Complex::real(0.5);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[a, a, a, -a]);
        let (f1, k1) = canonical_key(&r1).unwrap();
        let (f2, k2) = canonical_key(&r2).unwrap();
        assert_ne!(k1, k2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let a = Complex::real(0.5);
        let exact = dense_request(&[a, a, a, a]);
        let approx = PrepareRequest::dense(
            dims(&[2, 2]),
            vec![a, a, a, a],
            PrepareOptions::approximated(0.98),
        );
        assert_ne!(
            canonical_key(&exact).unwrap().1,
            canonical_key(&approx).unwrap().1
        );
    }

    #[test]
    fn dense_and_sparse_forms_of_a_state_share_a_key() {
        // With zero subtrees off, dense and sparse pipelines produce
        // identical diagrams, circuits and reports — sharing is safe.
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5f64.sqrt());
        let mut amps = vec![Complex::ZERO; 4];
        amps[d.index_of(&[0, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let opts = PrepareOptions::exact().without_zero_subtrees();
        let dense = PrepareRequest::dense(d.clone(), amps, opts);
        let sparse = PrepareRequest::sparse(d, vec![(vec![0, 0], a), (vec![1, 1], a)], opts);
        assert_eq!(canonical_key(&dense), canonical_key(&sparse));
    }

    #[test]
    fn keep_zero_subtrees_separates_dense_from_sparse_keys() {
        // `prepare` honors keep_zero_subtrees (tree metrics in the report),
        // `prepare_sparse` ignores it — the same state must therefore key
        // differently, or the served report would depend on which form was
        // computed first.
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5f64.sqrt());
        let mut amps = vec![Complex::ZERO; 4];
        amps[d.index_of(&[0, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let dense = PrepareRequest::dense(d.clone(), amps, PrepareOptions::exact());
        let sparse = PrepareRequest::sparse(
            d.clone(),
            vec![(vec![0, 0], a), (vec![1, 1], a)],
            PrepareOptions::exact(),
        );
        assert_ne!(
            canonical_key(&dense).unwrap().1,
            canonical_key(&sparse).unwrap().1
        );
        // A sparse request keys identically whether or not the (ignored)
        // flag is set.
        let sparse_flagless = PrepareRequest::sparse(
            d,
            vec![(vec![0, 0], a), (vec![1, 1], a)],
            PrepareOptions::exact().without_zero_subtrees(),
        );
        assert_eq!(canonical_key(&sparse), canonical_key(&sparse_flagless));
    }

    #[test]
    fn sparse_duplicates_are_summed_before_keying() {
        let d = dims(&[2, 2]);
        let h = Complex::real(0.5);
        let split = PrepareRequest::sparse(
            d.clone(),
            vec![(vec![0, 0], h), (vec![0, 0], h), (vec![1, 1], Complex::ONE)],
            PrepareOptions::exact(),
        );
        let summed = PrepareRequest::sparse(
            d,
            vec![(vec![0, 0], Complex::ONE), (vec![1, 1], Complex::ONE)],
            PrepareOptions::exact(),
        );
        assert_eq!(canonical_key(&split), canonical_key(&summed));
    }

    #[test]
    fn malformed_requests_bypass_the_cache() {
        let short =
            PrepareRequest::dense(dims(&[2, 2]), vec![Complex::ONE], PrepareOptions::exact());
        assert!(canonical_key(&short).is_none());
        let bad_digit = PrepareRequest::sparse(
            dims(&[2, 2]),
            vec![(vec![0, 5], Complex::ONE)],
            PrepareOptions::exact(),
        );
        assert!(canonical_key(&bad_digit).is_none());
        let nan = PrepareRequest::dense(
            dims(&[2]),
            vec![Complex::new(f64::NAN, 0.0), Complex::ONE],
            PrepareOptions::exact(),
        );
        assert!(canonical_key(&nan).is_none());
        let empty = PrepareRequest::sparse(dims(&[2, 2]), vec![], PrepareOptions::exact());
        assert!(canonical_key(&empty).is_none());
    }

    #[test]
    fn near_identical_requests_share_a_fingerprint_but_not_a_key() {
        // Within one tolerance cell: same bucket, different exact key — the
        // cache will *not* serve one request the other's circuit.
        let a = Complex::real(0.5);
        let b = Complex::new(0.5 + 1e-13, 0.0);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[b, a, a, a]);
        let (f1, k1) = canonical_key(&r1).unwrap();
        let (f2, k2) = canonical_key(&r2).unwrap();
        assert_eq!(f1, f2, "same tolerance cell fingerprints equal");
        assert_ne!(k1, k2, "exact keys still differ");
    }

    #[test]
    fn cache_round_trip_counts_hits_and_misses() {
        let cache = CircuitCache::new(4);
        let a = Complex::real(0.5);
        let req = dense_request(&[a, a, a, a]);
        let (fp, key) = canonical_key(&req).unwrap();
        assert!(cache.get(fp, &key).is_none());
        let prepared =
            mdq_core::prepare(&dims(&[2, 2]), &[a, a, a, a], PrepareOptions::exact()).unwrap();
        cache.insert(
            fp,
            key.clone(),
            Arc::new(CachedPreparation {
                circuit: prepared.circuit.clone(),
                report: prepared.report.clone(),
            }),
        );
        let served = cache.get(fp, &key).expect("entry stored");
        assert_eq!(served.circuit, prepared.circuit);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(CircuitCache::new(0).shards.len(), 1);
        assert_eq!(CircuitCache::new(3).shards.len(), 4);
        assert_eq!(CircuitCache::new(16).shards.len(), 16);
    }
}
