//! The fingerprint-keyed prepared-circuit cache.
//!
//! Every valid [`PrepareRequest`] is reduced to a *canonical key*: the
//! register dimensions, the deduplicated nonzero support of the target state
//! (exact amplitude bits), and every option that influences the synthesized
//! circuit or its report. The key is *fingerprinted* by hashing a
//! **tolerance-quantized** view of the amplitudes (each component snapped to
//! a grid of cell size `tolerance`), so numerically-adjacent requests land
//! in the same bucket; a stored entry is only *served*, however, when the
//! exact canonical keys match bit for bit. That split keeps the two promises
//! of the engine simultaneously: repeated requests are answered from cache,
//! and every answer is bit-identical to what a sequential [`prepare`] run
//! would have produced for that exact request.
//!
//! The store is sharded: each shard is an independently locked hash map, so
//! workers probing different fingerprints never contend on one lock.
//!
//! [`prepare`]: mdq_core::prepare

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mdq_circuit::Circuit;
use mdq_core::{Direction, ProductRule, SynthesisReport, VerificationReport};
use mdq_num::Complex;

use crate::request::{PrepareRequest, StatePayload};

/// Hit/miss/occupancy counters of a [`CircuitCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a full pipeline run.
    pub misses: u64,
    /// Prepared circuits currently stored.
    pub entries: usize,
    /// Entries discarded by the per-shard LRU bound (0 on an unbounded
    /// cache).
    pub evictions: u64,
}

/// A cached preparation: the synthesized circuit, its metrics, and — when
/// the entry was produced by a verified job — the replay-verification
/// outcome, shared between the store and every report served from it.
#[derive(Debug)]
pub(crate) struct CachedPreparation {
    pub(crate) circuit: Circuit,
    pub(crate) report: SynthesisReport,
    /// `Some` iff the entry's circuit was replay-verified when it was
    /// computed. Requests that demand verification are only ever served
    /// entries where this is `Some` (see [`CircuitCache::get`]).
    pub(crate) verification: Option<VerificationReport>,
}

/// The canonical identity of a preparation request; see the
/// [module documentation](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CanonicalKey {
    dims: Vec<usize>,
    /// Sorted, duplicate-summed, exact-zero-free support:
    /// `(flat index, re bits, im bits)`.
    support: Vec<(u64, u64, u64)>,
    options: OptionsKey,
}

/// The option fields that influence the synthesized circuit or its report.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OptionsKey {
    fidelity_threshold: Option<u64>,
    tolerance: u64,
    product_rule: u8,
    skip_identities: bool,
    direction: u8,
    reduce: bool,
    keep_zero_subtrees: bool,
}

/// 64-bit FNV-1a, written out because the build environment has no
/// registry access and `DefaultHasher`'s algorithm is explicitly
/// unspecified across Rust releases — fingerprints stay stable.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Snaps one amplitude component onto the tolerance grid. Saturating casts
/// keep the result deterministic for extreme magnitudes, and negative zero
/// folds onto zero so `0.0` and `-0.0` share a cell.
fn quantize(component: f64, cell: f64) -> i64 {
    let q = (component / cell).round();
    if q == 0.0 {
        0
    } else {
        q as i64
    }
}

/// Builds the canonical key and its quantized fingerprint for a request, or
/// `None` when the request is malformed (wrong length, digits out of range,
/// non-finite amplitudes, empty support) — such requests bypass the cache
/// and surface their error through the pipeline itself.
pub(crate) fn canonical_key(request: &PrepareRequest) -> Option<(u64, CanonicalKey)> {
    let dims = request.dims.as_slice().to_vec();
    let mut support: Vec<(u64, Complex)> = match &request.payload {
        StatePayload::Dense(amplitudes) => {
            if amplitudes.len() != request.dims.space_size() {
                return None;
            }
            amplitudes
                .iter()
                .enumerate()
                .filter(|(_, a)| !(a.re == 0.0 && a.im == 0.0))
                .map(|(i, a)| (i as u64, *a))
                .collect()
        }
        // The sparse form keys on the exact support the builder would build
        // from — one flattening implementation, shared with `from_sparse`.
        StatePayload::Sparse(entries) => mdq_dd::StateDd::canonical_sparse_support(
            &request.dims,
            entries,
            request.options.tolerance,
        )
        .ok()?
        .into_iter()
        .map(|(idx, amp)| (idx as u64, amp))
        .collect(),
    };
    if support.is_empty() || support.iter().any(|(_, a)| !a.is_finite()) {
        return None;
    }
    support.sort_by_key(|&(idx, _)| idx);

    let opts = &request.options;
    let options = OptionsKey {
        fidelity_threshold: opts.fidelity_threshold.map(f64::to_bits),
        tolerance: opts.tolerance.value().to_bits(),
        product_rule: match opts.synthesis.product_rule {
            ProductRule::Off => 0,
            ProductRule::SharedChild => 1,
            ProductRule::SharedChildOrSingle => 2,
        },
        skip_identities: opts.synthesis.skip_identities,
        direction: match opts.synthesis.direction {
            Direction::Prepare => 0,
            Direction::Disentangle => 1,
        },
        reduce: opts.reduce,
        // The *effective* flag: the sparse pipeline ignores
        // `keep_zero_subtrees` (the unreduced tree is exponential), so a
        // sparse request keys like `false`. With the flag off, dense and
        // sparse forms of one state produce identical diagrams, circuits
        // and reports and may share an entry; with it on, a dense request's
        // report has tree metrics and must not alias the sparse form.
        keep_zero_subtrees: opts.keep_zero_subtrees
            && matches!(request.payload, StatePayload::Dense(_)),
    };

    // Fingerprint over the tolerance-quantized view.
    let cell = opts.tolerance.value().max(f64::MIN_POSITIVE);
    let mut fnv = Fnv::new();
    fnv.write_u64(dims.len() as u64);
    for &d in &dims {
        fnv.write_u64(d as u64);
    }
    for &(idx, a) in &support {
        fnv.write_u64(idx);
        fnv.write_u64(quantize(a.re, cell) as u64);
        fnv.write_u64(quantize(a.im, cell) as u64);
    }
    fnv.write_u64(options.fidelity_threshold.unwrap_or(u64::MAX ^ 1));
    fnv.write_u64(options.tolerance);
    fnv.write_u64(u64::from(options.product_rule));
    fnv.write_u64(u64::from(options.skip_identities));
    fnv.write_u64(u64::from(options.direction));
    fnv.write_u64(u64::from(options.reduce));
    fnv.write_u64(u64::from(options.keep_zero_subtrees));

    let key = CanonicalKey {
        dims,
        support: support
            .into_iter()
            .map(|(idx, a)| (idx, a.re.to_bits(), a.im.to_bits()))
            .collect(),
        options,
    };
    Some((fnv.finish(), key))
}

/// One stored preparation with its exact key and LRU stamp.
#[derive(Debug)]
struct Entry {
    key: CanonicalKey,
    value: Arc<CachedPreparation>,
    /// Shard tick of the last `get`/`insert` touching this entry — the
    /// LRU victim is the entry with the smallest stamp.
    last_used: u64,
}

/// One independently locked shard: fingerprint → entries sharing that
/// fingerprint, plus the shard-local LRU clock.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Vec<Entry>>,
    /// Monotonic use counter stamping entries for LRU ordering.
    tick: u64,
    /// Entries stored in this shard (maintained, not recounted).
    len: usize,
}

impl Shard {
    /// Removes the least-recently-used entry of the whole shard. Linear in
    /// the shard size, which the entry bound keeps small by definition.
    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .flat_map(|(fp, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (e.last_used, *fp, i))
            })
            .min();
        if let Some((_, fingerprint, index)) = victim {
            let bucket = self.map.get_mut(&fingerprint).expect("victim bucket");
            bucket.remove(index);
            if bucket.is_empty() {
                self.map.remove(&fingerprint);
            }
            self.len -= 1;
        }
    }
}

/// The sharded, fingerprint-keyed prepared-circuit store; see the
/// [module documentation](self).
#[derive(Debug)]
pub struct CircuitCache {
    shards: Vec<Mutex<Shard>>,
    /// Power-of-two mask selecting a shard from a fingerprint.
    mask: u64,
    /// Per-shard entry bound; `None` is unbounded.
    shard_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CircuitCache {
    /// Creates an **unbounded** cache with (at least) `shards`
    /// independently locked shards; the count is rounded up to a power of
    /// two, minimum 1.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, None)
    }

    /// Creates a cache bounded to *about* `capacity` entries (`None` is
    /// unbounded). The bound is enforced per shard — `capacity` split
    /// evenly across shards, rounded up, minimum 1 entry per shard — so
    /// the effective total bound is `shards × ceil(capacity / shards)`,
    /// which can exceed `capacity` by up to one entry per shard. When a
    /// shard is full, its least-recently-used entry is evicted to admit
    /// the new one.
    #[must_use]
    pub fn with_capacity(shards: usize, capacity: Option<usize>) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shard_capacity = capacity.map(|c| c.max(1).div_ceil(count).max(1));
        CircuitCache {
            shards: (0..count).map(|_| Mutex::new(Shard::default())).collect(),
            mask: (count - 1) as u64,
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        // Fold the high bits in so the shard index is not just the low bits
        // already used as the hash-map key.
        &self.shards[((fingerprint >> 32 ^ fingerprint) & self.mask) as usize]
    }

    /// Looks up an exact key under its fingerprint, counting a hit or miss
    /// and refreshing the entry's LRU stamp on a hit.
    ///
    /// With `require_verified`, an entry without a verification report is
    /// *not* served (counted as a miss): a request that demands
    /// verification must never silently reuse an unverified entry — the
    /// caller re-runs the pipeline with verification and
    /// [`CircuitCache::insert`] upgrades the entry in place.
    pub(crate) fn get(
        &self,
        fingerprint: u64,
        key: &CanonicalKey,
        require_verified: bool,
    ) -> Option<Arc<CachedPreparation>> {
        let mut shard = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let found = shard
            .map
            .get_mut(&fingerprint)
            .and_then(|bucket| {
                bucket.iter_mut().find(|e| {
                    e.key == *key && !(require_verified && e.value.verification.is_none())
                })
            })
            .map(|entry| {
                entry.last_used = tick;
                Arc::clone(&entry.value)
            });
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a preparation under its key, evicting the shard's
    /// least-recently-used entry first when the shard is at its bound. If
    /// another worker raced the same key in first, the existing entry wins
    /// (both are bit-identical by construction) — unless the new value is
    /// verified and the stored one is not, in which case the verified
    /// value replaces it so the verification outcome is retained.
    pub(crate) fn insert(
        &self,
        fingerprint: u64,
        key: CanonicalKey,
        value: Arc<CachedPreparation>,
    ) {
        let mut shard = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned");
        if let Some(existing) = shard
            .map
            .get_mut(&fingerprint)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.key == key))
        {
            if existing.value.verification.is_none() && value.verification.is_some() {
                existing.value = value;
            }
            return;
        }
        if let Some(capacity) = self.shard_capacity {
            if shard.len >= capacity {
                shard.evict_lru();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let last_used = shard.tick;
        shard.map.entry(fingerprint).or_default().push(Entry {
            key,
            value,
            last_used,
        });
        shard.len += 1;
    }

    /// Hit/miss/occupancy/eviction counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of prepared circuits currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len)
            .sum()
    }

    /// Whether the cache holds no circuits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored circuit (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
            shard.len = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn dense_request(amps: &[Complex]) -> PrepareRequest {
        PrepareRequest::dense(dims(&[2, 2]), amps.to_vec(), PrepareOptions::exact())
    }

    #[test]
    fn identical_requests_share_a_key() {
        let a = Complex::real(0.5);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[a, a, a, a]);
        assert_eq!(canonical_key(&r1), canonical_key(&r2));
    }

    #[test]
    fn different_states_get_different_fingerprints() {
        let a = Complex::real(0.5);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[a, a, a, -a]);
        let (f1, k1) = canonical_key(&r1).unwrap();
        let (f2, k2) = canonical_key(&r2).unwrap();
        assert_ne!(k1, k2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let a = Complex::real(0.5);
        let exact = dense_request(&[a, a, a, a]);
        let approx = PrepareRequest::dense(
            dims(&[2, 2]),
            vec![a, a, a, a],
            PrepareOptions::approximated(0.98),
        );
        assert_ne!(
            canonical_key(&exact).unwrap().1,
            canonical_key(&approx).unwrap().1
        );
    }

    #[test]
    fn dense_and_sparse_forms_of_a_state_share_a_key() {
        // With zero subtrees off, dense and sparse pipelines produce
        // identical diagrams, circuits and reports — sharing is safe.
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5f64.sqrt());
        let mut amps = vec![Complex::ZERO; 4];
        amps[d.index_of(&[0, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let opts = PrepareOptions::exact().without_zero_subtrees();
        let dense = PrepareRequest::dense(d.clone(), amps, opts);
        let sparse = PrepareRequest::sparse(d, vec![(vec![0, 0], a), (vec![1, 1], a)], opts);
        assert_eq!(canonical_key(&dense), canonical_key(&sparse));
    }

    #[test]
    fn keep_zero_subtrees_separates_dense_from_sparse_keys() {
        // `prepare` honors keep_zero_subtrees (tree metrics in the report),
        // `prepare_sparse` ignores it — the same state must therefore key
        // differently, or the served report would depend on which form was
        // computed first.
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5f64.sqrt());
        let mut amps = vec![Complex::ZERO; 4];
        amps[d.index_of(&[0, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let dense = PrepareRequest::dense(d.clone(), amps, PrepareOptions::exact());
        let sparse = PrepareRequest::sparse(
            d.clone(),
            vec![(vec![0, 0], a), (vec![1, 1], a)],
            PrepareOptions::exact(),
        );
        assert_ne!(
            canonical_key(&dense).unwrap().1,
            canonical_key(&sparse).unwrap().1
        );
        // A sparse request keys identically whether or not the (ignored)
        // flag is set.
        let sparse_flagless = PrepareRequest::sparse(
            d,
            vec![(vec![0, 0], a), (vec![1, 1], a)],
            PrepareOptions::exact().without_zero_subtrees(),
        );
        assert_eq!(canonical_key(&sparse), canonical_key(&sparse_flagless));
    }

    #[test]
    fn sparse_duplicates_are_summed_before_keying() {
        let d = dims(&[2, 2]);
        let h = Complex::real(0.5);
        let split = PrepareRequest::sparse(
            d.clone(),
            vec![(vec![0, 0], h), (vec![0, 0], h), (vec![1, 1], Complex::ONE)],
            PrepareOptions::exact(),
        );
        let summed = PrepareRequest::sparse(
            d,
            vec![(vec![0, 0], Complex::ONE), (vec![1, 1], Complex::ONE)],
            PrepareOptions::exact(),
        );
        assert_eq!(canonical_key(&split), canonical_key(&summed));
    }

    #[test]
    fn malformed_requests_bypass_the_cache() {
        let short =
            PrepareRequest::dense(dims(&[2, 2]), vec![Complex::ONE], PrepareOptions::exact());
        assert!(canonical_key(&short).is_none());
        let bad_digit = PrepareRequest::sparse(
            dims(&[2, 2]),
            vec![(vec![0, 5], Complex::ONE)],
            PrepareOptions::exact(),
        );
        assert!(canonical_key(&bad_digit).is_none());
        let nan = PrepareRequest::dense(
            dims(&[2]),
            vec![Complex::new(f64::NAN, 0.0), Complex::ONE],
            PrepareOptions::exact(),
        );
        assert!(canonical_key(&nan).is_none());
        let empty = PrepareRequest::sparse(dims(&[2, 2]), vec![], PrepareOptions::exact());
        assert!(canonical_key(&empty).is_none());
    }

    #[test]
    fn near_identical_requests_share_a_fingerprint_but_not_a_key() {
        // Within one tolerance cell: same bucket, different exact key — the
        // cache will *not* serve one request the other's circuit.
        let a = Complex::real(0.5);
        let b = Complex::new(0.5 + 1e-13, 0.0);
        let r1 = dense_request(&[a, a, a, a]);
        let r2 = dense_request(&[b, a, a, a]);
        let (f1, k1) = canonical_key(&r1).unwrap();
        let (f2, k2) = canonical_key(&r2).unwrap();
        assert_eq!(f1, f2, "same tolerance cell fingerprints equal");
        assert_ne!(k1, k2, "exact keys still differ");
    }

    #[test]
    fn cache_round_trip_counts_hits_and_misses() {
        let cache = CircuitCache::new(4);
        let a = Complex::real(0.5);
        let req = dense_request(&[a, a, a, a]);
        let (fp, key) = canonical_key(&req).unwrap();
        assert!(cache.get(fp, &key, false).is_none());
        let prepared =
            mdq_core::prepare(&dims(&[2, 2]), &[a, a, a, a], PrepareOptions::exact()).unwrap();
        cache.insert(
            fp,
            key.clone(),
            Arc::new(CachedPreparation {
                circuit: prepared.circuit.clone(),
                report: prepared.report.clone(),
                verification: None,
            }),
        );
        let served = cache.get(fp, &key, false).expect("entry stored");
        assert_eq!(served.circuit, prepared.circuit);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(CircuitCache::new(0).shards.len(), 1);
        assert_eq!(CircuitCache::new(3).shards.len(), 4);
        assert_eq!(CircuitCache::new(16).shards.len(), 16);
    }

    /// A distinct single-qudit request per index, with a stable entry
    /// (shared with the `lru_model` proptest module).
    pub(super) fn keyed_entry(i: usize) -> (u64, CanonicalKey, Arc<CachedPreparation>) {
        let d = dims(&[2]);
        let theta = 0.1 + 0.7 * i as f64 / 10.0;
        let amps = vec![Complex::real(theta.cos()), Complex::real(theta.sin())];
        let request = PrepareRequest::dense(d.clone(), amps.clone(), PrepareOptions::exact());
        let (fp, key) = canonical_key(&request).unwrap();
        let prepared = mdq_core::prepare(&d, &amps, PrepareOptions::exact()).unwrap();
        (
            fp,
            key,
            Arc::new(CachedPreparation {
                circuit: prepared.circuit.clone(),
                report: prepared.report.clone(),
                verification: None,
            }),
        )
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        // One shard, two entries: inserting a third must evict the LRU.
        let cache = CircuitCache::with_capacity(1, Some(2));
        let (fp0, k0, v0) = keyed_entry(0);
        let (fp1, k1, v1) = keyed_entry(1);
        let (fp2, k2, v2) = keyed_entry(2);
        cache.insert(fp0, k0.clone(), v0);
        cache.insert(fp1, k1.clone(), v1);
        // Touch entry 0 so entry 1 becomes the LRU victim.
        assert!(cache.get(fp0, &k0, false).is_some());
        cache.insert(fp2, k2.clone(), v2);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "bound holds");
        assert_eq!(stats.evictions, 1, "one eviction counted");
        assert!(
            cache.get(fp0, &k0, false).is_some(),
            "recently used survives"
        );
        assert!(cache.get(fp2, &k2, false).is_some(), "new entry admitted");
        assert!(cache.get(fp1, &k1, false).is_none(), "LRU entry evicted");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = CircuitCache::new(1);
        for i in 0..8 {
            let (fp, key, value) = keyed_entry(i);
            cache.insert(fp, key, value);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn capacity_splits_across_shards_with_minimum_one() {
        let cache = CircuitCache::with_capacity(4, Some(2));
        assert_eq!(cache.shard_capacity, Some(1), "ceil(2/4) floored at 1");
        let unbounded = CircuitCache::with_capacity(4, None);
        assert_eq!(unbounded.shard_capacity, None);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = CircuitCache::with_capacity(1, Some(1));
        let (fp, key, value) = keyed_entry(0);
        cache.insert(fp, key.clone(), Arc::clone(&value));
        cache.insert(fp, key.clone(), value);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0, "duplicate insert is a no-op");
    }

    /// A `keyed_entry` with a verification report attached.
    fn verified_entry(i: usize) -> (u64, CanonicalKey, Arc<CachedPreparation>) {
        let (fp, key, value) = keyed_entry(i);
        (
            fp,
            key,
            Arc::new(CachedPreparation {
                circuit: value.circuit.clone(),
                report: value.report.clone(),
                verification: Some(VerificationReport {
                    fidelity: 1.0,
                    replay_nodes: 2,
                    duration: std::time::Duration::default(),
                }),
            }),
        )
    }

    #[test]
    fn verified_lookups_skip_unverified_entries() {
        let cache = CircuitCache::new(1);
        let (fp, key, unverified) = keyed_entry(0);
        cache.insert(fp, key.clone(), unverified);
        // An unverified serving sees the entry; a verified request must not.
        assert!(cache.get(fp, &key, false).is_some());
        assert!(cache.get(fp, &key, true).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "skip counts as miss");
    }

    #[test]
    fn verified_insert_upgrades_an_unverified_entry_in_place() {
        let cache = CircuitCache::new(1);
        let (fp, key, unverified) = keyed_entry(0);
        cache.insert(fp, key.clone(), unverified);
        let (_, _, verified) = verified_entry(0);
        cache.insert(fp, key.clone(), verified);
        assert_eq!(cache.len(), 1, "upgrade replaces, never duplicates");
        let served = cache.get(fp, &key, true).expect("entry now verified");
        assert!(served.verification.is_some());
        // The reverse never downgrades: an unverified insert over a
        // verified entry keeps the verification.
        let (_, _, plain) = keyed_entry(0);
        cache.insert(fp, key.clone(), plain);
        assert!(cache.get(fp, &key, true).is_some());
    }
}

/// Model-based property test of the per-shard LRU (satellite of the
/// admission-control PR): arbitrary insert/get sequences run against a
/// reference implementation tracking membership, stamps, hit/miss counts
/// and evictions — then every evicted key is reinserted and must replay
/// bit-identical.
#[cfg(test)]
mod lru_model {
    use super::tests::keyed_entry;
    use super::*;
    use proptest::prelude::*;

    /// Reference LRU over key indices — a `BTreeMap` from key index to
    /// last-used stamp — mirroring the cache's exact semantics: `get`
    /// restamps on hit; `insert` of a present key is a no-op; `insert` of
    /// a fresh key evicts the least-recently-stamped entry when at
    /// capacity.
    struct Model {
        capacity: usize,
        /// Key index → last-used stamp.
        entries: std::collections::BTreeMap<usize, u64>,
        clock: u64,
        hits: u64,
        misses: u64,
        evictions: u64,
    }

    impl Model {
        fn new(capacity: usize) -> Self {
            Model {
                capacity,
                entries: std::collections::BTreeMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }
        }

        fn get(&mut self, key: usize) -> bool {
            self.clock += 1;
            let clock = self.clock;
            if let Some(stamp) = self.entries.get_mut(&key) {
                *stamp = clock;
                self.hits += 1;
                true
            } else {
                self.misses += 1;
                false
            }
        }

        fn insert(&mut self, key: usize) {
            if self.entries.contains_key(&key) {
                return;
            }
            if self.entries.len() >= self.capacity {
                let victim = self
                    .entries
                    .iter()
                    .min_by_key(|(_, &stamp)| stamp)
                    .map(|(&k, _)| k)
                    .expect("capacity > 0");
                self.entries.remove(&victim);
                self.evictions += 1;
            }
            self.clock += 1;
            self.entries.insert(key, self.clock);
        }

        fn contains(&self, key: usize) -> bool {
            self.entries.contains_key(&key)
        }
    }

    const KEYS: usize = 6;
    const CAPACITY: usize = 3;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The cache's LRU agrees with the reference model on membership,
        /// hit/miss/eviction counts and the capacity bound after every
        /// operation, and evicted-then-reinserted entries still replay the
        /// bit-identical circuit.
        #[test]
        fn prop_lru_matches_reference_model(
            ops in proptest::collection::vec((0u8..2, 0usize..KEYS), 1..40)
        ) {
            // One shard so the model's global LRU is the cache's LRU.
            let cache = CircuitCache::with_capacity(1, Some(CAPACITY));
            let mut model = Model::new(CAPACITY);
            let entries: Vec<_> = (0..KEYS).map(keyed_entry).collect();
            for &(op, key_index) in &ops {
                let (fp, key, value) = &entries[key_index];
                if op == 0 {
                    let served = cache.get(*fp, key, false);
                    let expected = model.get(key_index);
                    prop_assert_eq!(served.is_some(), expected);
                    if let Some(served) = served {
                        prop_assert_eq!(&served.circuit, &value.circuit);
                    }
                } else {
                    cache.insert(*fp, key.clone(), Arc::clone(value));
                    model.insert(key_index);
                }
                let stats = cache.stats();
                prop_assert!(stats.entries <= CAPACITY, "capacity never exceeded");
                prop_assert_eq!(stats.entries, model.entries.len());
                prop_assert_eq!(stats.evictions, model.evictions);
                prop_assert_eq!(stats.hits, model.hits);
                prop_assert_eq!(stats.misses, model.misses);
            }
            // Every evicted key, reinserted, must replay bit-identical to
            // the circuit originally prepared for it.
            for (key_index, (fp, key, value)) in entries.iter().enumerate() {
                if !model.contains(key_index) {
                    cache.insert(*fp, key.clone(), Arc::clone(value));
                    let served = cache
                        .get(*fp, key, false)
                        .expect("reinserted entry is served");
                    prop_assert_eq!(&served.circuit, &value.circuit);
                }
            }
        }
    }
}
